"""Unit tests for traces and sub-traces."""

import pytest

from repro.model.span import SpanStatus
from repro.model.trace import Trace, group_spans_by_trace
from tests.conftest import make_chain_trace, make_span


class TestTrace:
    def test_mismatched_trace_id_rejected(self):
        span = make_span(trace_id="c" * 32)
        with pytest.raises(ValueError):
            Trace(trace_id="d" * 32, spans=[span])

    def test_root_and_duration(self):
        trace = make_chain_trace(depth=3)
        assert trace.root is not None
        assert trace.root.parent_id is None
        assert trace.duration == trace.root.duration

    def test_duration_of_fragment_uses_envelope(self):
        s1 = make_span(span_id="1" * 16, parent_id="9" * 16, start_time=1.0, duration=2.0)
        s2 = make_span(span_id="2" * 16, parent_id="9" * 16, start_time=4.0, duration=3.0)
        fragment = Trace(trace_id=s1.trace_id, spans=[s1, s2])
        assert fragment.root is None
        assert fragment.duration == pytest.approx(6.0)

    def test_services(self):
        trace = make_chain_trace(depth=3)
        assert trace.services == {"svc-0", "svc-1", "svc-2"}

    def test_has_error(self):
        trace = make_chain_trace(depth=2)
        assert not trace.has_error
        erroring = make_span(status=SpanStatus.ERROR, span_id="e" * 16,
                             trace_id=trace.trace_id, parent_id=trace.root.span_id)
        assert Trace(trace_id=trace.trace_id, spans=trace.spans + [erroring]).has_error

    def test_depth_of_chain(self):
        assert make_chain_trace(depth=4).depth() == 4

    def test_depth_empty(self):
        assert Trace(trace_id="a" * 32, spans=[]).depth() == 0

    def test_children_sorted_by_start(self):
        root = make_span(span_id="0" * 16)
        kid_late = make_span(span_id="2" * 16, parent_id=root.span_id, start_time=5.0)
        kid_early = make_span(span_id="1" * 16, parent_id=root.span_id, start_time=1.0)
        trace = Trace(trace_id=root.trace_id, spans=[root, kid_late, kid_early])
        assert [s.span_id for s in trace.children_of(root.span_id)] == [
            kid_early.span_id,
            kid_late.span_id,
        ]

    def test_span_by_id(self):
        trace = make_chain_trace(depth=2)
        target = trace.spans[1]
        assert trace.span_by_id(target.span_id) is target
        assert trace.span_by_id("f" * 16) is None


class TestSubTraces:
    def test_split_by_node(self):
        trace = make_chain_trace(depth=4, nodes=("node-a", "node-b"))
        subs = trace.sub_traces()
        assert {s.node for s in subs} == {"node-a", "node-b"}
        assert sum(len(s) for s in subs) == 4

    def test_entry_spans_cross_node(self):
        trace = make_chain_trace(depth=4, nodes=("node-a", "node-b"))
        for sub in trace.sub_traces():
            entries = sub.entry_spans()
            # The chain alternates nodes, so every local span is an entry.
            assert len(entries) == len(sub.spans)

    def test_entry_spans_single_node(self):
        trace = make_chain_trace(depth=4, nodes=("node-a",))
        (sub,) = trace.sub_traces()
        assert [s.parent_id for s in sub.entry_spans()] == [None]

    def test_local_children(self):
        trace = make_chain_trace(depth=3, nodes=("node-a",))
        (sub,) = trace.sub_traces()
        root = sub.entry_spans()[0]
        kids = sub.local_children(root.span_id)
        assert len(kids) == 1


class TestGrouping:
    def test_group_spans_by_trace(self):
        t1 = make_chain_trace(depth=2, trace_id="1" * 32)
        t2 = make_chain_trace(depth=3, trace_id="2" * 32)
        regrouped = group_spans_by_trace(t1.spans + t2.spans)
        assert set(regrouped) == {t1.trace_id, t2.trace_id}
        assert len(regrouped[t1.trace_id]) == 2
        assert len(regrouped[t2.trace_id]) == 3
