"""Integration tests: the full Mint pipeline against real workloads.

These exercise the paper's headline claims end to end on small
corpora: all requests answerable, exact reconstruction fidelity,
overhead far below OT-Full, cross-node coherence, and the experiment
harness that the benchmarks build on.
"""

import pytest

from repro.baselines import Hindsight, MintFramework, OTFull, OTHead, OTTail, Sieve
from repro.sim.experiment import generate_stream, rca_views_for_framework, run_experiment
from repro.workloads import build_onlineboutique, build_trainticket


@pytest.fixture(scope="module")
def boutique_result():
    return run_experiment(
        build_onlineboutique(),
        factories={
            "OT-Full": OTFull,
            "OT-Head": lambda: OTHead(0.05),
            "OT-Tail": OTTail,
            "Hindsight": Hindsight,
            "Sieve": lambda: Sieve(budget_rate=0.05),
            "Mint": lambda: MintFramework(auto_warmup_traces=50),
        },
        num_traces=800,
        abnormal_rate=0.05,
        seed=13,
    )


class TestHeadlineClaims:
    def test_mint_answers_every_query(self, boutique_result):
        mint = boutique_result.runs["Mint"]
        assert mint.hits["miss"] == 0
        assert mint.hits["exact"] + mint.hits["partial"] == boutique_result.trace_count

    def test_one_or_zero_baselines_miss_queries(self, boutique_result):
        for name in ("OT-Head", "OT-Tail", "Hindsight", "Sieve"):
            assert boutique_result.runs[name].hits["miss"] > 0, name

    def test_mint_overhead_far_below_full(self, boutique_result):
        full = boutique_result.runs["OT-Full"]
        mint = boutique_result.runs["Mint"]
        assert mint.network_bytes < full.network_bytes * 0.15
        assert mint.storage_bytes < full.storage_bytes * 0.15

    def test_tail_network_equals_full(self, boutique_result):
        full = boutique_result.runs["OT-Full"]
        tail = boutique_result.runs["OT-Tail"]
        assert tail.network_bytes == full.network_bytes

    def test_head_costs_track_sampling_rate(self, boutique_result):
        full = boutique_result.runs["OT-Full"]
        head = boutique_result.runs["OT-Head"]
        fraction = head.network_bytes / full.network_bytes
        assert 0.02 < fraction < 0.10

    def test_hindsight_network_above_head_below_tail(self, boutique_result):
        full = boutique_result.runs["OT-Full"]
        hindsight = boutique_result.runs["Hindsight"]
        assert hindsight.network_bytes < full.network_bytes * 0.5
        assert hindsight.network_bytes > 0


class TestExactReconstruction:
    def test_sampled_traces_reconstruct_exactly(self, boutique_result):
        mint = boutique_result.runs["Mint"].framework
        originals = {t.trace_id: t for t in boutique_result.traces}
        checked = 0
        for trace_id in sorted(mint.stored_trace_ids())[:20]:
            result = mint.query_full(trace_id)
            assert result.status == "exact"
            original = originals[trace_id]
            rebuilt = {s.span_id: s for s in result.trace.spans}
            assert set(rebuilt) == {s.span_id for s in original.spans}
            for span in original.spans:
                twin = rebuilt[span.span_id]
                assert twin.attributes == span.attributes
                assert twin.duration == pytest.approx(span.duration)
                assert twin.parent_id == span.parent_id
            checked += 1
        assert checked > 0

    def test_abnormal_traces_are_sampled(self, boutique_result):
        mint = boutique_result.runs["Mint"].framework
        stored = mint.stored_trace_ids()
        abnormal = set(boutique_result.fault_targets)
        captured = len(abnormal & stored) / max(1, len(abnormal))
        assert captured > 0.9


class TestApproximateTraces:
    def test_partial_queries_return_full_execution_path(self, boutique_result):
        mint = boutique_result.runs["Mint"].framework
        originals = {t.trace_id: t for t in boutique_result.traces}
        checked = 0
        for trace in boutique_result.traces:
            result = mint.query_full(trace.trace_id)
            if result.status != "partial":
                continue
            approx = result.approximate
            # UC1: the execution path (services) is preserved.
            assert originals[trace.trace_id].services <= approx.services | {
                s["service"] for seg in approx.segments for s in seg.spans
            }
            checked += 1
            if checked >= 10:
                break
        assert checked > 0


class TestRcaFeeds:
    def test_mint_provides_largest_population(self, boutique_result):
        mint_views = rca_views_for_framework(
            boutique_result.runs["Mint"], boutique_result.traces
        )
        head_views = rca_views_for_framework(
            boutique_result.runs["OT-Head"], boutique_result.traces
        )
        assert len(mint_views) == boutique_result.trace_count
        assert len(head_views) < boutique_result.trace_count * 0.15


class TestTrainTicket:
    def test_trainticket_end_to_end(self):
        result = run_experiment(
            build_trainticket(),
            factories={
                "OT-Full": OTFull,
                "Mint": lambda: MintFramework(auto_warmup_traces=40),
            },
            num_traces=300,
            abnormal_rate=0.05,
            seed=17,
        )
        mint = result.runs["Mint"]
        full = result.runs["OT-Full"]
        assert mint.hits["miss"] == 0
        assert mint.storage_bytes < full.storage_bytes * 0.2


class TestStreamGeneration:
    def test_stream_deterministic(self):
        wl = build_onlineboutique()
        a, targets_a = generate_stream(wl, 50, seed=3)
        b, targets_b = generate_stream(wl, 50, seed=3)
        assert [t.trace_id for _, t in a] == [t.trace_id for _, t in b]
        assert targets_a == targets_b

    def test_abnormal_rate_respected(self):
        wl = build_onlineboutique()
        stream, targets = generate_stream(wl, 600, abnormal_rate=0.1, seed=4)
        assert 0.05 < len(targets) / 600 < 0.16
