"""Integration: Mint over a multi-window run with pattern convergence.

The paper's production argument rests on convergence: once the system
is stable, pattern libraries stop growing, pattern reports shrink to
nothing, and per-trace cost approaches the parameters alone.  This test
runs several traffic windows through one long-lived deployment and
checks those steady-state properties.
"""

import pytest

from repro.agent.samplers import TailSampler
from repro.baselines import MintFramework, OTFull
from repro.sim.experiment import generate_stream
from repro.workloads import build_onlineboutique


@pytest.fixture(scope="module")
def long_run():
    workload = build_onlineboutique()
    mint = MintFramework(
        auto_warmup_traces=50, extra_sampler_factories=[TailSampler]
    )
    full = OTFull()
    window_network: list[int] = []
    window_patterns: list[int] = []
    all_traces = []
    for window in range(4):
        stream, _ = generate_stream(
            workload, 300, abnormal_rate=0.04, seed=400 + window
        )
        before = mint.network_bytes
        for now, trace in stream:
            offset = window * 10_000.0
            mint.process_trace(trace, offset + now)
            full.process_trace(trace, offset + now)
            all_traces.append(trace)
        mint.finalize(window * 10_000.0 + stream[-1][0])
        window_network.append(mint.network_bytes - before)
        window_patterns.append(len(mint.backend.storage.span_patterns))
    return mint, full, window_network, window_patterns, all_traces


class TestConvergence:
    def test_pattern_library_converges(self, long_run):
        _, _, _, window_patterns, _ = long_run
        # Growth is sub-linear: three further windows of traffic (with
        # fresh fault mixes creating some genuinely new error patterns)
        # add at most as many patterns as the first window alone did.
        assert window_patterns[-1] - window_patterns[0] <= window_patterns[0]

    def test_steady_state_network_below_first_window(self, long_run):
        _, _, window_network, _, _ = long_run
        # Window 0 pays warm-up pattern uploads; later windows pay only
        # blooms + sampled params.
        steady = sum(window_network[1:]) / 3
        assert steady <= window_network[0] * 1.1

    def test_total_overhead_stays_low(self, long_run):
        mint, full, _, _, _ = long_run
        assert mint.network_bytes < full.network_bytes * 0.12
        assert mint.storage_bytes < full.storage_bytes * 0.12

    def test_no_misses_across_all_windows(self, long_run):
        mint, _, _, _, all_traces = long_run
        misses = sum(
            1 for t in all_traces if mint.query(t.trace_id).status == "miss"
        )
        assert misses == 0

    def test_bloom_storage_grows_with_traffic_not_patterns(self, long_run):
        mint, _, _, _, all_traces = long_run
        storage = mint.backend.storage
        # Metadata (blooms) dominates patterns at steady state, and the
        # two are individually far below parameter storage scale.
        assert storage.bloom_bytes > 0
        assert storage.pattern_bytes < storage.storage_bytes()
