"""Property tests: concurrent interning is commutative and lossless.

Content-derived pattern ids are what make parallel ingest safe at all:
the same span shape hashes to the same id on every worker, so K
partitioned libraries merge into exactly the sequential library.  The
properties pin that commutativity twice — directly at the intern layer
(pure, hypothesis-heavy) and end-to-end through the backend (full
frameworks at K ∈ {1, 2, 4, 8} workers: identical merged library,
identical byte counters, identical ``replicated_pattern_bytes``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent.verify import byte_tables
from repro.framework import MintFramework
from repro.parsing.span_parser import SpanPatternLibrary
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique

WORKER_COUNTS = (1, 2, 4, 8)

# A span shape as the intern layer sees it: (name, service, kind,
# status, attribute schema).  Small alphabets on purpose — collisions
# between workers are the interesting case.
_names = st.sampled_from(["GET /a", "GET /b", "POST /c", "DELETE /d"])
_services = st.sampled_from(["cart", "auth", "pay"])
_kinds = st.sampled_from(["server", "client"])
_statuses = st.sampled_from(["ok", "error"])
_attr_schemas = st.sampled_from(
    [
        (),
        (("http.method", "categorical", "GET"),),
        (("http.method", "categorical", "GET"), ("latency", "numeric", "<num>")),
    ]
)
span_shapes = st.tuples(_names, _services, _kinds, _statuses, _attr_schemas)


class TestInternLayerCommutativity:
    @given(st.lists(span_shapes, min_size=1, max_size=120), st.sampled_from(WORKER_COUNTS))
    @settings(max_examples=60, deadline=None)
    def test_partitioned_interning_merges_to_sequential(self, shapes, workers):
        sequential = SpanPatternLibrary()
        for shape in shapes:
            sequential.intern(*shape)

        partitioned = [SpanPatternLibrary() for _ in range(workers)]
        for index, shape in enumerate(shapes):
            partitioned[index % workers].intern(*shape)

        merged: set[str] = set()
        for library in partitioned:
            merged.update(library.snapshot())
        assert merged == set(sequential.snapshot())
        # Totals commute too: every span is matched exactly once somewhere.
        assert sum(
            library.match_count(pid)
            for library in partitioned
            for pid in library.snapshot()
        ) == len(shapes)

    @given(st.lists(span_shapes, min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_is_stable_and_insertion_ordered(self, shapes):
        library = SpanPatternLibrary()
        for shape in shapes:
            library.intern(*shape)
        first = library.snapshot()
        # Re-interning already-known shapes never perturbs the snapshot.
        for shape in shapes:
            library.intern(*shape)
        assert library.snapshot() == first
        assert len(set(first)) == len(first)


class TestEndToEndCommutativity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    @settings(max_examples=4, deadline=None)
    def test_k_workers_reproduce_sequential_libraries_and_bytes(
        self, seed, workers
    ):
        workload = build_onlineboutique()
        stream, _ = generate_stream(workload, 70, abnormal_rate=0.02, seed=seed)

        def drive(framework):
            last_now = 0.0
            for now, trace in stream:
                framework.process_trace(trace, now)
                last_now = now
            framework.finalize(last_now)
            return framework

        sequential = drive(
            MintFramework(auto_warmup_traces=30, deployment=Deployment.sharded(2))
        )
        parallel = drive(
            MintFramework(
                auto_warmup_traces=30,
                deployment=Deployment.sharded(2, workers=workers),
            )
        )
        try:
            seq_store, par_store = (
                sequential.backend.storage,
                parallel.backend.storage,
            )
            assert set(par_store.span_patterns) == set(seq_store.span_patterns)
            assert set(par_store.topo_patterns) == set(seq_store.topo_patterns)
            assert byte_tables(parallel) == byte_tables(sequential)
            assert (
                parallel.backend.merged.replicated_pattern_bytes()
                == sequential.backend.merged.replicated_pattern_bytes()
            )
        finally:
            parallel.close()
            sequential.close()
