"""Cold-tier units: codecs, sealed blocks, tiered containers.

The contracts pinned here are the ones the seal-boundary integration
tests (test_cold_boundaries.py) and the cold bench gate build on:
codecs roundtrip bit-for-bit (with and without a trained dictionary),
the block store fails loudly on corruption, and the tiered containers
are behaviourally indistinguishable from the plain dict/list they
replace — including iteration order across seal/unseal cycles.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backend.storage import StorageEngine, StoredBloom
from repro.bloom.bloom_filter import BloomFilter
from repro.cold import (
    ColdCodecError,
    ColdPolicy,
    ColdReadError,
    ColdTier,
    TieredBlooms,
    TieredParams,
    ZlibCodec,
    compact_engine,
    make_codec,
    train_fallback_dictionary,
    zstd_available,
)
from repro.cold.blocks import (
    BLOOM_KIND,
    PARAMS_KIND,
    decode_bloom_payload,
    decode_params_payload,
    encode_bloom_payload,
    encode_params_payload,
)

RECORDS = {
    f"{i:032x}": [
        ["s1", None, "node-0", "p-aaaa", round(1.5 + i, 6), [i, "GET /items"]],
        ["s2", "s1", "node-1", "p-bbbb", round(1.6 + i, 6), [i * 2, "ok"]],
    ]
    for i in range(24)
}


class TestCodecs:
    def test_zlib_roundtrip_without_dictionary(self):
        codec = ZlibCodec()
        data = b'{"span":"GET /items","values":[1,2,3]}' * 50
        assert codec.decompress(codec.compress(data)) == data

    def test_zlib_roundtrip_with_trained_dictionary(self):
        codec = ZlibCodec()
        samples = [b'{"span":"GET /items","values":[%d]}' % i for i in range(40)]
        dictionary = codec.train(samples, 4096)
        assert dictionary
        data = b'{"span":"GET /items","values":[99]}'
        blob = codec.compress(data, dictionary)
        assert codec.decompress(blob, dictionary) == data

    def test_trained_dictionary_beats_plain_on_templated_blocks(self):
        # Small templated blocks are exactly the cold tier's payloads:
        # the dictionary must make them cheaper than dictionary-less
        # compression (the headline trained-vs-plain gate, in miniature).
        codec = ZlibCodec()
        blocks = [
            encode_params_payload({tid: bucket}) for tid, bucket in RECORDS.items()
        ]
        dictionary = codec.train(blocks, 8192)
        plain = sum(len(codec.compress(b)) for b in blocks)
        trained = sum(len(codec.compress(b, dictionary)) for b in blocks)
        assert trained < plain

    def test_fallback_trainer_is_deterministic_and_bounded(self):
        samples = [b"abc", b"def", b"abc", b"xyz" * 100]
        assert train_fallback_dictionary(samples, 64) == train_fallback_dictionary(
            samples, 64
        )
        assert len(train_fallback_dictionary(samples, 64)) <= 64
        # Most frequent sample sits at the tail (DEFLATE's cheap zone).
        assert train_fallback_dictionary(samples, 4096).endswith(b"abc")

    def test_make_codec_auto_never_fails(self):
        codec = make_codec("auto")
        assert codec.name in ("zstd", "zlib")
        data = b"payload" * 20
        assert codec.decompress(codec.compress(data)) == data

    @pytest.mark.skipif(zstd_available(), reason="zstandard is installed")
    def test_explicit_zstd_fails_loudly_when_missing(self):
        with pytest.raises(ColdCodecError):
            make_codec("zstd")

    @pytest.mark.skipif(not zstd_available(), reason="zstandard not installed")
    def test_zstd_roundtrip_with_trained_dictionary(self):
        codec = make_codec("zstd")
        samples = [
            encode_params_payload({tid: bucket}) for tid, bucket in RECORDS.items()
        ]
        dictionary = codec.train(samples, 8192)
        data = samples[0]
        blob = codec.compress(data, dictionary)
        assert codec.decompress(blob, dictionary) == data

    def test_unknown_codec_rejected(self):
        with pytest.raises(ColdCodecError):
            make_codec("lz4")


def make_bloom(node: str, pattern: str, items: list[str]) -> StoredBloom:
    filt = BloomFilter(expected_insertions=64, false_positive_probability=0.01)
    for item in items:
        filt.add(item)
    return StoredBloom(node=node, topo_pattern_id=pattern, filter=filt)


class TestPayloadFrames:
    def test_params_frame_roundtrip_preserves_order(self):
        raw = encode_params_payload(RECORDS)
        decoded = decode_params_payload(raw)
        assert decoded == RECORDS
        assert list(decoded) == list(RECORDS)

    def test_bloom_frame_roundtrip_preserves_geometry(self):
        entries = [
            make_bloom("node-0", "tp-1", ["a" * 32, "b" * 32]),
            make_bloom("node-1", "tp-2", ["c" * 32]),
        ]
        decoded = decode_bloom_payload(encode_bloom_payload(entries))
        assert len(decoded) == 2
        for original, back in zip(entries, decoded):
            assert back.node == original.node
            assert back.topo_pattern_id == original.topo_pattern_id
            assert back.filter.inserted == original.filter.inserted
            assert back.filter.geometry() == original.filter.geometry()
            assert back.filter.to_bytes() == original.filter.to_bytes()


class TestColdTier:
    def test_seal_decode_pop(self):
        tier = ColdTier()
        raw = encode_params_payload(RECORDS)
        block_id = tier.seal(
            PARAMS_KIND, raw, 1000, frozenset({"node-0", "node-1"}), tuple(RECORDS)
        )
        assert tier.decode(block_id) == RECORDS
        assert tier.sealed_logical_bytes() == 1000
        assert tier.physical_bytes() > 0
        assert tier.pop(block_id) == RECORDS
        assert len(tier) == 0
        assert tier.physical_bytes() == 0

    def test_corrupt_block_raises_cold_read_error(self):
        tier = ColdTier()
        raw = encode_params_payload(RECORDS)
        block_id = tier.seal(PARAMS_KIND, raw, 1000, frozenset(), tuple(RECORDS))
        block = tier.block(block_id)
        tier._blocks[block_id] = dataclasses.replace(
            block, payload=b"\x00garbage\xff"
        )
        with pytest.raises(ColdReadError):
            tier.decode(block_id)

    def test_truncated_decode_raises_cold_read_error(self):
        tier = ColdTier()
        raw = encode_params_payload(RECORDS)
        block_id = tier.seal(PARAMS_KIND, raw, 1000, frozenset(), tuple(RECORDS))
        block = tier.block(block_id)
        # A valid frame of the wrong content: decodes, but to the wrong
        # length — the tier must refuse rather than serve it.
        wrong = tier.codec.compress(raw[: len(raw) // 2], tier.dictionary)
        tier._blocks[block_id] = dataclasses.replace(block, payload=wrong)
        with pytest.raises(ColdReadError):
            tier.decode(block_id)

    def test_host_index(self):
        tier = ColdTier()
        a = tier.seal(PARAMS_KIND, b"{}", 1, frozenset({"node-0"}), ())
        b = tier.seal(PARAMS_KIND, b"{}", 1, frozenset({"node-1"}), ())
        assert tier.blocks_with_host("node-0") == [a]
        assert tier.blocks_with_host("node-1", PARAMS_KIND) == [b]
        assert tier.blocks_with_host("node-9") == []

    def test_decode_cache_reuses_objects(self):
        tier = ColdTier()
        entries = [make_bloom("node-0", "tp-1", ["a" * 32])]
        block_id = tier.seal(
            BLOOM_KIND, encode_bloom_payload(entries), 10, frozenset({"node-0"}), (1,),
            with_dictionary=False,
        )
        first = tier.decode(block_id)
        again = tier.decode(block_id)
        assert first is again
        assert tier.blocks_decoded == 1

    def test_codec_locked_after_first_seal(self):
        tier = ColdTier()
        tier.seal(PARAMS_KIND, b"{}", 1, frozenset(), ())
        with pytest.raises(Exception):
            tier.set_codec(ZlibCodec())


class TestTieredParams:
    def seal_all(self, store: TieredParams, tier: ColdTier) -> int:
        items = store.hot_items()
        raw = encode_params_payload(dict(items))
        block_id = tier.seal(
            PARAMS_KIND,
            raw,
            1,
            frozenset(r[2] for _, bucket in items for r in bucket),
            tuple(k for k, _ in items),
        )
        store.seal([k for k, _ in items], block_id)
        return block_id

    def build(self) -> tuple[TieredParams, ColdTier]:
        tier = ColdTier()
        store = TieredParams(tier)
        for tid, bucket in RECORDS.items():
            store.setdefault(tid, []).extend(r for r in bucket)
        return store, tier

    def test_reads_read_through_without_promoting(self):
        store, tier = self.build()
        self.seal_all(store, tier)
        tid = next(iter(RECORDS))
        assert store.get(tid) == RECORDS[tid]
        assert store[tid] == RECORDS[tid]
        assert tid in store
        assert store.is_sealed(tid)  # reads never unseal
        assert len(tier) == 1

    def test_iteration_order_matches_plain_dict(self):
        store, tier = self.build()
        plain = {tid: list(bucket) for tid, bucket in RECORDS.items()}
        self.seal_all(store, tier)
        assert list(store) == list(plain)
        assert [k for k, _ in store.items()] == list(plain)
        assert len(store) == len(plain)
        # Delete + reinsert moves the key to the end, exactly like dict.
        victim = next(iter(plain))
        del store[victim]
        del plain[victim]
        store[victim] = [["x", None, "node-0", "p", 0.0, []]]
        plain[victim] = [["x", None, "node-0", "p", 0.0, []]]
        assert list(store) == list(plain)

    def test_writes_promote_the_whole_block(self):
        store, tier = self.build()
        self.seal_all(store, tier)
        tid = next(iter(RECORDS))
        bucket = store.setdefault(tid, [])
        assert bucket == RECORDS[tid]
        assert not store.is_sealed(tid)
        assert store.sealed_count() == 0  # block granularity
        assert len(tier) == 0
        bucket.append(["s9", None, "node-2", "p-cccc", 9.0, []])
        assert store[tid][-1][0] == "s9"

    def test_promote_host_only_touches_blocks_with_host(self):
        tier = ColdTier()
        store = TieredParams(tier)
        store.setdefault("t1", []).append(["s1", None, "node-0", "p", 0.0, []])
        store.setdefault("t2", []).append(["s2", None, "node-1", "p", 0.0, []])
        for tid in ("t1", "t2"):
            raw = encode_params_payload({tid: store[tid]})
            bid = tier.seal(PARAMS_KIND, raw, 1, frozenset({store[tid][0][2]}), (tid,))
            store.seal([tid], bid)
        assert store.sealed_count() == 2
        assert store.promote_host("node-0") == 1
        assert not store.is_sealed("t1")
        assert store.is_sealed("t2")


class TestTieredBlooms:
    def build(self) -> tuple[TieredBlooms, ColdTier, list[StoredBloom]]:
        tier = ColdTier()
        store = TieredBlooms(tier)
        entries = [
            make_bloom("node-0", "tp-1", ["a" * 32]),
            make_bloom("node-1", "tp-1", ["b" * 32]),
            make_bloom("node-0", "tp-2", ["c" * 32]),
        ]
        for stored in entries:
            store.append(stored)
        return store, tier, entries

    def seal_positions(self, store: TieredBlooms, tier: ColdTier, positions):
        raw = encode_bloom_payload(store.entries_at(positions))
        hosts = frozenset(store.entries_at(positions)[i].node for i in range(len(positions)))
        block_id = tier.seal(BLOOM_KIND, raw, 1, hosts, (len(positions),), with_dictionary=False)
        store.seal(positions, block_id)
        return block_id

    def test_positions_and_membership_survive_sealing(self):
        store, tier, entries = self.build()
        self.seal_positions(store, tier, [0, 1])
        assert len(store) == 3
        assert store[-1] is entries[2]  # hot tail untouched
        resolved = list(store)
        for original, back in zip(entries, resolved):
            assert back.node == original.node
            assert back.topo_pattern_id == original.topo_pattern_id
            assert back.filter.to_bytes() == original.filter.to_bytes()
        assert "a" * 32 in resolved[0].filter

    def test_remove_node_requires_promotion(self):
        store, tier, _ = self.build()
        self.seal_positions(store, tier, [0, 1])
        with pytest.raises(RuntimeError):
            store.remove_node("node-0")
        store.promote_host("node-0")
        moved = store.remove_node("node-0")
        assert [b.node for b in moved] == ["node-0", "node-0"]
        assert [b.node for b in store] == ["node-1"]


class TestCompactEngine:
    def drive_engine(self) -> StorageEngine:
        from repro.agent.reports import ParamsReport

        engine = StorageEngine()
        for tid, bucket in RECORDS.items():
            engine.store_params_report(
                ParamsReport(node="node-0", trace_id=tid, records=bucket)
            )
        return engine

    def test_ruler_never_moves_and_physical_shrinks(self):
        engine = self.drive_engine()
        logical_before = engine.storage_bytes()
        stats = compact_engine(
            engine, ColdPolicy(block_traces=3, dict_bytes=1024), now=0.0
        )
        assert stats.params_traces == len(RECORDS)
        assert engine.storage_bytes() == logical_before
        assert engine.physical_storage_bytes() < logical_before
        assert engine.cold_savings_bytes() == stats.logical_bytes - (
            stats.physical_bytes + stats.dict_bytes
        )

    def test_compaction_is_idempotent(self):
        engine = self.drive_engine()
        compact_engine(engine, ColdPolicy())
        again = compact_engine(engine, ColdPolicy())
        assert again.blocks == 0
        assert again.params_traces == 0

    def test_lru_keeps_newest_hot(self):
        engine = self.drive_engine()
        compact_engine(engine, ColdPolicy(keep_hot_traces=2))
        tids = list(RECORDS)
        assert engine.params.is_sealed(tids[0])
        assert not engine.params.is_sealed(tids[-1])
        assert not engine.params.is_sealed(tids[-2])

    def test_time_window_seals_only_old_buckets(self):
        engine = self.drive_engine()
        # Bucket i's newest record is at 1.6 + i; seal those older than
        # now - max_age = 4.0 -> buckets 0 and 1 (1.6, 2.6) plus 2 (3.6).
        compact_engine(engine, ColdPolicy(mode="time", max_age=6.0), now=10.0)
        tids = list(RECORDS)
        assert engine.params.is_sealed(tids[0])
        assert engine.params.is_sealed(tids[2])
        assert not engine.params.is_sealed(tids[-1])

    def test_time_policy_requires_max_age(self):
        with pytest.raises(ValueError):
            ColdPolicy(mode="time")
        with pytest.raises(ValueError):
            ColdPolicy(mode="mru")
