"""Unit tests for the shared attribute catalog."""

import random

import pytest

from repro.parsing.clustering import cluster_strings
from repro.workloads import attr_catalog as cat


@pytest.fixture()
def rng():
    return random.Random(99)


ALL_STRING_SPECS = [
    ("sql_select", cat.sql_select("orders", ["id", "status"], "id")),
    ("sql_insert", cat.sql_insert("orders", ["id", "user_id"])),
    ("sql_update", cat.sql_update("orders", "status", "id")),
    ("http_url", cat.http_url("shop", "orders")),
    ("grpc_method", cat.grpc_method("pkg", "Svc", "Do")),
    ("thread_name", cat.thread_name("8080")),
    ("cache_key", cat.cache_key("ns", "entity")),
    ("mq_topic", cat.mq_topic("domain")),
    ("user_agent", cat.user_agent()),
    ("currency_amount", cat.currency_amount()),
    ("request_context", cat.request_context("svc")),
    ("consumer_group", cat.consumer_group("domain")),
]


class TestStringSpecs:
    @pytest.mark.parametrize("name,spec", ALL_STRING_SPECS)
    def test_generates_nonempty(self, name, spec, rng):
        value = spec.generate(rng)
        assert value
        assert "{" not in value and "}" not in value, name

    @pytest.mark.parametrize("name,spec", ALL_STRING_SPECS)
    def test_values_cluster_at_paper_threshold(self, name, spec, rng):
        """The workload design contract: same-spec values form ONE
        cluster at the paper's default 0.8 threshold."""
        values = [spec.generate(rng) for _ in range(12)]
        clusters = cluster_strings(values, threshold=0.8)
        assert len(clusters) == 1, (name, [c.members[:1] for c in clusters])

    def test_sql_text_is_verbose(self, rng):
        # Production SQL carries far more constant text than variables.
        value = cat.sql_select("t", ["a", "b", "c"], "a").generate(rng)
        assert len(value) > 250

    def test_context_blob_is_verbose(self, rng):
        assert len(cat.request_context("svc").generate(rng)) > 400


class TestNumericSpecs:
    def test_payload_bytes_integer_and_bounded(self, rng):
        spec = cat.payload_bytes(1024.0)
        for _ in range(100):
            value = spec.generate(rng)
            assert value >= 64.0
            assert value == int(value)

    def test_db_rows_nonnegative(self, rng):
        spec = cat.db_rows()
        assert all(spec.generate(rng) >= 0 for _ in range(100))

    def test_retry_count_mostly_small(self, rng):
        spec = cat.retry_count()
        values = [spec.generate(rng) for _ in range(200)]
        assert sum(1 for v in values if v <= 2) > 150
