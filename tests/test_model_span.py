"""Unit tests for the span data model."""

import pytest

from repro.model.span import SpanKind, SpanStatus
from tests.conftest import make_span


class TestSpanBasics:
    def test_root_detection(self):
        assert make_span(parent_id=None).is_root
        assert not make_span(parent_id="2" * 16).is_root

    def test_empty_parent_normalised_to_none(self):
        span = make_span(parent_id="")
        assert span.parent_id is None
        assert span.is_root

    def test_end_time(self):
        span = make_span(start_time=5.0, duration=2.5)
        assert span.end_time == 7.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_span(duration=-1.0)

    def test_default_kind_and_status(self):
        span = make_span()
        assert span.kind is SpanKind.SERVER
        assert span.status is SpanStatus.OK


class TestAttributeTyping:
    def test_string_attributes_filtered(self):
        span = make_span(attributes={"sql": "select 1", "rows": 3, "ratio": 0.5})
        assert span.string_attributes() == {"sql": "select 1"}

    def test_numeric_attributes_filtered(self):
        span = make_span(attributes={"sql": "select 1", "rows": 3, "ratio": 0.5})
        assert span.numeric_attributes() == {"rows": 3.0, "ratio": 0.5}

    def test_bool_not_treated_as_numeric(self):
        span = make_span(attributes={"flag": True})
        assert span.numeric_attributes() == {}

    def test_with_attributes_merges_without_mutation(self):
        span = make_span(attributes={"a": "1"})
        merged = span.with_attributes({"b": "2"})
        assert merged.attributes == {"a": "1", "b": "2"}
        assert span.attributes == {"a": "1"}

    def test_with_attributes_overrides(self):
        span = make_span(attributes={"a": "1"})
        assert span.with_attributes({"a": "9"}).attributes == {"a": "9"}
