"""Sharded collection plane: routing, merge layer, shard invariance.

The binding contract (ISSUE 2): ``ShardedBackend(num_shards=1)`` is
indistinguishable from :class:`~repro.backend.backend.MintBackend`,
and for any shard count the merged query results and byte tables are
identical to the single backend's over the same ingest stream.
"""

from __future__ import annotations

import pytest

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.backend.backend import MintBackend
from repro.backend.sharded import ShardedBackend, shard_for_key
from repro.baselines import MintFramework
from repro.model.encoding import encode_trace
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique
from tests.conftest import make_chain_trace, make_span

# node-0 and node-2 land on different shards at num_shards=2 (stable
# content hash; pinned by TestShardRouting.test_known_partition).
NODE_A, NODE_B = "node-0", "node-2"


def sharded_pair(num_shards: int = 2, config: MintConfig | None = None):
    """A ShardedBackend with one collector on each of two hosts."""
    backend = ShardedBackend(num_shards=num_shards)
    collectors = {}
    for node in (NODE_A, NODE_B):
        agent = MintAgent(node=node, config=config)
        collector = MintCollector(agent, backend.receive, config=config)
        backend.register_collector(collector)
        collectors[node] = collector
    return backend, collectors


def same_shape_subtraces(trace_id: str, abnormal: bool = False):
    """One identical-shape sub-trace per host (same service/op/attrs).

    Span pattern identity excludes the node, so both hosts learn the
    same content-id — the cross-shard dedup case.
    """
    from repro.model.trace import SubTrace

    attrs = {"msg": "downstream timeout detected"} if abnormal else {}
    subs = []
    for i, node in enumerate((NODE_A, NODE_B)):
        subs.append(
            SubTrace(
                trace_id=trace_id,
                node=node,
                spans=[
                    make_span(
                        trace_id=trace_id,
                        span_id=f"{i:016x}",
                        node=node,
                        attributes=dict(attrs),
                    )
                ],
            )
        )
    return subs


class TestShardRouting:
    def test_known_partition(self):
        assert shard_for_key(NODE_A, 2) != shard_for_key(NODE_B, 2)

    def test_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 8, 13):
            for i in range(50):
                key = f"host-{i}"
                shard = shard_for_key(key, num_shards)
                assert 0 <= shard < num_shards
                assert shard == shard_for_key(key, num_shards)

    def test_single_shard_is_zero(self):
        assert shard_for_key("anything", 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_for_key("x", 0)
        with pytest.raises(ValueError):
            ShardedBackend(num_shards=0)

    def test_collectors_grouped_by_owning_shard(self):
        backend, collectors = sharded_pair()
        shard_a = backend.shard_for(NODE_A)
        shard_b = backend.shard_for(NODE_B)
        assert collectors[NODE_A] in backend.collectors_on_shard(shard_a)
        assert collectors[NODE_A] not in backend.collectors_on_shard(shard_b)
        assert collectors[NODE_B] in backend.collectors_on_shard(shard_b)


class TestMergeLayer:
    def test_cross_shard_pattern_dedup(self):
        """The same content-id learned on two shards is charged once
        in the merged table; the physical copies are the merge
        overhead."""
        backend, collectors = sharded_pair()
        for sub in same_shape_subtraces("1" * 32):
            collectors[sub.node].process(sub, now=0.0)
        for collector in collectors.values():
            collector.flush(now=100.0)
        shard_sum = sum(shard.pattern_bytes for shard in backend.shards)
        merged = backend.merged.pattern_bytes
        assert merged > 0
        # Both shards hold a physical copy...
        assert all(shard.pattern_bytes > 0 for shard in backend.shards)
        # ...but the merged (logical) table deduplicates by content id.
        assert merged < shard_sum
        assert backend.merged.replicated_pattern_bytes() == shard_sum - merged

    def test_merged_byte_table_matches_single_backend(self):
        """Identical reports into a ShardedBackend and a MintBackend
        produce identical merged byte tables."""
        reports: list = []
        single = MintBackend()
        backend = ShardedBackend(num_shards=2)
        collectors = {}
        for node in (NODE_A, NODE_B):
            agent = MintAgent(node=node)
            collector = MintCollector(agent, reports.append)
            backend.register_collector(collector)
            collectors[node] = collector
        for sub in same_shape_subtraces("1" * 32, abnormal=True):
            collectors[sub.node].process(sub, now=0.0)
        for collector in collectors.values():
            collector.flush(now=100.0)
        for report in reports:
            single.receive(report)
            backend.receive(report)
        assert backend.merged.pattern_bytes == single.storage.pattern_bytes
        assert backend.merged.bloom_bytes == single.storage.bloom_bytes
        assert backend.merged.params_bytes == single.storage.params_bytes
        assert backend.storage_bytes() == single.storage_bytes()

    def test_numeric_ranges_merge_min_max(self):
        from repro.agent.reports import PatternLibraryReport
        from repro.parsing.span_parser import SpanPattern

        backend = ShardedBackend(num_shards=2)
        pattern = {
            "name": "op",
            "service": "svc",
            "kind": "server",
            "status": "ok",
            "attributes": [],
        }
        pattern_id = SpanPattern.from_dict(pattern).pattern_id
        backend.receive(
            PatternLibraryReport(
                node=NODE_A,
                span_patterns=[dict(pattern, numeric_ranges={"ms": (2.0, 10.0)})],
            )
        )
        backend.receive(
            PatternLibraryReport(
                node=NODE_B,
                span_patterns=[dict(pattern, numeric_ranges={"ms": (1.0, 7.0)})],
            )
        )
        assert backend.merged.numeric_ranges.get(pattern_id) == {"ms": (1.0, 10.0)}

    def test_bloom_prescreen_equals_brute_force(self):
        """The OR'd pre-screen index must change nothing: the match set
        equals a filter-by-filter scan of every shard."""
        config = MintConfig(edge_case_base_rate=0.0)
        backend, collectors = sharded_pair(config=config)
        trace_ids = [f"{i:032x}" for i in range(1, 30)]
        for trace_id in trace_ids:
            for sub in same_shape_subtraces(trace_id):
                collectors[sub.node].process(sub, now=0.0)
        for collector in collectors.values():
            collector.flush(now=100.0)
        assert backend.merged.blooms  # flushed filters exist on shards
        for probe in trace_ids + ["f" * 32, "0" * 32]:
            brute = [
                stored
                for shard in backend.shards
                for stored in shard.blooms
                if probe in stored.filter
            ]
            screened = backend.merged.patterns_matching_trace(probe)
            assert {id(b) for b in screened} == {id(b) for b in brute}

    def test_saturated_prescreen_stays_exact(self):
        """When a pattern's OR accumulator saturates it is dropped and
        the pattern becomes an unconditional candidate — match sets
        must still equal the brute-force scan."""
        config = MintConfig(bloom_buffer_bytes=16, edge_case_base_rate=0.0)
        backend = ShardedBackend(num_shards=2, bloom_buffer_bytes=16)
        collectors = {}
        for node in (NODE_A, NODE_B):
            agent = MintAgent(node=node, config=config)
            collector = MintCollector(agent, backend.receive, config=config)
            backend.register_collector(collector)
            collectors[node] = collector
        trace_ids = [f"{i:032x}" for i in range(1, 120)]
        for trace_id in trace_ids:
            for sub in same_shape_subtraces(trace_id):
                collectors[sub.node].process(sub, now=0.0)
        for collector in collectors.values():
            collector.flush(now=100.0)
        # Tiny 16-byte filters flush constantly; OR-ing them saturates
        # the accumulator past the cutoff and evicts it.
        assert backend.merged._prescreen_saturated
        for probe in trace_ids[-10:] + ["f" * 32]:
            brute = {
                id(stored)
                for shard in backend.shards
                for stored in shard.blooms
                if probe in stored.filter
            }
            screened = {
                id(b) for b in backend.merged.patterns_matching_trace(probe)
            }
            assert screened == brute

    def test_query_shard_sees_only_the_partition(self):
        """Per-shard diagnostic queries expose the partial view the
        merge layer reconciles: each shard can answer only from its own
        hosts' reports, while the fan-out query sees the whole trace."""
        backend, collectors = sharded_pair()
        for sub in same_shape_subtraces("1" * 32, abnormal=True):
            collectors[sub.node].process(sub, now=0.0)
        shard_a = backend.shard_for(NODE_A)
        shard_b = backend.shard_for(NODE_B)
        result_a = backend.querier.query_shard(shard_a, "1" * 32)
        result_b = backend.querier.query_shard(shard_b, "1" * 32)
        assert {span.node for span in result_a.trace.spans} == {NODE_A}
        assert {span.node for span in result_b.trace.spans} == {NODE_B}
        merged = backend.query("1" * 32)
        assert {span.node for span in merged.trace.spans} == {NODE_A, NODE_B}

    def test_merged_params_fan_out(self):
        """A multi-host trace's records concatenate across the shards
        owning its hosts; iteration unions trace ids without dupes."""
        backend, collectors = sharded_pair()
        for sub in same_shape_subtraces("1" * 32):
            collectors[sub.node].process(sub, now=0.0)
        backend.notify_sampled("1" * 32)
        records = backend.merged.params.get("1" * 32)
        assert records is not None and len(records) == 2
        assert {record[2] for record in records} == {NODE_A, NODE_B}
        assert "1" * 32 in backend.merged.params
        assert list(backend.merged.params) == ["1" * 32]
        assert backend.merged.has_params("1" * 32)
        assert backend.merged.params.get("9" * 32) is None

    def test_cross_shard_pattern_resolution_at_query_time(self):
        """Params stored on one shard reconstruct through a pattern that
        only the *other* shard has received (content ids make the merged
        library one namespace)."""
        reports: list = []
        backend = ShardedBackend(num_shards=2)
        collectors = {}
        for node in (NODE_A, NODE_B):
            agent = MintAgent(node=node)
            collector = MintCollector(agent, reports.append)
            backend.register_collector(collector)
            collectors[node] = collector
        # Silence B's periodic pattern report (fresh collectors report on
        # the first tick): pretend one was just sent, and keep ``now``
        # inside the report interval.
        collectors[NODE_B]._last_pattern_report = 0.0
        subs = same_shape_subtraces("1" * 32, abnormal=True)
        for sub in subs:
            collectors[sub.node].process(sub, now=0.0)
        collectors[NODE_A].flush(now=100.0)  # only A uploads patterns
        for report in reports:
            backend.receive(report)
        # B's params arrived (sampling), B's pattern report did not —
        # yet B's records resolve via A's identical content-id pattern.
        result = backend.query("1" * 32)
        assert result.status == "exact"
        assert {span.node for span in result.trace.spans} == {NODE_A, NODE_B}


class TestShardInvariance:
    """The acceptance contract, end to end over a real workload."""

    SHARD_COUNTS = (1, 2, 4, 8)
    NUM_TRACES = 150

    @pytest.fixture(scope="class")
    def stream(self):
        stream, _ = generate_stream(build_onlineboutique(), self.NUM_TRACES, seed=9)
        return stream

    @pytest.fixture(scope="class")
    def reference(self, stream):
        return self._drive(MintFramework(auto_warmup_traces=40), stream)

    @pytest.fixture(scope="class")
    def sharded(self, stream):
        return {
            count: self._drive(
                MintFramework(
                    deployment=Deployment.sharded(count), auto_warmup_traces=40
                ),
                stream,
            )
            for count in self.SHARD_COUNTS
        }

    @staticmethod
    def _drive(framework, stream):
        last = 0.0
        for now, trace in stream:
            framework.process_trace(trace, now)
            last = now
        framework.finalize(last)
        return framework

    def test_single_shard_equals_single_backend(self, stream, reference, sharded):
        single = sharded[1]
        for _, trace in stream:
            a = reference.query_full(trace.trace_id)
            b = single.query_full(trace.trace_id)
            assert a.status == b.status, trace.trace_id

    def test_query_results_identical_at_every_shard_count(
        self, stream, reference, sharded
    ):
        for count, framework in sharded.items():
            for _, trace in stream:
                a = reference.query_full(trace.trace_id)
                b = framework.query_full(trace.trace_id)
                assert a.status == b.status, (count, trace.trace_id)
                if a.status == "exact":
                    assert encode_trace(a.trace) == encode_trace(b.trace), (
                        count,
                        trace.trace_id,
                    )
                elif a.status == "partial":
                    sig_a = [
                        (seg.topo_pattern_id, seg.nodes_reporting, seg.spans)
                        for seg in a.approximate.segments
                    ]
                    sig_b = [
                        (seg.topo_pattern_id, seg.nodes_reporting, seg.spans)
                        for seg in b.approximate.segments
                    ]
                    assert sig_a == sig_b, (count, trace.trace_id)

    def test_byte_tables_identical_at_every_shard_count(self, reference, sharded):
        ref = reference.backend.storage
        for count, framework in sharded.items():
            merged = framework.backend.storage
            assert merged.pattern_bytes == ref.pattern_bytes, count
            assert merged.bloom_bytes == ref.bloom_bytes, count
            assert merged.params_bytes == ref.params_bytes, count
            assert framework.storage_bytes == reference.storage_bytes, count
            assert framework.network_bytes == reference.network_bytes, count

    def test_stored_trace_ids_identical(self, reference, sharded):
        want = reference.stored_trace_ids()
        for count, framework in sharded.items():
            assert framework.stored_trace_ids() == want, count

    def test_per_shard_meters_sum_to_deployment_network(self, sharded):
        for count, framework in sharded.items():
            rows = framework.shard_meter_rows()
            assert len(rows) == count
            assert (
                sum(row.network_bytes for row in rows) == framework.network_bytes
            ), count

    def test_shard_storage_sums_to_merged_plus_replication(self, sharded):
        for count, framework in sharded.items():
            backend = framework.backend
            physical = sum(shard.storage_bytes() for shard in backend.shards)
            assert (
                physical
                == backend.storage_bytes()
                + backend.merged.replicated_pattern_bytes()
            ), count

    def test_shard_summaries_cover_all_hosts(self, sharded):
        for count, framework in sharded.items():
            summaries = framework.shard_summaries()
            assert len(summaries) == count
            hosts = [host for summary in summaries for host in summary.hosts]
            assert sorted(hosts) == sorted(framework._collectors)


class TestCrossShardNotify:
    def test_notify_broadcasts_to_other_shards(self):
        backend, collectors = sharded_pair(
            config=MintConfig(edge_case_base_rate=0.0)
        )
        trace = make_chain_trace(depth=4, trace_id="a1" * 16, nodes=(NODE_A, NODE_B))
        for sub in trace.sub_traces():
            collectors[sub.node].process(sub, now=0.0)
        # A host on one shard samples; hosts on *other* shards upload.
        backend.notify_sampled(trace.trace_id, origin_node=NODE_A)
        collectors[NODE_A].mark_sampled(trace.trace_id)
        result = backend.query(trace.trace_id)
        assert result.status == "exact"
        assert len(result.trace.spans) == 4
        assert {span.node for span in result.trace.spans} == {NODE_A, NODE_B}

    def test_notify_meter_charges_every_non_origin_host_once(self):
        charges: list[tuple[str, int]] = []
        backend = ShardedBackend(
            num_shards=4, notify_meter=lambda node, b: charges.append((node, b))
        )
        nodes = [f"node-{i}" for i in range(6)]
        for node in nodes:
            collector = MintCollector(MintAgent(node=node), backend.receive)
            backend.register_collector(collector)
        backend.notify_sampled("1" * 32, origin_node="node-3")
        assert sorted(node for node, _ in charges) == sorted(
            node for node in nodes if node != "node-3"
        )
        assert all(nbytes == 64 for _, nbytes in charges)

    def test_notify_dedup_is_fleet_wide(self):
        charges: list[tuple[str, int]] = []
        backend = ShardedBackend(
            num_shards=2, notify_meter=lambda node, b: charges.append((node, b))
        )
        for node in (NODE_A, NODE_B):
            backend.register_collector(
                MintCollector(MintAgent(node=node), backend.receive)
            )
        backend.notify_sampled("1" * 32, origin_node=NODE_A)
        first = list(charges)
        # Re-notifying from any origin (even another shard's host) is a
        # no-op: one notification per trace id across the whole fleet.
        backend.notify_sampled("1" * 32, origin_node=NODE_B)
        backend.notify_sampled("1" * 32)
        assert charges == first
        assert "1" * 32 in backend.merged.sampled_trace_ids

    def test_retroactive_pull_spans_shards(self):
        config = MintConfig(edge_case_base_rate=0.0)
        backend, collectors = sharded_pair(config=config)
        trace_ids = [f"{i:032x}" for i in range(1, 8)]
        for trace_id in trace_ids:
            for sub in same_shape_subtraces(trace_id):
                collectors[sub.node].process(sub, now=float(len(trace_ids)))
        for collector in collectors.values():
            collector.flush(now=100.0)
        probe = trace_ids[-1]
        assert backend.query(probe).status == "partial"
        # pull_params asks every host fleet-wide; buffers were flushed,
        # params arrive, and the answer upgrades to exact.
        upgraded = backend.query(probe, pull_params=True)
        assert upgraded.status == "exact"
        assert {span.node for span in upgraded.trace.spans} == {NODE_A, NODE_B}
