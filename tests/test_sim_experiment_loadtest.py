"""Unit tests for the experiment and load-test harnesses."""

import pytest

from repro.baselines import MintFramework, OTFull, OTHead
from repro.net import CHAOS_PROFILES
from repro.sim.experiment import (
    FrameworkRun,
    rca_views_for_framework,
    run_experiment,
    run_net_experiment,
    run_sharded_experiment,
)
from repro.sim.loadtest import (
    CHAOS_SCENARIOS,
    FIG14_LOAD_TESTS,
    LoadTestSpec,
    measure_query_latency,
    restrict_apis,
    run_load_test,
    run_net_load_test,
    run_sharded_load_test,
    tracing_memory_bytes,
)
from repro.workloads import build_onlineboutique


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            build_onlineboutique(),
            factories={"OT-Full": OTFull, "OT-Head": lambda: OTHead(0.05)},
            num_traces=150,
            seed=3,
        )

    def test_all_frameworks_ran(self, result):
        assert set(result.runs) == {"OT-Full", "OT-Head"}
        assert result.trace_count == 150

    def test_raw_bytes_positive(self, result):
        assert result.raw_bytes > 0

    def test_hits_cover_all_queries(self, result):
        for run in result.runs.values():
            assert sum(run.hits.values()) == result.trace_count

    def test_records_match_stream(self, result):
        assert len(result.records) == result.trace_count
        abnormal = [r for r in result.records if r.is_abnormal]
        assert set(result.fault_targets) == {r.trace_id for r in abnormal}

    def test_process_seconds_measured(self, result):
        for run in result.runs.values():
            assert run.process_seconds > 0


class TestRcaViews:
    def test_baseline_views_limited_to_stored(self):
        result = run_experiment(
            build_onlineboutique(),
            factories={"OT-Head": lambda: OTHead(0.10)},
            num_traces=120,
            seed=5,
            query_all=False,
        )
        run = result.runs["OT-Head"]
        views = rca_views_for_framework(run, result.traces)
        assert len(views) == len(run.framework.stored_trace_ids())

    def test_mint_views_cover_everything(self):
        result = run_experiment(
            build_onlineboutique(),
            factories={"Mint": lambda: MintFramework(auto_warmup_traces=20)},
            num_traces=120,
            seed=6,
            query_all=False,
        )
        views = rca_views_for_framework(result.runs["Mint"], result.traces)
        assert len(views) == result.trace_count
        sources = {v.source for v in views}
        assert sources == {"exact", "approximate"}

    def test_missing_framework_gives_empty(self):
        run = FrameworkRun("x", 0, 0, 0.0, framework=None)
        assert rca_views_for_framework(run, []) == []


class TestShardedExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sharded_experiment(
            build_onlineboutique(),
            shard_counts=(1, 2),
            num_traces=100,
            seed=4,
            auto_warmup_traces=25,
        )

    def test_invariant_holds(self, result):
        assert result.invariant, result.violations
        assert result.violations == []

    def test_all_shard_counts_ran(self, result):
        assert set(result.runs) == {1, 2}
        assert result.trace_count == 100
        for run in result.runs.values():
            assert run.hits == result.reference.hits
            assert run.network_bytes == result.reference.network_bytes
            assert run.storage_bytes == result.reference.storage_bytes

    def test_per_shard_meters_reported(self, result):
        for count, rows in result.shard_meters.items():
            assert len(rows) == count
            assert sum(r.network_bytes for r in rows) == result.runs[count].network_bytes
            hosts = [host for row in rows for host in row.hosts]
            assert len(hosts) == len(set(hosts))
        assert set(result.replicated_pattern_bytes) == {1, 2}
        assert result.replicated_pattern_bytes[1] == 0


class TestShardedLoadTest:
    def test_sharded_load_test_splits_by_shard(self):
        spec = LoadTestSpec("T", qps=200, api_count=2)
        result = run_sharded_load_test(
            spec, build_onlineboutique(), num_shards=4
        )
        assert result.overall.replica == "Mint x4"
        assert result.num_shards == 4
        assert len(result.shard_egress_bytes) == 4
        assert sum(result.shard_egress_bytes) == result.overall.egress_bytes
        # Shards persist real bytes; replication never exceeds what the
        # shards physically hold.
        assert sum(result.shard_storage_bytes) > 0
        assert 0 <= result.replicated_pattern_bytes < sum(result.shard_storage_bytes)

    def test_single_shard_load_test_matches_reference_shape(self):
        spec = LoadTestSpec("T", qps=200, api_count=1)
        result = run_sharded_load_test(
            spec, build_onlineboutique(), num_shards=1
        )
        assert result.shard_egress_bytes == [result.overall.egress_bytes]
        assert result.replicated_pattern_bytes == 0


class TestNetExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_net_experiment(
            build_onlineboutique(),
            profiles={"drop": CHAOS_PROFILES["drop"]},
            num_traces=120,
            seed=3,
            auto_warmup_traces=40,
        )

    def test_lossless_net_is_bit_identical(self, result):
        assert result.lossless.converged, result.lossless.violations
        assert result.lossless.retransmit_bytes == 0

    def test_chaos_converges_with_retransmit_overhead_only(self, result):
        run = result.chaos["drop"]
        assert run.converged, run.violations
        assert run.run.network_bytes == result.reference.network_bytes
        assert run.run.storage_bytes == result.reference.storage_bytes
        assert run.retransmit_bytes > 0
        assert run.delivery["totals"]["dropped"] > 0
        assert result.converged and not result.violations


class TestNetLoadTest:
    def test_chaos_scenarios_pair_load_shapes_with_profiles(self):
        assert {profile for _, _, profile in CHAOS_SCENARIOS} == set(CHAOS_PROFILES)

    def test_net_load_test_reports_delivery_metrics(self):
        spec = LoadTestSpec("T", qps=400, api_count=2)
        result = run_net_load_test(
            spec,
            build_onlineboutique(),
            profile=CHAOS_PROFILES["drop"],
            scale=0.05,
        )
        assert result.profile == "drop"
        assert result.overall.replica.startswith("Mint net[")
        assert result.overall.egress_bytes > 0
        totals = result.delivery["totals"]
        assert totals["delivered_reports"] == totals["sent_reports"]

    def test_lossless_net_load_test_matches_local_egress(self):
        spec = LoadTestSpec("T", qps=200, api_count=1)
        local = run_load_test(
            spec,
            build_onlineboutique(),
            lambda: MintFramework(auto_warmup_traces=30),
            "Mint",
        )
        net = run_net_load_test(spec, build_onlineboutique(), profile=None)
        assert net.retransmit_bytes == 0
        assert net.overall.egress_bytes == local.egress_bytes


class TestLoadTests:
    def test_fig14_spec_table(self):
        assert len(FIG14_LOAD_TESTS) == 14
        assert FIG14_LOAD_TESTS[0].qps == 200
        assert FIG14_LOAD_TESTS[8].api_count == 8

    def test_restrict_apis(self):
        workload = build_onlineboutique()
        limited = restrict_apis(workload, 2)
        assert len(limited.apis) == 2
        # Out-of-range counts clamp instead of failing.
        assert len(restrict_apis(workload, 99).apis) == len(workload.apis)
        assert len(restrict_apis(workload, 0).apis) == 1

    def test_no_tracing_replica_is_free(self):
        spec = LoadTestSpec("T", qps=200, api_count=2)
        result = run_load_test(spec, build_onlineboutique(), None, "No-Tracing")
        assert result.egress_bytes == 0
        assert result.cpu_seconds == 0.0
        assert result.ingress_bytes > 0

    def test_traced_replica_measured(self):
        spec = LoadTestSpec("T", qps=200, api_count=2)
        result = run_load_test(
            spec,
            build_onlineboutique(),
            lambda: MintFramework(auto_warmup_traces=10),
            "Mint",
        )
        assert result.egress_bytes > 0
        assert result.cpu_seconds > 0
        assert result.memory_bytes > 0
        assert result.request_latency_overhead_ms > 0

    def test_memory_accounting_only_for_mint(self):
        assert tracing_memory_bytes(OTFull()) == 0

    def test_query_latency_stats(self):
        framework = OTFull()
        from tests.conftest import make_chain_trace

        trace = make_chain_trace(depth=2)
        framework.process_trace(trace, 0.0)
        stats = measure_query_latency(framework, [trace.trace_id] * 10)
        assert stats["mean_ms"] >= 0
        assert stats["p95_ms"] >= stats["mean_ms"] * 0.5
        assert measure_query_latency(framework, []) == {
            "mean_ms": 0.0,
            "p95_ms": 0.0,
        }
