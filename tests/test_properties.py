"""Property-based tests (hypothesis) for core invariants.

These pin down the guarantees the whole design leans on:

* Bloom filters never produce false negatives;
* templates reconstruct exactly what they extracted;
* numeric bucket + offset reconstructs the original value;
* the Params Buffer never exceeds its byte budget;
* wire encodings round-trip;
* LCS similarity is a symmetric, bounded measure.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bloom_filter import BloomFilter
from repro.model.encoding import decode_span, encode_span
from repro.model.span import Span, SpanKind, SpanStatus
from repro.parsing.lcs import lcs_length, token_similarity
from repro.parsing.numeric_buckets import NumericBucketer
from repro.parsing.string_patterns import WILDCARD, StringTemplate, template_from_text
from repro.parsing.tokenizer import detokenize, tokenize

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
hex_ids = st.text(alphabet="0123456789abcdef", min_size=8, max_size=32)
words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)
token_lists = st.lists(words, min_size=0, max_size=12)
safe_text = st.text(
    alphabet=st.characters(blacklist_characters="<>*", blacklist_categories=("Cs",)),
    min_size=0,
    max_size=60,
)
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
class TestBloomProperties:
    @given(st.lists(hex_ids, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_false_negative(self, items):
        filt = BloomFilter(expected_insertions=max(64, len(items)))
        for item in items:
            filt.add(item)
        for item in items:
            assert item in filt

    @given(st.lists(hex_ids, min_size=1, max_size=100), st.lists(hex_ids, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_union_superset_of_both(self, left, right):
        a = BloomFilter(256, 0.01)
        b = BloomFilter(256, 0.01)
        for item in left:
            a.add(item)
        for item in right:
            b.add(item)
        merged = a.union(b)
        for item in left + right:
            assert item in merged

    @given(st.lists(hex_ids, min_size=1, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_serialisation_preserves_membership(self, items):
        filt = BloomFilter(256, 0.01)
        for item in items:
            filt.add(item)
        clone = BloomFilter.from_bytes(filt.to_bytes(), 256, 0.01, len(items))
        for item in items:
            assert item in clone


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
class TestTemplateProperties:
    @given(safe_text)
    @settings(max_examples=100, deadline=None)
    def test_tokenize_detokenize_stable(self, text):
        tokens = tokenize(text)
        rebuilt = detokenize(tokens)
        # Whitespace is normalised once; a second pass is a fixpoint.
        assert detokenize(tokenize(rebuilt)) == rebuilt

    @given(st.lists(words, min_size=1, max_size=6), st.lists(words, min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_extract_reconstruct_inverse(self, literals, fills):
        # Build a template alternating literals and wildcards.
        tokens: list[str] = []
        for lit in literals:
            tokens.append(lit)
            tokens.append(" ")
            tokens.append(WILDCARD)
            tokens.append(" ")
        template = StringTemplate(tokens=tuple(tokens[:-1]))
        params = [fills[i % len(fills)] for i in range(template.wildcard_count)]
        value = template.reconstruct(params)
        extracted = template.extract(value)
        assert extracted is not None
        assert template.reconstruct(extracted) == value

    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_template_text_round_trip(self, literals):
        tokens = []
        for i, lit in enumerate(literals):
            tokens.append(lit)
            if i % 2 == 0:
                tokens.append(WILDCARD)
        template = StringTemplate(tokens=tuple(tokens))
        rebuilt = template_from_text(template.text)
        assert rebuilt.wildcard_count == template.wildcard_count


# ----------------------------------------------------------------------
# Numeric bucketing
# ----------------------------------------------------------------------
class TestBucketProperties:
    @given(
        finite_floats,
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=200, deadline=None)
    def test_bucket_plus_offset_reconstructs(self, value, alpha):
        bucketer = NumericBucketer(alpha=alpha)
        bucket = bucketer.bucket_of(value)
        param = bucketer.parameter_of(value) if value != 0 else 0.0
        rebuilt = bucketer.reconstruct(bucket, param)
        assert math.isclose(rebuilt, value, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.floats(min_value=1e-6, max_value=1e12))
    @settings(max_examples=200, deadline=None)
    def test_value_within_bucket(self, value):
        bucketer = NumericBucketer(alpha=0.5)
        bucket = bucketer.bucket_of(value)
        assert bucket.lower <= value * (1 + 1e-12)
        assert value <= bucket.upper * (1 + 1e-12)

    @given(st.floats(min_value=1.001, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_representative_error_bounded(self, value):
        bucketer = NumericBucketer(alpha=0.5)
        bucket = bucketer.bucket_of(value)
        rel_error = abs(bucket.midpoint - value) / value
        assert rel_error <= bucketer.relative_error_bound() + 1e-9


# ----------------------------------------------------------------------
# LCS
# ----------------------------------------------------------------------
class TestLcsProperties:
    @given(token_lists, token_lists)
    @settings(max_examples=100, deadline=None)
    def test_similarity_symmetric_and_bounded(self, a, b):
        s_ab = token_similarity(a, b)
        s_ba = token_similarity(b, a)
        assert math.isclose(s_ab, s_ba)
        assert 0.0 <= s_ab <= 1.0

    @given(token_lists)
    @settings(max_examples=100, deadline=None)
    def test_self_similarity_is_one(self, a):
        assert token_similarity(a, a) == 1.0

    @given(token_lists, token_lists)
    @settings(max_examples=100, deadline=None)
    def test_lcs_bounded_by_shorter(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))


# ----------------------------------------------------------------------
# Params buffer budget
# ----------------------------------------------------------------------
class TestBufferProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(10, 400)),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=500, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, additions, capacity):
        from repro.agent.params_buffer import ParamsBuffer
        from repro.parsing.span_parser import ParsedSpan

        buf = ParamsBuffer(capacity_bytes=capacity)
        for i, (trace_n, payload_len) in enumerate(additions):
            buf.add(
                ParsedSpan(
                    trace_id=f"{trace_n:032x}",
                    span_id=f"{i:016x}",
                    parent_id=None,
                    node="n",
                    start_time=0.0,
                    pattern_id="p" * 16,
                    params={"v": ["x" * payload_len]},
                )
            )
            # Invariant: over budget only if a single block exceeds it
            # and is the only block (nothing left to evict).
            assert buf.used_bytes <= capacity or len(buf) == 1


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @given(
        hex_ids,
        st.dictionaries(
            st.text(
                alphabet=st.characters(blacklist_characters="_", blacklist_categories=("Cs",)),
                min_size=1,
                max_size=10,
            ).filter(lambda k: not k.startswith("__")),
            st.one_of(safe_text, st.integers(-1000, 1000), finite_floats),
            max_size=5,
        ),
        st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_span_encoding_round_trip(self, span_id_raw, attributes, duration):
        span = Span(
            trace_id="a" * 32,
            span_id=(span_id_raw + "0" * 16)[:16],
            parent_id=None,
            name="op",
            service="svc",
            kind=SpanKind.SERVER,
            status=SpanStatus.OK,
            start_time=1.5,
            duration=duration,
            node="node-0",
            attributes=attributes,
        )
        assert decode_span(encode_span(span)) == span
