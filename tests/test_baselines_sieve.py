"""Unit tests for the Sieve RRCF-based sampler."""

import pytest

from repro.baselines.sieve import Sieve, trace_features
from repro.model.encoding import encoded_size
from tests.conftest import make_chain_trace


class TestTraceFeatures:
    def test_fixed_dimensionality(self):
        trace = make_chain_trace(depth=3)
        assert len(trace_features(trace, dims=12)) == 12

    def test_structural_features(self):
        trace = make_chain_trace(depth=3)
        features = trace_features(trace)
        assert features[0] == 3.0  # span count
        assert features[1] == 3.0  # depth

    def test_different_shapes_different_vectors(self):
        a = trace_features(make_chain_trace(depth=2, trace_id="1" * 32))
        b = trace_features(make_chain_trace(depth=5, trace_id="2" * 32))
        assert a != b


class TestSieve:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Sieve(budget_rate=0.0)

    def test_network_charged_for_all(self):
        sieve = Sieve(warmup=0)
        total = 0
        for i in range(30):
            trace = make_chain_trace(depth=2, trace_id=f"{i:032x}")
            sieve.process_trace(trace, 0.0)
            total += encoded_size(trace)
        assert sieve.network_bytes == total

    def test_storage_bounded_by_budget(self):
        sieve = Sieve(budget_rate=0.1, warmup=50, seed=5)
        for i in range(400):
            trace = make_chain_trace(
                depth=(i % 3) + 1, trace_id=f"{i:032x}"
            )
            sieve.process_trace(trace, 0.0)
        stored_fraction = len(sieve.stored_trace_ids()) / 400
        assert stored_fraction < 0.35

    def test_rare_shapes_preferentially_stored(self):
        sieve = Sieve(budget_rate=0.08, warmup=40, seed=6)
        rare_ids = []
        for i in range(400):
            if i % 50 == 49:
                trace = make_chain_trace(depth=8, trace_id=f"{i:032x}")
                rare_ids.append(trace.trace_id)
            else:
                trace = make_chain_trace(depth=2, trace_id=f"{i:032x}")
            sieve.process_trace(trace, 0.0)
        stored = sieve.stored_trace_ids()
        rare_kept = sum(1 for tid in rare_ids if tid in stored)
        # Rare deep traces (after warm-up) are mostly kept.
        assert rare_kept >= len(rare_ids) // 2

    def test_query_statuses(self):
        sieve = Sieve(warmup=0)
        trace = make_chain_trace(depth=2, trace_id="7" * 32)
        sieve.process_trace(trace, 0.0)
        assert sieve.query("7" * 32).status in ("exact", "miss")
        assert sieve.query("8" * 32).status == "miss"
