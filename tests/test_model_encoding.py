"""Unit tests for wire encoding and the byte ruler."""

import pytest

from repro.model.encoding import decode_span, decode_trace, encode_span, encode_trace, encoded_size
from repro.model.span import SpanKind, SpanStatus
from tests.conftest import make_chain_trace, make_span


class TestSpanRoundTrip:
    def test_simple_round_trip(self):
        span = make_span(attributes={"sql": "select 1", "rows": 3})
        assert decode_span(encode_span(span)) == span

    def test_round_trip_preserves_kind_and_status(self):
        span = make_span(kind=SpanKind.CLIENT, status=SpanStatus.ERROR)
        decoded = decode_span(encode_span(span))
        assert decoded.kind is SpanKind.CLIENT
        assert decoded.status is SpanStatus.ERROR

    def test_round_trip_preserves_none_parent(self):
        decoded = decode_span(encode_span(make_span(parent_id=None)))
        assert decoded.parent_id is None

    def test_unicode_attribute_values(self):
        span = make_span(attributes={"msg": "延迟过高 — timeout"})
        assert decode_span(encode_span(span)).attributes["msg"] == "延迟过高 — timeout"


class TestTraceRoundTrip:
    def test_trace_round_trip(self):
        trace = make_chain_trace(depth=3)
        assert decode_trace(encode_trace(trace)) == trace

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_trace("")


class TestEncodedSize:
    def test_span_size_positive(self):
        assert encoded_size(make_span()) > 0

    def test_trace_size_is_sum_of_lines(self):
        trace = make_chain_trace(depth=3)
        per_span = sum(encoded_size(s) for s in trace.spans)
        # Newlines join the spans: n-1 extra bytes.
        assert encoded_size(trace) == per_span + len(trace.spans) - 1

    def test_str_and_bytes(self):
        assert encoded_size("abc") == 3
        assert encoded_size(b"abcd") == 4
        assert encoded_size("é") == 2  # utf-8

    def test_json_fallback(self):
        assert encoded_size({"a": 1}) == len('{"a":1}')

    def test_more_attributes_cost_more(self):
        small = make_span(attributes={"a": "1"})
        big = make_span(attributes={"a": "1", "b": "2" * 100})
        assert encoded_size(big) > encoded_size(small) + 100
