"""Unit tests for the Symptom, Edge-Case, Head and Tail samplers."""

from repro.agent.samplers import EdgeCaseSampler, HeadSampler, SymptomSampler, TailSampler
from repro.model.trace import SubTrace
from repro.parsing.span_parser import DURATION_KEY, ParsedSpan, SpanParser
from repro.parsing.trace_parser import ParsedSubTrace, TopoPatternLibrary, TraceParser
from tests.conftest import make_span


def parsed_with(params: dict, pattern_id: str = "p" * 16) -> ParsedSubTrace:
    span = ParsedSpan(
        trace_id="t" * 32,
        span_id="s" * 16,
        parent_id=None,
        node="node-0",
        start_time=0.0,
        pattern_id=pattern_id,
        params=params,
    )
    return ParsedSubTrace(
        trace_id="t" * 32, node="node-0", topo_pattern_id="tp", parsed_spans=[span]
    )


def dummy_subtrace() -> SubTrace:
    return SubTrace(trace_id="t" * 32, node="node-0", spans=[make_span()])


class TestSymptomSampler:
    def test_abnormal_word_fires(self):
        sampler = SymptomSampler(abnormal_words=("timeout",))
        parsed = parsed_with({"msg": ["connection timeout after 3000ms"]})
        assert sampler.observe(dummy_subtrace(), parsed)

    def test_word_boundary_prevents_hex_false_positive(self):
        sampler = SymptomSampler(abnormal_words=("500",))
        parsed = parsed_with({"id": ["a500b3c2"]})
        assert not sampler.observe(dummy_subtrace(), parsed)
        parsed = parsed_with({"status": ["code=500 returned"]})
        assert sampler.observe(dummy_subtrace(), parsed)

    def test_duration_outlier_fires_after_window(self):
        sampler = SymptomSampler(percentile=95.0, min_observations=20)
        sub = dummy_subtrace()
        for i in range(60):
            sampler.observe(sub, parsed_with({DURATION_KEY: 10.0 + (i % 5)}))
        assert sampler.observe(sub, parsed_with({DURATION_KEY: 500.0}))

    def test_normal_durations_do_not_fire(self):
        sampler = SymptomSampler(percentile=95.0, min_observations=20)
        sub = dummy_subtrace()
        fired = 0
        for i in range(200):
            fired += sampler.observe(sub, parsed_with({DURATION_KEY: 10.0 + (i % 7)}))
        assert fired == 0

    def test_non_duration_numeric_ignored_by_default(self):
        sampler = SymptomSampler(percentile=95.0, min_observations=5)
        sub = dummy_subtrace()
        for _ in range(20):
            sampler.observe(sub, parsed_with({"rows": 1.0}))
        assert not sampler.observe(sub, parsed_with({"rows": 10_000.0}))


class TestEdgeCaseSampler:
    def _library_with_counts(self, common: int, rare: int) -> TopoPatternLibrary:
        parser = TraceParser(SpanParser())
        lib = parser.library
        common_sub = SubTrace(
            trace_id="1" * 32, node="n", spans=[make_span(trace_id="1" * 32)]
        )
        parsed = parser.parse_sub_trace(common_sub)
        self.common_id = parsed.topo_pattern_id
        for i in range(common - 1):
            sub = SubTrace(
                trace_id=f"{i + 2:032x}",
                node="n",
                spans=[make_span(trace_id=f"{i + 2:032x}")],
            )
            parser.parse_sub_trace(sub)
        rare_sub = SubTrace(
            trace_id="f" * 32,
            node="n",
            spans=[
                make_span(trace_id="f" * 32, name="rare-op", service="rare-svc")
            ],
        )
        parsed_rare = parser.parse_sub_trace(rare_sub)
        self.rare_id = parsed_rare.topo_pattern_id
        for _ in range(rare - 1):
            parser.parse_sub_trace(rare_sub)
        return lib

    def test_rare_pattern_boosted_over_common(self):
        lib = self._library_with_counts(common=200, rare=4)
        sampler = EdgeCaseSampler(lib, base_rate=0.02, seed=5)
        assert sampler.sampling_probability(self.rare_id) > (
            sampler.sampling_probability(self.common_id)
        )

    def test_first_occurrences_always_sampled(self):
        lib = self._library_with_counts(common=50, rare=1)
        sampler = EdgeCaseSampler(lib, base_rate=0.02)
        assert sampler.sampling_probability(self.rare_id) == 1.0

    def test_unknown_pattern_always_sampled(self):
        lib = TopoPatternLibrary()
        sampler = EdgeCaseSampler(lib)
        assert sampler.sampling_probability("nope") == 1.0

    def test_common_pattern_below_base_rate(self):
        lib = self._library_with_counts(common=500, rare=3)
        sampler = EdgeCaseSampler(lib, base_rate=0.02)
        assert sampler.sampling_probability(self.common_id) < 0.02


class TestConventionalSamplers:
    def test_head_sampler_deterministic_per_trace(self):
        sampler = HeadSampler(rate=0.5, seed=1)
        assert sampler.decide("a" * 32) == sampler.decide("a" * 32)

    def test_head_sampler_rate_roughly_respected(self):
        sampler = HeadSampler(rate=0.2, seed=1)
        hits = sum(sampler.decide(f"{i:032x}") for i in range(2000))
        assert 300 < hits < 500

    def test_tail_sampler_default_predicate(self):
        sampler = TailSampler()
        tagged = SubTrace(
            trace_id="t" * 32,
            node="n",
            spans=[make_span(attributes={"is_abnormal": "true"})],
        )
        plain = dummy_subtrace()
        assert sampler.observe(tagged, parsed_with({}))
        assert not sampler.observe(plain, parsed_with({}))
