"""Unit tests for the Bloom filter substrate."""

import pytest

from repro.bloom.bloom_filter import (
    BloomFilter,
    optimal_bit_count,
    optimal_hash_count,
    sized_for_bytes,
)


class TestSizing:
    def test_optimal_bit_count_monotone_in_n(self):
        assert optimal_bit_count(1000, 0.01) > optimal_bit_count(100, 0.01)

    def test_optimal_bit_count_monotone_in_fpp(self):
        assert optimal_bit_count(1000, 0.001) > optimal_bit_count(1000, 0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_bit_count(0, 0.01)
        with pytest.raises(ValueError):
            optimal_bit_count(100, 1.5)

    def test_hash_count_positive(self):
        assert optimal_hash_count(9586, 1000) >= 1

    def test_sized_for_bytes_fits_budget(self):
        for budget in (512, 1024, 4096):
            filt = sized_for_bytes(budget, 0.01)
            assert filt.size_bytes <= budget
            assert filt.expected_insertions > 0

    def test_paper_default_capacity(self):
        # 4 KB at fpp 0.01 holds ~3.4k trace ids (Section 4.1 geometry).
        filt = sized_for_bytes(4096, 0.01)
        assert 3000 < filt.expected_insertions < 3500


class TestMembership:
    def test_no_false_negatives(self):
        filt = BloomFilter(expected_insertions=500, false_positive_probability=0.01)
        items = [f"trace-{i:04d}" for i in range(500)]
        for item in items:
            filt.add(item)
        for item in items:
            assert item in filt

    def test_fpp_near_target_at_capacity(self):
        filt = BloomFilter(expected_insertions=1000, false_positive_probability=0.01)
        for i in range(1000):
            filt.add(f"member-{i}")
        false_positives = sum(
            1 for i in range(10000) if f"absent-{i}" in filt
        )
        # Allow generous slack: the bound is probabilistic.
        assert false_positives / 10000 < 0.03

    def test_empty_filter_contains_nothing(self):
        filt = BloomFilter(100, 0.01)
        assert "anything" not in filt
        assert len(filt) == 0

    def test_is_full_at_capacity(self):
        filt = BloomFilter(expected_insertions=10, false_positive_probability=0.01)
        for i in range(9):
            filt.add(str(i))
        assert not filt.is_full
        filt.add("last")
        assert filt.is_full


class TestSerialisation:
    def test_round_trip_preserves_membership(self):
        filt = BloomFilter(200, 0.01)
        for i in range(150):
            filt.add(f"id-{i}")
        clone = BloomFilter.from_bytes(filt.to_bytes(), 200, 0.01, inserted=150)
        for i in range(150):
            assert f"id-{i}" in clone
        assert len(clone) == 150

    def test_wrong_size_payload_rejected(self):
        filt = BloomFilter(200, 0.01)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(filt.to_bytes() + b"x", 200, 0.01)


class TestUnionAndStats:
    def test_union_contains_both_sides(self):
        a = BloomFilter(100, 0.01)
        b = BloomFilter(100, 0.01)
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged and "right" in merged
        assert len(merged) == 2

    def test_union_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(100, 0.01).union(BloomFilter(1000, 0.01))

    def test_saturation_grows(self):
        filt = BloomFilter(100, 0.01)
        before = filt.saturation
        for i in range(50):
            filt.add(str(i))
        assert filt.saturation > before

    def test_estimated_fpp_grows_with_load(self):
        filt = BloomFilter(100, 0.01)
        for i in range(50):
            filt.add(str(i))
        mid = filt.estimated_fpp()
        for i in range(50, 100):
            filt.add(str(i))
        assert filt.estimated_fpp() > mid
