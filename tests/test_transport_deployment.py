"""The deployment plane: Deployment descriptors, LocalTransport
metering, the shared BackendPlane contract, and framework wiring.

The binding contract (ISSUE 3): topology is routing + metering only.
``MintFramework(deployment=...)`` must produce identical query results
and byte tables for every descriptor, and all byte charging must flow
through the one transport seam.
"""

from __future__ import annotations

import pytest

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.reports import ParamsReport
from repro.backend.backend import MintBackend
from repro.backend.sharded import ShardedBackend
from repro.baselines import MintFramework
from repro.sim.meters import OverheadLedger
from repro.transport import (
    NOTIFY_MESSAGE_BYTES,
    BackendPlane,
    Deployment,
    LocalTransport,
    Transport,
)
from tests.conftest import make_chain_trace


class TestDeploymentDescriptor:
    def test_single_is_default_and_unsharded(self):
        assert Deployment() == Deployment.single()
        assert not Deployment.single().is_sharded
        assert Deployment.single().ledger_count == 0
        assert Deployment.single().describe() == "single-backend"

    def test_sharded_descriptor(self):
        deployment = Deployment.sharded(4)
        assert deployment.is_sharded
        assert deployment.num_shards == 4
        assert deployment.ledger_count == 4
        assert deployment.describe() == "4-shard"

    def test_sharded_one_is_distinct_from_single(self):
        # The pinned degenerate case: full routing machinery at N=1.
        assert Deployment.sharded(1) != Deployment.single()
        assert Deployment.sharded(1).is_sharded

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError):
            Deployment.sharded(0)
        with pytest.raises(ValueError):
            Deployment.sharded(-2)
        with pytest.raises(ValueError):
            Deployment(num_shards=-1)

    def test_descriptors_are_immutable_values(self):
        deployment = Deployment.sharded(2)
        with pytest.raises(AttributeError):
            deployment.num_shards = 8
        assert {Deployment.sharded(2), Deployment.sharded(2)} == {deployment}

    def test_builds_matching_backend_planes(self):
        from repro.agent.config import MintConfig

        config = MintConfig()
        single = Deployment.single().build_backend(config)
        sharded = Deployment.sharded(3).build_backend(config)
        assert isinstance(single, MintBackend)
        assert isinstance(sharded, ShardedBackend)
        assert sharded.num_shards == 3
        assert isinstance(single, BackendPlane)
        assert isinstance(sharded, BackendPlane)


class TestLocalTransport:
    def _report(self, node: str = "node-0") -> ParamsReport:
        return ParamsReport(node=node, trace_id="1" * 32, records=[])

    def test_deliver_meters_then_stores(self):
        backend = MintBackend()
        ledger = OverheadLedger()
        transport = LocalTransport(backend, ledger, clock=lambda: 120.0)
        report = self._report()
        transport.deliver(report)
        assert ledger.network.total_bytes == report.size_bytes()
        assert ledger.network.per_minute_series() == [(2, report.size_bytes())]
        assert "1" * 32 in backend.storage.params

    def test_satisfies_transport_protocol_and_call(self):
        backend = MintBackend()
        transport = LocalTransport(backend, OverheadLedger())
        assert isinstance(transport, Transport)
        # Bare-callable compatibility for ReportSender call sites.
        transport(self._report())
        assert "1" * 32 in backend.storage.params

    def test_claims_backend_notify_meter(self):
        backend = MintBackend()
        ledger = OverheadLedger()
        transport = LocalTransport(backend, ledger)
        assert backend.notify_meter == transport.notify
        backend.register_collector(
            MintCollector(MintAgent(node="node-1"), backend.receive)
        )
        backend.notify_sampled("2" * 32, origin_node="elsewhere")
        assert ledger.network.total_bytes == NOTIFY_MESSAGE_BYTES

    def test_does_not_clobber_an_explicit_notify_meter(self):
        charges: list[tuple[str, int]] = []
        backend = MintBackend(notify_meter=lambda node, b: charges.append((node, b)))
        ledger = OverheadLedger()
        LocalTransport(backend, ledger)
        backend.register_collector(
            MintCollector(MintAgent(node="node-1"), backend.receive)
        )
        backend.notify_sampled("2" * 32, origin_node="elsewhere")
        assert charges == [("node-1", NOTIFY_MESSAGE_BYTES)]
        assert ledger.network.total_bytes == 0

    def test_call_dispatches_through_deliver_overrides(self):
        delivered: list = []

        class Recording(LocalTransport):
            def deliver(self, report):
                delivered.append(report)
                super().deliver(report)

        transport = Recording(MintBackend(), OverheadLedger())
        transport(self._report())
        assert len(delivered) == 1

    def test_sharded_double_bookkeeping(self):
        backend = ShardedBackend(num_shards=2)
        ledger = OverheadLedger()
        shard_ledgers = [OverheadLedger(), OverheadLedger()]
        transport = LocalTransport(backend, ledger, shard_ledgers=shard_ledgers)
        report = self._report("node-0")
        transport.deliver(report)
        transport.notify("node-2", NOTIFY_MESSAGE_BYTES)
        owner = backend.shard_for("node-0")
        notified = backend.shard_for("node-2")
        assert shard_ledgers[owner].network.total_bytes >= report.size_bytes()
        assert (
            shard_ledgers[notified].network.total_bytes
            >= NOTIFY_MESSAGE_BYTES
        )
        # Every byte on a shard ledger is also on the deployment ledger.
        assert ledger.network.total_bytes == sum(
            sl.network.total_bytes for sl in shard_ledgers
        )

    def test_sync_storage_charges_monotonic_deltas(self):
        backend = MintBackend()
        ledger = OverheadLedger()
        transport = LocalTransport(backend, ledger)
        transport.deliver(
            ParamsReport(
                node="n",
                trace_id="3" * 32,
                records=[["span-1", None, "n", "pat", 0.0, []]],
            )
        )
        transport.sync_storage()
        first = ledger.storage.total_bytes
        assert first == backend.storage_bytes() > 0
        transport.sync_storage()  # no growth -> no extra charge
        assert ledger.storage.total_bytes == first


class TestBackendPlaneContract:
    def test_receive_raises_on_unknown_report_type(self):
        class BogusReport:
            node = "node-0"

        for backend in (MintBackend(), ShardedBackend(num_shards=2)):
            with pytest.raises(TypeError, match="unknown report type"):
                backend.receive(BogusReport())
            with pytest.raises(TypeError, match="unknown report type"):
                backend.receive("not a report")

    def test_both_backends_share_the_plane(self):
        assert issubclass(MintBackend, BackendPlane)
        assert issubclass(ShardedBackend, BackendPlane)
        # The subclass fork is gone: neither backend re-implements the
        # hoisted plane methods.
        for method in ("receive", "notify_sampled", "query", "storage_bytes"):
            assert method not in MintBackend.__dict__, method
            assert method not in ShardedBackend.__dict__, method

    def test_framework_has_no_sharded_subclass_overrides(self):
        import repro.baselines.mint_framework as mod

        assert not hasattr(mod, "ShardedMintFramework")
        for method in ("_transport", "_charge_notify", "_sync_storage_meter"):
            assert not hasattr(MintFramework, method), method


class TestCollectorTransportWiring:
    def test_collector_accepts_transport_objects_and_callables(self):
        backend = MintBackend()
        ledger = OverheadLedger()
        transport = LocalTransport(backend, ledger)
        via_transport = MintCollector(MintAgent(node="a"), transport)
        sink: list = []
        via_callable = MintCollector(MintAgent(node="b"), sink.append)
        trace = make_chain_trace(depth=2, trace_id="4" * 32, nodes=("a", "b"))
        for sub in trace.sub_traces():
            {"a": via_transport, "b": via_callable}[sub.node].process(sub, 0.0)
        via_transport.flush(100.0)
        via_callable.flush(100.0)
        assert ledger.network.total_bytes > 0  # metered path
        assert sink  # direct path delivered raw reports

    def test_collector_prefers_deliver_over_call(self):
        # An object with both a deliver method and __call__ must route
        # through deliver — the Transport protocol's metered entry.
        delivered, called = [], []

        class Both:
            def deliver(self, report):
                delivered.append(report)

            def __call__(self, report):
                called.append(report)

        collector = MintCollector(MintAgent(node="a"), Both())
        trace = make_chain_trace(depth=2, trace_id="6" * 32, nodes=("a",))
        for sub in trace.sub_traces():
            collector.process(sub, 0.0)
        collector.flush(100.0)
        assert delivered and not called

    def test_collector_accepts_backend_receive_directly(self):
        backend = MintBackend()
        collector = MintCollector(MintAgent(node="a"), backend.receive)
        trace = make_chain_trace(depth=2, trace_id="7" * 32, nodes=("a",))
        for sub in trace.sub_traces():
            collector.process(sub, 0.0)
        collector.flush(100.0)
        assert backend.storage.pattern_bytes > 0

    def test_collector_rejects_non_conforming_transports(self):
        # Neither a deliver method nor callable: fail at construction
        # with a message naming the offender, not at first upload.
        for bogus in (object(), 42, "backend"):
            with pytest.raises(TypeError, match="deliver method"):
                MintCollector(MintAgent(node="a"), bogus)

    def test_collector_rejects_non_callable_deliver_attribute(self):
        class BrokenTransport:
            deliver = "not-callable"

        with pytest.raises(TypeError, match="deliver method"):
            MintCollector(MintAgent(node="a"), BrokenTransport())


class TestFrameworkDeployments:
    def _drive(self, framework, num_traces: int = 40):
        for i in range(num_traces):
            framework.process_trace(
                make_chain_trace(depth=3, trace_id=f"{i:032x}"), float(i)
            )
        framework.finalize(float(num_traces))
        return framework

    def test_default_deployment_is_single(self):
        framework = MintFramework(auto_warmup_traces=5)
        assert framework.deployment == Deployment.single()
        assert framework.name == "Mint"
        assert framework.shard_ledgers == []
        assert framework.shard_meter_rows() == []
        assert framework.shard_summaries() == []

    def test_sharded_deployment_names_and_ledgers(self):
        framework = MintFramework(
            deployment=Deployment.sharded(4), auto_warmup_traces=5
        )
        assert framework.name == "Mint-Sharded(4)"
        assert len(framework.shard_ledgers) == 4
        assert isinstance(framework.backend, ShardedBackend)

    def test_topology_invariance_over_one_stream(self):
        reference = self._drive(MintFramework(auto_warmup_traces=10))
        for deployment in (Deployment.sharded(1), Deployment.sharded(3)):
            other = self._drive(
                MintFramework(deployment=deployment, auto_warmup_traces=10)
            )
            assert other.network_bytes == reference.network_bytes, deployment
            assert other.storage_bytes == reference.storage_bytes, deployment
            assert other.stored_trace_ids() == reference.stored_trace_ids()
            for i in range(40):
                trace_id = f"{i:032x}"
                assert (
                    other.query(trace_id).status
                    == reference.query(trace_id).status
                ), (deployment, trace_id)

    def test_all_network_bytes_flow_through_the_transport(self):
        framework = self._drive(
            MintFramework(deployment=Deployment.sharded(2), auto_warmup_traces=10)
        )
        # The deployment ledger and the per-shard ledgers are charged by
        # the same transport: their totals must reconcile exactly.
        rows = framework.shard_meter_rows()
        assert sum(r.network_bytes for r in rows) == framework.network_bytes
        physical = sum(s.storage_bytes() for s in framework.backend.shards)
        assert (
            physical
            == framework.storage_bytes
            + framework.backend.merged.replicated_pattern_bytes()
        )
