"""Unit tests for the compression stack (Table 4 machinery)."""

import pytest

from repro.compression import (
    CLPCompressor,
    LogReducerCompressor,
    LogZipCompressor,
    MintCompressor,
    corpus_raw_bytes,
    spans_as_lines,
)
from repro.compression.clp import classify_token
from repro.workloads import WorkloadDriver, build_dataset


@pytest.fixture(scope="module")
def corpus():
    driver = WorkloadDriver(build_dataset("A"), seed=5)
    return [trace for _, trace in driver.traces(60)]


class TestCorpus:
    def test_one_line_per_span(self, corpus):
        lines = spans_as_lines(corpus)
        assert len(lines) == sum(len(t.spans) for t in corpus)

    def test_raw_bytes_positive(self, corpus):
        assert corpus_raw_bytes(corpus) > 0


class TestLogCompressors:
    @pytest.mark.parametrize(
        "compressor_cls", [LogZipCompressor, LogReducerCompressor, CLPCompressor]
    )
    def test_achieves_compression(self, corpus, compressor_cls):
        result = compressor_cls().compress(corpus)
        assert result.ratio > 1.5
        assert result.compressed_bytes < result.raw_bytes

    def test_logzip_details(self, corpus):
        result = LogZipCompressor().compress(corpus)
        assert result.details["templates"] >= 1
        assert result.details["dictionary_bytes"] > 0

    def test_clp_token_classes(self):
        assert classify_token("12345") == "number"
        assert classify_token("-3.5") == "number"
        assert classify_token("4f2a1b9c") == "encoded"
        assert classify_token("pool-1-thread") == "dictvar"
        assert classify_token("SELECT") == "logtype"


class TestMintCompressor:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            MintCompressor(mode="bogus")

    def test_names(self):
        assert MintCompressor("full").name == "Mint"
        assert MintCompressor("no_span").name == "Mint w/o Sp"
        assert MintCompressor("no_trace").name == "Mint w/o Tp"

    def test_full_beats_ablations(self, corpus):
        full = MintCompressor("full").compress(corpus)
        no_span = MintCompressor("no_span").compress(corpus)
        no_trace = MintCompressor("no_trace").compress(corpus)
        assert full.ratio > no_span.ratio
        assert full.ratio > no_trace.ratio

    def test_full_beats_log_compressors(self, corpus):
        full = MintCompressor("full").compress(corpus)
        for baseline in (LogZipCompressor(), LogReducerCompressor(), CLPCompressor()):
            assert full.ratio > baseline.compress(corpus).ratio

    def test_lossless_round_trip(self, corpus):
        result = MintCompressor("full").compress(corpus)
        rebuilt = {t.trace_id: t for t in MintCompressor.decompress_full(result)}
        assert set(rebuilt) == {t.trace_id for t in corpus}
        for trace in corpus:
            original = {
                s.span_id: (s.parent_id, s.name, s.service, s.attributes,
                            round(s.duration, 6))
                for s in trace.spans
            }
            restored = {
                s.span_id: (s.parent_id, s.name, s.service, s.attributes,
                            round(s.duration, 6))
                for s in rebuilt[trace.trace_id].spans
            }
            assert original == restored

    def test_pattern_counts_small(self, corpus):
        result = MintCompressor("full").compress(corpus)
        span_count = sum(len(t.spans) for t in corpus)
        assert result.details["span_patterns"] < span_count / 5
        assert result.details["topo_patterns"] < len(corpus)
