"""Unit tests for per-attribute parsers."""

import pytest

from repro.parsing.attribute_parser import NumericAttributeParser, StringAttributeParser


def sql(i: int) -> str:
    return (
        f"SELECT id, name, price, stock, region FROM products "
        f"WHERE id = '{i}' ORDER BY updated_at DESC LIMIT 1"
    )


class TestStringAttributeParser:
    def test_warm_up_then_parse(self):
        parser = StringAttributeParser("sql")
        parser.warm_up([sql(i) for i in range(10)])
        parsed = parser.parse(sql(99))
        assert parsed.kind == "string"
        assert "<*>" in parsed.pattern
        assert any("99" in p for p in parsed.param)

    def test_parse_reconstructable(self):
        parser = StringAttributeParser("sql")
        parser.warm_up([sql(i) for i in range(5)])
        value = sql(12345)
        parsed = parser.parse(value)
        template = parser.template_for_pattern(parsed.pattern)
        assert template is not None
        assert template.reconstruct(parsed.param) == value

    def test_unseen_shape_becomes_new_template(self):
        parser = StringAttributeParser("sql")
        parser.warm_up([sql(i) for i in range(5)])
        before = len(parser.templates)
        parser.parse("totally different text with no shared structure")
        assert len(parser.templates) > before

    def test_online_widening_of_near_miss(self):
        parser = StringAttributeParser("k")
        parser.warm_up(["worker pool alpha thread executor region east zone 1"])
        # A near-miss should widen rather than add a fully-literal copy.
        parsed = parser.parse("worker pool alpha thread executor region east zone 2")
        assert "<*>" in parsed.pattern

    def test_repeated_values_hit_cache(self):
        parser = StringAttributeParser("k")
        first = parser.parse("constant value with several words inside")
        second = parser.parse("constant value with several words inside")
        assert first.pattern == second.pattern
        assert second.param == first.param


class TestNumericAttributeParser:
    def test_parse_splits_bucket_and_offset(self):
        parser = NumericAttributeParser("latency", alpha=0.5)
        parsed = parser.parse(30.0)
        assert parsed.kind == "numeric"
        assert parsed.pattern == "(27, 81]"
        assert parsed.param == pytest.approx(3.0)

    def test_reconstruct(self):
        parser = NumericAttributeParser("latency", alpha=0.5)
        for value in (0.2, 5.0, 29.5, 4096.0):
            parsed = parser.parse(value)
            assert parser.reconstruct(parsed.pattern, parsed.param) == pytest.approx(
                value
            )

    def test_negative_and_zero(self):
        parser = NumericAttributeParser("delta", alpha=0.5)
        for value in (-12.0, 0.0):
            parsed = parser.parse(value)
            assert parser.reconstruct(parsed.pattern, parsed.param) == pytest.approx(
                value
            )

    def test_bucket_for_pattern_rejects_garbage(self):
        parser = NumericAttributeParser("x")
        assert parser.bucket_for_pattern("not a bucket") is None
        with pytest.raises(ValueError):
            parser.reconstruct("not a bucket", 1.0)
