"""The unified query plane: specs, planner, cursors, one result model.

Pins the PR 5 contracts: the str-compatible :class:`QueryStatus` enum,
spec validation and grammar, bit-identity of planned lookups with the
reference querier on every topology, batch amortisation statistics
(Bloom pre-screen pushdown, repeated-id memoisation), predicate
queries, the lazy cursor, the engine protocol across Mint and the
baselines, and the ``MintFramework`` relocation shim.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.baselines import OTFull, OTHead
from repro.baselines.base import FrameworkQueryResult
from repro.framework import MintFramework
from repro.query import (
    QueryCursor,
    QueryEngine,
    QueryResult,
    QuerySpec,
    QueryStatus,
    matches_result,
)
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique
from repro.workloads.queries import QueryWorkload, TraceRecord, incident_window_spec

NUM_TRACES = 140


@pytest.fixture(scope="module")
def driven():
    """One faulted stream driven through single + sharded Mint + OT-Full."""
    stream, targets = generate_stream(
        build_onlineboutique(), NUM_TRACES, abnormal_rate=0.12, seed=7
    )
    frameworks = {}
    for key, deployment in (
        ("single", Deployment.single()),
        ("sharded", Deployment.sharded(2)),
    ):
        mint = MintFramework(deployment=deployment, auto_warmup_traces=40)
        last = 0.0
        for now, trace in stream:
            mint.process_trace(trace, now)
            last = now
        mint.finalize(last)
        frameworks[key] = mint
    full = OTFull()
    for now, trace in stream:
        full.process_trace(trace, now)
    frameworks["otfull"] = full
    return stream, targets, frameworks


class TestQueryStatus:
    def test_string_compatible_equality_and_hash(self):
        assert QueryStatus.EXACT == "exact"
        assert QueryStatus.PARTIAL == "partial"
        assert QueryStatus.MISS == "miss"
        # Hashes like the bare value, so stringly-keyed hit dicts fold.
        counts = {"exact": 0, "partial": 0, "miss": 0}
        counts[QueryStatus.EXACT] += 1
        assert counts == {"exact": 1, "partial": 0, "miss": 0}

    def test_renders_as_bare_value(self):
        # Identical across 3.10..3.12 (Enum's default repr/str changed).
        assert str(QueryStatus.EXACT) == "exact"
        assert f"{QueryStatus.PARTIAL}" == "partial"
        assert "{}".format(QueryStatus.MISS) == "miss"
        assert json.dumps({"s": QueryStatus.MISS, QueryStatus.EXACT: 1}) == (
            '{"s": "miss", "exact": 1}'
        )

    def test_is_hit(self):
        assert QueryStatus.EXACT.is_hit and QueryStatus.PARTIAL.is_hit
        assert not QueryStatus.MISS.is_hit


class TestQueryResultModel:
    def test_string_status_coerced(self):
        result = QueryResult(trace_id="t", status="exact")
        assert result.status is QueryStatus.EXACT
        assert result.is_exact and result.is_hit and not result.is_miss

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            QueryResult(trace_id="t", status="fuzzy")

    def test_framework_query_result_absorbed(self):
        # The baselines' parallel wrapper is the same class now.
        assert FrameworkQueryResult is QueryResult
        legacy = FrameworkQueryResult(trace_id="t", status="miss")
        assert legacy.is_miss and legacy.span_count == 0


class TestQuerySpec:
    def test_constructors(self):
        point = QuerySpec.point("abc", pull_params=True)
        assert point.trace_ids == ("abc",) and point.pull_params
        assert not point.has_predicates
        batch = QuerySpec.batch(["a", "b"], limit=1)
        assert batch.trace_ids == ("a", "b") and batch.limit == 1
        where = QuerySpec.where(candidates=["a"], service="svc", error_only=True)
        assert where.has_predicates

    def test_iterables_coerced_to_tuple(self):
        spec = QuerySpec(trace_ids=(tid for tid in ("a", "b")))
        assert spec.trace_ids == ("a", "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            QuerySpec.batch(["a"], limit=0)
        with pytest.raises(ValueError):
            QuerySpec.where(time_range=(5.0, 1.0))

    def test_bare_string_trace_ids_rejected(self):
        # A string would iterate into per-character "ids" and query as
        # that many misses — it must fail loudly on every entry point.
        for build in (
            lambda: QuerySpec(trace_ids="a1b2c3"),
            lambda: QuerySpec.batch("a1b2c3"),
            lambda: QuerySpec.where(candidates="a1b2c3"),
        ):
            with pytest.raises(TypeError):
                build()

    def test_frozen(self):
        spec = QuerySpec.point("a")
        with pytest.raises(AttributeError):
            spec.service = "x"

    def test_describe_mentions_predicates(self):
        text = QuerySpec.where(
            candidates=["a"], service="svc", error_only=True, limit=3
        ).describe()
        assert "service=svc" in text and "error_only" in text and "limit=3" in text


class TestBitIdentity:
    """New-API lookups == reference querier, per deployment topology."""

    @pytest.mark.parametrize("key", ["single", "sharded"])
    def test_point_lookups_match_reference(self, driven, key):
        stream, _, frameworks = driven
        mint = frameworks[key]
        reference = mint.backend.querier
        for _, trace in stream:
            new = mint.query(trace.trace_id)
            ref = reference.query(trace.trace_id)
            assert new.status is ref.status
            assert new.trace == ref.trace
            assert new.approximate == ref.approximate

    @pytest.mark.parametrize("key", ["single", "sharded"])
    def test_batch_equals_looped(self, driven, key):
        stream, _, frameworks = driven
        mint = frameworks[key]
        ids = [t.trace_id for _, t in stream]
        batch = mint.query_many(ids).all()
        assert [r.trace_id for r in batch] == ids
        for one, many in zip((mint.query(tid) for tid in ids), batch):
            assert one.status is many.status
            assert one.trace == many.trace
            assert one.approximate == many.approximate

    def test_sharded_prescreen_prunes(self, driven):
        stream, _, frameworks = driven
        cursor = frameworks["sharded"].query_many(t.trace_id for _, t in stream)
        cursor.all()
        assert cursor.stats.filters_pruned > 0
        assert cursor.stats.filters_probed > 0

    def test_repeated_ids_served_from_plan_memo(self, driven):
        stream, _, frameworks = driven
        tid = stream[0][1].trace_id
        cursor = frameworks["single"].query_many([tid, tid, tid])
        results = cursor.all()
        assert len(results) == 3
        assert cursor.stats.cache_hits == 2
        assert results[0] == results[1] == results[2]


class TestCursor:
    def test_lazy_evaluation(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        cursor = mint.query_many(t.trace_id for _, t in stream)
        assert isinstance(cursor, QueryCursor)
        next(cursor)
        # Only the consumed prefix has been planned/reconstructed.
        assert cursor.stats.candidates == 1

    def test_limit_stops_early(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        ids = [t.trace_id for _, t in stream]
        cursor = mint.execute(QuerySpec.batch(ids, limit=5))
        assert len(cursor.all()) == 5
        assert cursor.stats.candidates == 5

    def test_statuses_folds(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        counts = mint.query_many(t.trace_id for _, t in stream).statuses()
        assert sum(counts.values()) == len(stream)
        assert counts[QueryStatus.MISS] == 0  # Mint never misses

    def test_one_raises_on_empty(self, driven):
        _, _, frameworks = driven
        cursor = frameworks["single"].execute(
            QuerySpec.where(candidates=["f" * 32], error_only=True)
        )
        with pytest.raises(LookupError):
            cursor.one()

    def test_point_always_answers(self, driven):
        _, _, frameworks = driven
        result = frameworks["single"].query("f" * 32)
        assert result.status is QueryStatus.MISS


class TestPredicates:
    @pytest.mark.parametrize("key", ["single", "sharded"])
    def test_service_predicate(self, driven, key):
        stream, _, frameworks = driven
        mint = frameworks[key]
        service = sorted(stream[0][1].services)[0]
        ids = [t.trace_id for _, t in stream]
        results = mint.execute(
            QuerySpec.where(candidates=ids, service=service)
        ).all()
        assert results
        for result in results:
            assert result.is_hit
            services = (
                result.trace.services
                if result.trace is not None
                else result.approximate.services
            )
            assert service in services

    def test_error_only_matches_faulted_traces(self, driven):
        stream, targets, frameworks = driven
        mint = frameworks["single"]
        ids = [t.trace_id for _, t in stream]
        results = mint.execute(QuerySpec.where(candidates=ids, error_only=True)).all()
        # Error-status faults exist in the stream and every match is a hit.
        error_ids = {
            t.trace_id for _, t in stream if t.has_error
        }
        if error_ids:
            assert results
            exact_matches = {r.trace_id for r in results if r.trace is not None}
            assert exact_matches <= error_ids

    def test_operation_predicate(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        operation = stream[0][1].spans[0].name
        ids = [t.trace_id for _, t in stream]
        results = mint.execute(
            QuerySpec.where(candidates=ids, operation=operation, limit=7)
        ).all()
        assert 0 < len(results) <= 7

    def test_time_window_excludes_exact_outside(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        midpoint = stream[len(stream) // 2][0]
        ids = [t.trace_id for _, t in stream]
        results = mint.execute(
            QuerySpec.where(candidates=ids, time_range=(0.0, midpoint))
        ).all()
        for result in results:
            if result.trace is not None:
                first = min(s.start_time for s in result.trace.spans)
                assert first < midpoint

    def test_topo_pattern_predicate(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        partial = next(
            r
            for r in frameworks["single"].query_many(
                t.trace_id for _, t in stream
            )
            if r.approximate is not None
        )
        pattern_id = partial.approximate.segments[0].topo_pattern_id
        ids = [t.trace_id for _, t in stream]
        results = mint.execute(
            QuerySpec.where(candidates=ids, topo_pattern_id=pattern_id)
        ).all()
        assert any(r.trace_id == partial.trace_id for r in results)

    def test_predicates_without_candidates_scan_stored_population(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        service = sorted(stream[0][1].services)[0]
        results = mint.execute(QuerySpec.where(service=service)).all()
        stored = mint.stored_trace_ids()
        assert {r.trace_id for r in results} <= stored

    def test_matches_result_rejects_misses(self):
        miss = QueryResult(trace_id="x", status=QueryStatus.MISS)
        assert not matches_result(QuerySpec.where(error_only=True), miss)


class TestEngineProtocol:
    def test_every_framework_is_an_engine(self, driven):
        _, _, frameworks = driven
        for framework in frameworks.values():
            assert isinstance(framework, QueryEngine)

    def test_baseline_query_carries_stored_trace(self, driven):
        stream, _, frameworks = driven
        full = frameworks["otfull"]
        trace = stream[0][1]
        result = full.query(trace.trace_id)
        assert result.status is QueryStatus.EXACT
        assert result.trace is trace

    def test_baseline_batch_keeps_misses(self, driven):
        stream, _, frameworks = driven
        head = OTHead(rate=0.0)
        for now, trace in stream[:10]:
            head.process_trace(trace, now)
        results = head.query_many([t.trace_id for _, t in stream[:10]]).all()
        assert len(results) == 10
        assert all(r.is_miss for r in results)

    def test_empty_batch_yields_nothing_everywhere(self, driven):
        # A bare batch answers exactly the ids it was given: an empty
        # id list must not fall back to sweeping the stored population
        # (predicate specs without candidates do that, batches never).
        _, _, frameworks = driven
        for framework in frameworks.values():
            assert framework.query_many([]).all() == []

    def test_baseline_predicate_query(self, driven):
        stream, _, frameworks = driven
        full = frameworks["otfull"]
        error_ids = {t.trace_id for _, t in stream if t.has_error}
        results = full.execute(
            QuerySpec.where(
                candidates=[t.trace_id for _, t in stream], error_only=True
            )
        ).all()
        assert {r.trace_id for r in results} == error_ids


class TestWorkloadSpecs:
    def _records(self, stream):
        return [
            TraceRecord(trace_id=t.trace_id, timestamp=now, is_abnormal=False)
            for now, t in stream
        ]

    def test_incident_window_spec_prefilters_candidates(self, driven):
        stream, _, _ = driven
        records = self._records(stream)
        lo, hi = stream[20][0], stream[80][0]
        spec = incident_window_spec(records, lo, hi, error_only=True)
        assert spec.time_range == (lo, hi)
        assert spec.error_only
        in_window = {r.trace_id for r in records if lo <= r.timestamp < hi}
        assert set(spec.trace_ids) == in_window

    def test_sample_spec_draws_like_sample_queries(self, driven):
        stream, _, _ = driven
        records = self._records(stream)
        ids = QueryWorkload(seed=3).sample_queries(records, 25)
        spec = QueryWorkload(seed=3).sample_spec(records, 25)
        assert spec.trace_ids == tuple(ids)

    def test_incident_spec_end_to_end(self, driven):
        stream, _, frameworks = driven
        records = self._records(stream)
        lo, hi = stream[10][0], stream[-10][0]
        spec = incident_window_spec(records, lo, hi)
        results = frameworks["sharded"].execute(spec).all()
        assert results
        assert {r.trace_id for r in results} <= set(spec.trace_ids)


class TestFrameworkRelocation:
    def test_old_import_path_warns_and_resolves(self):
        import importlib
        import sys

        sys.modules.pop("repro.baselines.mint_framework", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.baselines.mint_framework")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert module.MintFramework is MintFramework

    def test_lazy_baselines_reexport(self):
        import repro.baselines as baselines

        assert baselines.MintFramework is MintFramework
        with pytest.raises(AttributeError):
            baselines.NoSuchFramework

    def test_query_full_is_query(self, driven):
        stream, _, frameworks = driven
        mint = frameworks["single"]
        tid = stream[0][1].trace_id
        full = mint.query_full(tid)
        plain = mint.query(tid)
        assert full.status is plain.status
        assert full.trace == plain.trace
