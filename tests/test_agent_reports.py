"""Unit tests for report messages and their wire-size accounting."""

from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport
from repro.model.encoding import encoded_size


class TestPatternLibraryReport:
    def test_empty_detection(self):
        assert PatternLibraryReport(node="n").is_empty
        assert not PatternLibraryReport(
            node="n", span_patterns=[{"pattern_id": "x"}]
        ).is_empty

    def test_size_includes_patterns(self):
        small = PatternLibraryReport(node="n")
        big = PatternLibraryReport(
            node="n",
            span_patterns=[{"pattern_id": "x", "attributes": [["k", "s", "v" * 100]]}],
        )
        assert big.size_bytes() > small.size_bytes() + 100

    def test_size_matches_canonical_encoding(self):
        report = PatternLibraryReport(node="n", topo_patterns=[{"pattern_id": "t"}])
        expected = encoded_size(
            {
                "node": "n",
                "span_patterns": [],
                "topo_patterns": [{"pattern_id": "t"}],
            }
        )
        assert report.size_bytes() == expected


class TestBloomReport:
    def test_size_is_payload_plus_header(self):
        payload = b"\x01" * 512
        report = BloomReport(
            node="n", topo_pattern_id="p" * 16, payload=payload, inserted=7
        )
        assert report.size_bytes() > 512
        assert report.size_bytes() < 512 + 200

    def test_bigger_payload_bigger_report(self):
        a = BloomReport(node="n", topo_pattern_id="p", payload=b"x" * 64, inserted=1)
        b = BloomReport(node="n", topo_pattern_id="p", payload=b"x" * 4096, inserted=1)
        assert b.size_bytes() - a.size_bytes() == 4096 - 64


class TestParamsReport:
    def test_size_grows_with_records(self):
        empty = ParamsReport(node="n", trace_id="t" * 32)
        loaded = ParamsReport(
            node="n",
            trace_id="t" * 32,
            records=[["s" * 16, None, "n", "p" * 16, 0.0, ["v" * 40]]],
        )
        assert loaded.size_bytes() > empty.size_bytes() + 40

    def test_compact_records_cheaper_than_dicts(self):
        compact = ParamsReport(
            node="n",
            trace_id="t" * 32,
            records=[["s" * 16, None, "n", "p" * 16, 0.0, ["v"]]],
        )
        verbose_equivalent = encoded_size(
            {
                "node": "n",
                "trace_id": "t" * 32,
                "records": [
                    {
                        "span_id": "s" * 16,
                        "parent_id": None,
                        "node": "n",
                        "pattern_id": "p" * 16,
                        "start_time": 0.0,
                        "params": {"key": ["v"]},
                    }
                ],
            }
        )
        assert compact.size_bytes() < verbose_equivalent
