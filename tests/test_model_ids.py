"""Unit tests for trace/span id generation."""

from repro.model.ids import (
    IdGenerator,
    is_valid_span_id,
    is_valid_trace_id,
    new_span_id,
    new_trace_id,
)


class TestIdGenerator:
    def test_trace_id_width(self):
        assert len(IdGenerator(1).trace_id()) == 32

    def test_span_id_width(self):
        assert len(IdGenerator(1).span_id()) == 16

    def test_trace_ids_unique_within_generator(self):
        gen = IdGenerator(seed=3)
        ids = {gen.trace_id() for _ in range(2000)}
        assert len(ids) == 2000

    def test_same_seed_same_sequence(self):
        a = IdGenerator(seed=7)
        b = IdGenerator(seed=7)
        assert [a.trace_id() for _ in range(5)] == [b.trace_id() for _ in range(5)]
        assert [a.span_id() for _ in range(5)] == [b.span_id() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert IdGenerator(1).trace_id() != IdGenerator(2).trace_id()

    def test_ids_are_lowercase_hex(self):
        gen = IdGenerator(seed=11)
        for _ in range(50):
            assert is_valid_trace_id(gen.trace_id())
            assert is_valid_span_id(gen.span_id())


class TestModuleLevelHelpers:
    def test_new_trace_id_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_new_span_id_shape(self):
        assert is_valid_span_id(new_span_id())


class TestValidation:
    def test_rejects_wrong_length(self):
        assert not is_valid_trace_id("ab")
        assert not is_valid_span_id("ab")

    def test_rejects_non_hex(self):
        assert not is_valid_trace_id("g" * 32)
        assert not is_valid_span_id("z" * 16)

    def test_rejects_uppercase(self):
        assert not is_valid_trace_id("A" * 32)
        assert not is_valid_span_id("F" * 16)

    def test_accepts_canonical(self):
        assert is_valid_trace_id("0" * 32)
        assert is_valid_span_id("f" * 16)
