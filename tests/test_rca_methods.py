"""Unit tests for the RCA methods and their views."""

import pytest

from repro.rca import MicroRank, TraceAnomaly, TraceRCA, view_from_approximate, views_from_traces
from repro.rca.spectrum import SpectrumCounts, anomalous_spans, duration_baselines, ochiai
from repro.rca.views import SpanView, TraceView, view_from_trace
from repro.workloads import (
    FaultInjector,
    FaultSpec,
    FaultType,
    WorkloadDriver,
    build_onlineboutique,
)


@pytest.fixture(scope="module")
def faulted_corpus():
    """OnlineBoutique traces with CPU exhaustion on paymentservice."""
    workload = build_onlineboutique()
    driver = WorkloadDriver(workload, seed=9)
    injector = FaultInjector(seed=10)
    target = "paymentservice"
    traces = []
    for i, (_, trace) in enumerate(driver.traces(500)):
        if i % 12 == 5 and target in trace.services:
            trace = injector.inject(
                trace, FaultSpec(FaultType.CPU_EXHAUSTION, target)
            )
        traces.append(trace)
    return target, views_from_traces(traces)


class TestViews:
    def test_self_time_subtracts_children(self):
        from tests.conftest import make_chain_trace

        trace = make_chain_trace(depth=3)
        view = view_from_trace(trace)
        spans = {s.operation: s for s in view.spans}
        # Chain durations: 30 (root), 20, 10 — self times all 10.
        assert spans["op-0"].self_duration == pytest.approx(10.0)
        assert spans["op-2"].self_duration == pytest.approx(10.0)

    def test_abnormal_flag_from_tag_or_error(self):
        from tests.conftest import make_span
        from repro.model.span import SpanStatus
        from repro.model.trace import Trace

        tagged = Trace(
            trace_id="1" * 32,
            spans=[make_span(trace_id="1" * 32, attributes={"is_abnormal": "true"})],
        )
        erroring = Trace(
            trace_id="2" * 32,
            spans=[make_span(trace_id="2" * 32, status=SpanStatus.ERROR)],
        )
        assert view_from_trace(tagged).is_abnormal
        assert view_from_trace(erroring).is_abnormal


class TestSpectrum:
    def test_ochiai_extremes(self):
        assert ochiai(SpectrumCounts(ef=10, ep=0, nf=0, np=10)) == 1.0
        assert ochiai(SpectrumCounts(ef=0, ep=10, nf=10, np=0)) == 0.0

    def test_baselines_exclude_abnormal(self):
        normal = TraceView(
            trace_id="n",
            spans=[SpanView("svc", "op", 10.0, 10.0, False)],
            is_abnormal=False,
        )
        poisoned = TraceView(
            trace_id="a",
            spans=[SpanView("svc", "op", 9999.0, 9999.0, False)],
            is_abnormal=True,
        )
        baselines = duration_baselines([normal, poisoned])
        mean, _ = baselines[("exact", "svc", "op")]
        assert mean == pytest.approx(10.0)

    def test_anomalous_spans_flags_errors_and_outliers(self):
        baselines = {("exact", "svc", "op"): (10.0, 1.0)}
        errored = TraceView(
            trace_id="e",
            spans=[SpanView("svc", "op", 10.0, 10.0, True)],
        )
        slow = TraceView(
            trace_id="s",
            spans=[SpanView("svc", "op", 100.0, 100.0, False)],
        )
        fine = TraceView(
            trace_id="f",
            spans=[SpanView("svc", "op", 10.5, 10.5, False)],
        )
        assert anomalous_spans(errored, baselines)
        assert anomalous_spans(slow, baselines)
        assert not anomalous_spans(fine, baselines)

    def test_client_spans_skipped(self):
        baselines = {("exact", "svc", "op"): (1.0, 0.1)}
        client_only = TraceView(
            trace_id="c",
            spans=[SpanView("svc", "op", 999.0, 999.0, False, kind="client")],
        )
        assert not anomalous_spans(client_only, baselines)


class TestMethods:
    @pytest.mark.parametrize("method_cls", [MicroRank, TraceRCA, TraceAnomaly])
    def test_localises_injected_fault(self, faulted_corpus, method_cls):
        target, views = faulted_corpus
        top1 = method_cls().top1(views)
        assert top1 == target

    @pytest.mark.parametrize("method_cls", [MicroRank, TraceRCA, TraceAnomaly])
    def test_empty_input(self, method_cls):
        assert method_cls().rank([]) == []
        assert method_cls().top1([]) is None

    def test_degrades_without_normal_traces(self, faulted_corpus):
        """The paper's Table 3 argument: keeping only abnormal traces
        starves the contrast population and hurts accuracy."""
        target, views = faulted_corpus
        only_abnormal = [v for v in views if v.is_abnormal]
        full_hits = sum(
            1
            for cls in (MicroRank, TraceRCA, TraceAnomaly)
            if cls().top1(views) == target
        )
        starved_hits = sum(
            1
            for cls in (MicroRank, TraceRCA, TraceAnomaly)
            if cls().top1(only_abnormal) == target
        )
        assert full_hits >= starved_hits

    def test_rankings_sorted_descending(self, faulted_corpus):
        _, views = faulted_corpus
        for cls in (MicroRank, TraceRCA, TraceAnomaly):
            ranked = cls().rank(views)
            scores = [score for _, score in ranked]
            assert scores == sorted(scores, reverse=True)


class TestApproximateViews:
    def test_views_from_mint_approximate_traces(self):
        from repro.agent.config import MintConfig
        from repro.framework import MintFramework

        workload = build_onlineboutique()
        driver = WorkloadDriver(workload, seed=4)
        mint = MintFramework(
            config=MintConfig(edge_case_base_rate=0.0), auto_warmup_traces=5
        )
        traces = [t for _, t in driver.traces(40)]
        for i, trace in enumerate(traces):
            mint.process_trace(trace, float(i))
        mint.finalize(100.0)
        approx_views = []
        for trace in traces:
            result = mint.query_full(trace.trace_id)
            if result.status == "partial":
                approx_views.append(view_from_approximate(result.approximate))
        assert approx_views, "expected some unsampled traces"
        view = approx_views[0]
        assert view.spans
        assert all(s.duration >= 0 for s in view.spans)
