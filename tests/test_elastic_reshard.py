"""Live resharding: elastic descriptors, host eviction, bit-identity.

The binding contract: a live ``from_n -> to_n`` migration — cutover
first, snapshot second, state streamed on the separate ``migration``
meter — ends bit-identical to a fresh deployment born at the
destination shard count, and the fresh deployment never touches the
migration meter.
"""

from __future__ import annotations

import pytest

from repro.agent.reports import BloomReport, ParamsReport
from repro.backend.backend import MintBackend
from repro.backend.sharded import shard_for_key
from repro.backend.storage import StorageEngine
from repro.elastic import ReshardCoordinator, placement_violations
from repro.elastic.chaos import SHARD_CHAOS_PROFILES
from repro.framework import MintFramework
from repro.sim.elastic import run_reshard_experiment
from repro.sim.experiment import generate_stream
from repro.sim.meters import OverheadLedger
from repro.transport import Deployment, LocalTransport
from repro.workloads import build_onlineboutique


class TestElasticDeploymentValidation:
    def test_sharded_rejects_non_positive_counts(self):
        with pytest.raises(ValueError, match="at least one shard"):
            Deployment.sharded(0)
        with pytest.raises(ValueError, match="at least one shard"):
            Deployment.sharded(-2)

    def test_resharded_rejects_bad_source(self):
        with pytest.raises(ValueError, match="at least one source shard"):
            Deployment.resharded(0, 4)
        with pytest.raises(ValueError, match="at least one source shard"):
            Deployment.resharded(-1, 4)

    def test_resharded_rejects_bad_destination(self):
        with pytest.raises(ValueError, match="at least one destination shard"):
            Deployment.resharded(2, 0)
        with pytest.raises(ValueError, match="at least one destination shard"):
            Deployment.resharded(2, -3)

    def test_resharded_rejects_the_no_op_transition(self):
        with pytest.raises(ValueError, match="must change the shard count"):
            Deployment.resharded(2, 2)

    def test_elastic_needs_at_least_one_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            Deployment.elastic_sharded(0)

    def test_chaos_and_reshard_targets_need_elastic(self):
        with pytest.raises(ValueError, match="elastic deployment"):
            Deployment(num_shards=2, shard_chaos=SHARD_CHAOS_PROFILES["crash"])
        with pytest.raises(ValueError, match="elastic deployment"):
            Deployment(num_shards=2, reshard_to=4)

    def test_describe_names_the_transition_and_chaos(self):
        assert "2->4-shard" in Deployment.resharded(2, 4).describe()
        described = Deployment.elastic_sharded(
            2, shard_chaos=SHARD_CHAOS_PROFILES["crash_restart"]
        ).describe()
        assert "shardchaos=crash_restart" in described

    def test_ledger_count_covers_the_destination(self):
        assert Deployment.resharded(2, 4).ledger_count == 4
        assert Deployment.resharded(4, 2).ledger_count == 4
        assert Deployment.sharded(3).ledger_count == 3


class TestEvictHost:
    def _engine_with_two_hosts(self) -> StorageEngine:
        engine = StorageEngine()
        for host in ("node-a", "node-b"):
            engine.store_bloom_report(
                BloomReport(
                    node=host,
                    topo_pattern_id="t" * 16,
                    payload=b"\x01" * 4096,
                    inserted=3,
                )
            )
            engine.store_params_report(
                ParamsReport(
                    node=host,
                    trace_id="a" * 32,
                    records=[[0, 0, host, "GET", 12]],
                )
            )
        return engine

    def test_eviction_conserves_bytes_across_engines(self):
        source = self._engine_with_two_hosts()
        target = StorageEngine()
        before = source.storage_bytes() + target.storage_bytes()
        blooms, params = source.evict_host("node-a")
        for stored in blooms:
            target.store_bloom_report(
                BloomReport(
                    node="node-a",
                    topo_pattern_id=stored.topo_pattern_id,
                    payload=stored.filter.to_bytes(),
                    inserted=stored.filter.inserted,
                )
            )
        for trace_id, records in params.items():
            target.store_params_report(
                ParamsReport(node="node-a", trace_id=trace_id, records=records)
            )
        assert source.storage_bytes() + target.storage_bytes() == before
        assert all(b.node != "node-a" for b in source.blooms)
        assert any(b.node == "node-a" for b in target.blooms)

    def test_multi_host_buckets_keep_the_other_hosts_records(self):
        source = self._engine_with_two_hosts()
        source.evict_host("node-a")
        # node-b shares the trace bucket; its record and the sampled id
        # must survive node-a's departure.
        assert "a" * 32 in source.params
        assert "a" * 32 in source.sampled_trace_ids
        assert all(record[2] == "node-b" for record in source.params["a" * 32])

    def test_emptied_bucket_releases_the_sampled_id(self):
        engine = StorageEngine()
        engine.store_params_report(
            ParamsReport(
                node="node-a", trace_id="b" * 32, records=[[0, 0, "node-a", "GET", 1]]
            )
        )
        engine.evict_host("node-a")
        assert "b" * 32 not in engine.params
        assert "b" * 32 not in engine.sampled_trace_ids
        assert engine.params_bytes == 0

    def test_evicting_an_unknown_host_is_a_no_op(self):
        engine = self._engine_with_two_hosts()
        before = engine.storage_bytes()
        blooms, params = engine.evict_host("node-z")
        assert (blooms, params) == ([], {})
        assert engine.storage_bytes() == before


class TestReshardCoordinator:
    def _elastic(self, from_shards=2, to_shards=4):
        framework = MintFramework(
            deployment=Deployment.resharded(from_shards, to_shards),
            auto_warmup_traces=5,
        )
        return framework

    def test_requires_an_elastic_backend(self):
        backend = MintBackend()
        transport = LocalTransport(backend, ledger=OverheadLedger())
        with pytest.raises(TypeError, match="elastic deployment"):
            ReshardCoordinator(backend, transport, 4)

    def test_rejects_non_positive_destinations(self):
        framework = self._elastic()
        with pytest.raises(ValueError, match="destination shard"):
            ReshardCoordinator(framework.backend, framework.transport, 0)

    def test_plan_is_the_minimal_movement_set(self):
        framework = self._elastic(2, 4)
        workload = build_onlineboutique()
        stream, _ = generate_stream(workload, 30, 0.02, 6000.0, seed=3)
        for now, trace in stream:
            framework.process_trace(trace, now)
        coordinator = ReshardCoordinator(framework.backend, framework.transport, 4)
        plan = coordinator.plan()
        hosts = [c.node for c in framework.backend._collectors]
        expected = {
            host
            for host in hosts
            if shard_for_key(host, 2) != shard_for_key(host, 4)
        }
        assert {move.host for move in plan} == expected
        for move in plan:
            assert move.source == shard_for_key(move.host, 2)
            assert move.target == shard_for_key(move.host, 4)
            assert move.source != move.target

    def test_framework_reshard_defaults_to_the_declared_target(self):
        framework = self._elastic(2, 4)
        workload = build_onlineboutique()
        stream, _ = generate_stream(workload, 30, 0.02, 6000.0, seed=3)
        for now, trace in stream:
            framework.process_trace(trace, now)
        stats = framework.reshard()
        assert framework.backend.num_shards == 4
        assert stats.hosts_moved > 0
        assert framework.migration_bytes > 0
        assert placement_violations(framework.backend) == []

    def test_migration_streams_flushed_blooms_bit_for_bit(self):
        # Short streams rarely flush a Bloom buffer before the reshard
        # triggers, so plant a flushed filter on a moving host and make
        # sure the snapshot carries it: same bits, same insertion count
        # (a reset count would un-fill the filter on the destination).
        framework = self._elastic(2, 4)
        stream, _ = generate_stream(build_onlineboutique(), 40, 0.02, 6000.0, seed=3)
        for now, trace in stream:
            framework.process_trace(trace, now)
        coordinator = ReshardCoordinator(framework.backend, framework.transport, 4)
        move = coordinator.plan()[0]
        framework.backend.receive(
            BloomReport(
                node=move.host,
                topo_pattern_id="t" * 16,
                payload=b"\x01" * 4096,
                inserted=7,
            )
        )
        coordinator.run()
        target = framework.backend.shards[move.target]
        landed = [
            b
            for b in target.blooms
            if b.node == move.host and b.topo_pattern_id == "t" * 16
        ]
        assert len(landed) == 1
        assert landed[0].filter.to_bytes() == b"\x01" * 4096
        assert landed[0].filter.inserted == 7
        source = framework.backend.shards[move.source]
        assert not any(b.node == move.host for b in source.blooms)
        assert coordinator.stats.bloom_reports >= 1
        assert placement_violations(framework.backend) == []

    def test_reshard_without_a_target_is_an_error(self):
        framework = MintFramework(
            deployment=Deployment.elastic_sharded(2), auto_warmup_traces=5
        )
        with pytest.raises(ValueError, match="target"):
            framework.reshard()


class TestReshardBitIdentity:
    def test_grow_is_bit_identical_to_the_fresh_deployment(self):
        result = run_reshard_experiment(
            build_onlineboutique(),
            from_shards=2,
            to_shards=4,
            num_traces=120,
            auto_warmup_traces=40,
        )
        assert result.identical, result.violations
        assert result.migration["hosts_moved"] > 0
        assert result.migration_bytes > 0

    def test_shrink_is_bit_identical_to_the_fresh_deployment(self):
        result = run_reshard_experiment(
            build_onlineboutique(),
            from_shards=4,
            to_shards=2,
            num_traces=120,
            auto_warmup_traces=40,
        )
        assert result.identical, result.violations
