"""Seal boundaries: queries, retroactive pulls, eviction, resharding.

The cold tier's user-facing contract is transparency: sealing segments
into compressed blocks must be invisible to every read path and every
byte ruler except the physical side of the storage split.  This module
pins that end to end — point/batch/predicate queries straddling sealed
and unsealed segments answer bit-identically to a never-sealed twin,
retroactive writes against a sealed record unseal-or-fail loudly
(never stale bytes), and ``evict_host``/reshard conserve the logical
byte counters exactly on stores holding sealed segments.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.agent.reports import BloomReport, ParamsReport
from repro.backend.backend import MintBackend
from repro.backend.storage import StorageEngine
from repro.cold import ColdPolicy, ColdReadError, compact_engine
from repro.framework import MintFramework
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique
from repro.workloads.queries import TraceRecord, incident_window_spec

from tests.test_backend_retroactive_pull import subtrace, wire

NUM_TRACES = 140
WARMUP = 40


@pytest.fixture(scope="module")
def stream():
    stream, targets = generate_stream(
        build_onlineboutique(), NUM_TRACES, abnormal_rate=0.12, seed=7
    )
    return stream, targets


def drive(framework, stream, compact_at=None):
    """Ingest the stream, optionally compacting mid-run and at the end.

    Mid-run compaction is the interesting shape: the second half of the
    stream lands on a store already holding sealed segments, exercising
    writes after seals; the closing pass seals the tail so queries see
    sealed segments from both halves.
    """
    last_now = 0.0
    for index, (now, trace) in enumerate(stream):
        if compact_at is not None and index == compact_at:
            framework.compact(ColdPolicy())
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    if compact_at is not None:
        framework.compact(ColdPolicy(keep_hot_traces=5, keep_hot_blooms=8))
    return framework


def signature(result):
    return (result.trace_id, result.status, result.trace, result.approximate)


@pytest.fixture(scope="module", params=["single", "sharded-2"])
def twin_pair(request, stream):
    """A never-sealed reference and its sealed-mid-stream twin."""
    deployment = {
        "single": Deployment.single,
        "sharded-2": lambda: Deployment.sharded(2),
    }[request.param]
    traces, _ = stream
    reference = drive(
        MintFramework(deployment=deployment(), auto_warmup_traces=WARMUP), traces
    )
    sealed = drive(
        MintFramework(deployment=deployment(), auto_warmup_traces=WARMUP),
        traces,
        compact_at=NUM_TRACES // 2,
    )
    return reference, sealed


class TestStraddlingQueries:
    def test_store_actually_straddles(self, twin_pair):
        _, sealed = twin_pair
        stats = sealed.cold_stats()
        assert stats["sealed_params_traces"] > 0
        assert stats["sealed_bloom_filters"] > 0
        # keep_hot_* left a hot tail, so queries cross the boundary.
        engines = sealed.backend.storage_engines()
        assert any(
            len(engine.params) > engine.params.sealed_count() for engine in engines
        )

    def test_point_lookups_bit_identical(self, twin_pair, stream):
        reference, sealed = twin_pair
        traces, _ = stream
        for _, trace in traces:
            assert signature(sealed.query(trace.trace_id)) == signature(
                reference.query(trace.trace_id)
            )
        # Misses stay misses.
        assert signature(sealed.query("f" * 32)) == signature(
            reference.query("f" * 32)
        )

    def test_batch_cursor_bit_identical(self, twin_pair, stream):
        reference, sealed = twin_pair
        traces, _ = stream
        ids = [trace.trace_id for _, trace in traces]
        got = [signature(r) for r in sealed.query_many(ids).all()]
        want = [signature(r) for r in reference.query_many(ids).all()]
        assert got == want

    def test_predicate_spec_straddles_the_seal_point(self, twin_pair, stream):
        reference, sealed = twin_pair
        traces, targets = stream
        records = [
            TraceRecord(
                trace_id=trace.trace_id,
                timestamp=now,
                is_abnormal=trace.trace_id in targets,
            )
            for now, trace in traces
        ]
        # A window centred on the mid-stream compaction point: answers
        # mix sealed first-half and hot second-half traces.
        lo = records[NUM_TRACES // 4].timestamp
        hi = records[3 * NUM_TRACES // 4].timestamp
        spec = incident_window_spec(records, lo, hi)
        got = [signature(r) for r in sealed.execute(spec).all()]
        want = [signature(r) for r in reference.execute(spec).all()]
        assert got == want
        spec = incident_window_spec(records, lo, hi, error_only=True)
        got = [signature(r) for r in sealed.execute(spec).all()]
        want = [signature(r) for r in reference.execute(spec).all()]
        assert got == want

    def test_logical_rulers_never_move(self, twin_pair):
        reference, sealed = twin_pair
        assert sealed.storage_bytes == reference.storage_bytes
        assert sealed.network_bytes == reference.network_bytes
        for ref_engine, sealed_engine in zip(
            reference.backend.storage_engines(), sealed.backend.storage_engines()
        ):
            assert sealed_engine.pattern_bytes == ref_engine.pattern_bytes
            assert sealed_engine.bloom_bytes == ref_engine.bloom_bytes
            assert sealed_engine.params_bytes == ref_engine.params_bytes
        # The physical side is the only thing compression may move.
        assert sealed.physical_storage_bytes < sealed.storage_bytes
        assert reference.physical_storage_bytes == reference.storage_bytes


class TestRetroactiveWritesAgainstSealedRecords:
    def seal_backend(self, backend: MintBackend):
        return compact_engine(backend.storage, ColdPolicy())

    def test_query_reads_through_without_unsealing(self):
        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        before = backend.query(target, pull_params=True)
        assert before.status == "exact"
        self.seal_backend(backend)
        assert backend.storage.params.is_sealed(target)
        after = backend.query(target)
        assert signature(after) == signature(before)
        assert backend.storage.params.is_sealed(target)  # reads never unseal

    def test_pull_params_through_a_sealed_store(self):
        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        self.seal_backend(backend)
        # The pulled params land as a fresh hot bucket; sealed
        # neighbours read through untouched during the same query.
        target = f"{6:032x}"
        assert backend.query(target).status == "partial"
        assert backend.query(target, pull_params=True).status == "exact"
        assert backend.query(target).status == "exact"

    def test_late_report_for_a_sealed_record_unseals_and_merges(self):
        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        assert backend.query(target, pull_params=True).status == "exact"
        sealed_records = list(backend.storage.params[target])
        self.seal_backend(backend)
        logical_before = backend.storage.storage_bytes()
        late = [["s-late", None, "node-1", "p-late", 999.0, [1, "late"]]]
        backend.receive(ParamsReport(node="node-1", trace_id=target, records=late))
        assert not backend.storage.params.is_sealed(target)
        merged = backend.storage.params[target]
        assert merged[: len(sealed_records)] == sealed_records
        assert merged[-1][0] == "s-late"
        assert backend.storage.storage_bytes() > logical_before

    def test_corrupt_sealed_block_fails_loudly_never_stale(self):
        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        assert backend.query(target, pull_params=True).status == "exact"
        self.seal_backend(backend)
        tier = backend.storage.cold
        for block_id in list(tier._blocks):
            block = tier.block(block_id)
            tier._blocks[block_id] = dataclasses.replace(
                block, payload=b"\x00corrupt\xff"
            )
        with pytest.raises(ColdReadError):
            backend.query(target)


def engine_with_hosts() -> StorageEngine:
    """Buckets with disjoint and shared hosts, plus blooms per host."""
    engine = StorageEngine()
    for i, host in enumerate(("node-a", "node-b", "node-a", "node-b")):
        engine.store_bloom_report(
            BloomReport(
                node=host,
                topo_pattern_id=f"{i:016x}",
                payload=bytes([i + 1]) * 4096,
                inserted=i + 1,
            )
        )
    # t0: node-a only; t1: node-b only; t2: both hosts share a bucket.
    engine.store_params_report(
        ParamsReport(node="node-a", trace_id="a" * 32, records=[[0, 0, "node-a", "GET", 1]])
    )
    engine.store_params_report(
        ParamsReport(node="node-b", trace_id="b" * 32, records=[[0, 0, "node-b", "GET", 2]])
    )
    for host in ("node-a", "node-b"):
        engine.store_params_report(
            ParamsReport(node=host, trace_id="c" * 32, records=[[0, 0, host, "GET", 3]])
        )
    return engine


class TestEvictionWithSealedSegments:
    def test_eviction_matches_the_never_sealed_twin_exactly(self):
        sealed = engine_with_hosts()
        plain = engine_with_hosts()
        compact_engine(sealed, ColdPolicy(block_traces=1, block_blooms=1))
        assert sealed.params.sealed_count() == 3

        sealed_blooms, sealed_params = sealed.evict_host("node-a")
        plain_blooms, plain_params = plain.evict_host("node-a")

        assert sealed_params == plain_params
        assert [
            (b.node, b.topo_pattern_id, b.filter.inserted, b.filter.to_bytes())
            for b in sealed_blooms
        ] == [
            (b.node, b.topo_pattern_id, b.filter.inserted, b.filter.to_bytes())
            for b in plain_blooms
        ]
        # Exact conservation: every logical counter lands where the
        # never-sealed engine's does.
        assert sealed.params_bytes == plain.params_bytes
        assert sealed.bloom_bytes == plain.bloom_bytes
        assert sealed.pattern_bytes == plain.pattern_bytes
        assert sealed.storage_bytes() == plain.storage_bytes()

    def test_eviction_is_segment_granular(self):
        engine = engine_with_hosts()
        compact_engine(engine, ColdPolicy(block_traces=1, block_blooms=1))
        engine.evict_host("node-a")
        # node-b's single-host bucket lives in a block node-a never
        # touched: it must still be sealed (no promote-the-world).
        assert engine.params.is_sealed("b" * 32)
        assert not engine.params.is_sealed("c" * 32)  # shared bucket promoted
        assert engine.blooms.sealed_count() > 0

    def test_physical_split_survives_eviction(self):
        engine = engine_with_hosts()
        compact_engine(engine, ColdPolicy(block_traces=1, block_blooms=1))
        engine.evict_host("node-a")
        assert engine.physical_storage_bytes() == (
            engine.storage_bytes() - engine.cold_savings_bytes()
        )
        assert engine.cold_savings_bytes() == engine.cold.savings_bytes()


class TestReshardWithSealedSegments:
    def test_live_reshard_over_sealed_store_matches_fresh_deployment(self, stream):
        traces, _ = stream
        fresh = drive(
            MintFramework(
                deployment=Deployment.sharded(4), auto_warmup_traces=WARMUP
            ),
            traces,
        )
        live = MintFramework(
            deployment=Deployment.resharded(2, 4), auto_warmup_traces=WARMUP
        )
        last_now = 0.0
        for index, (now, trace) in enumerate(traces):
            if index == NUM_TRACES // 2:
                live.compact(ColdPolicy())
            live.process_trace(trace, now)
            last_now = now
        live.finalize(last_now)
        live.reshard()

        assert live.storage_bytes == fresh.storage_bytes
        for _, trace in traces:
            assert signature(live.query(trace.trace_id)) == signature(
                fresh.query(trace.trace_id)
            )
        assert live.migration_bytes > 0
        assert fresh.migration_bytes == 0
