"""Unit tests for LCS similarity (paper Eq. 1)."""

import pytest

from repro.parsing.lcs import lcs_length, lcs_tokens, token_similarity


class TestLcsLength:
    def test_identical(self):
        assert lcs_length(list("abcd"), list("abcd")) == 4

    def test_disjoint(self):
        assert lcs_length(list("abc"), list("xyz")) == 0

    def test_subsequence(self):
        assert lcs_length(["a", "b", "c", "d"], ["b", "d"]) == 2

    def test_classic_case(self):
        assert lcs_length(list("ABCBDAB"), list("BDCABA")) == 4

    def test_empty(self):
        assert lcs_length([], list("abc")) == 0
        assert lcs_length([], []) == 0

    def test_symmetry(self):
        a, b = list("tokens vary here"), list("tokens differ here")
        assert lcs_length(a, b) == lcs_length(b, a)


class TestLcsTokens:
    def test_is_subsequence_of_both(self):
        a = ["select", "x", "from", "t1", "where", "id"]
        b = ["select", "y", "from", "t2", "where", "id"]
        common = lcs_tokens(a, b)
        assert common == ["select", "from", "where", "id"]

    def test_length_matches_lcs_length(self):
        a = list("ABCBDAB")
        b = list("BDCABA")
        assert len(lcs_tokens(a, b)) == lcs_length(a, b)

    def test_empty_inputs(self):
        assert lcs_tokens([], ["a"]) == []


class TestTokenSimilarity:
    def test_identical_is_one(self):
        assert token_similarity(["a", "b"], ["a", "b"]) == 1.0

    def test_disjoint_is_zero(self):
        assert token_similarity(["a"], ["b"]) == 0.0

    def test_both_empty_is_one(self):
        assert token_similarity([], []) == 1.0

    def test_one_empty_is_zero(self):
        assert token_similarity([], ["a"]) == 0.0

    def test_normalised_by_longer(self):
        # LCS=2 over max(2, 4) = 0.5
        assert token_similarity(["a", "b"], ["a", "b", "c", "d"]) == pytest.approx(0.5)

    def test_paper_threshold_case(self):
        # 4 of 5 tokens shared: exactly the 0.8 default threshold.
        a = ["http", "nio", "8080", "exec", "17"]
        b = ["http", "nio", "8080", "exec", "42"]
        assert token_similarity(a, b) == pytest.approx(0.8)
