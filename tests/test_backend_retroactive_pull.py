"""Tests for query-driven retroactive parameter pulls (paper Fig. 9)."""

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.backend.backend import MintBackend
from repro.model.trace import SubTrace
from tests.conftest import make_span


def wire(params_buffer_bytes: int = 4 * 1024 * 1024):
    config = MintConfig(
        edge_case_base_rate=0.0, params_buffer_bytes=params_buffer_bytes
    )
    backend = MintBackend()
    agent = MintAgent(node="node-0", config=config)
    collector = MintCollector(agent, backend.receive, config=config)
    backend.register_collector(collector)
    return backend, collector


def subtrace(trace_id: str) -> SubTrace:
    return SubTrace(
        trace_id=trace_id,
        node="node-0",
        spans=[make_span(trace_id=trace_id)],
    )


class TestRetroactivePull:
    def test_partial_upgrades_to_exact_while_buffered(self):
        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        assert backend.query(target).status == "partial"
        upgraded = backend.query(target, pull_params=True)
        assert upgraded.status == "exact"
        assert upgraded.trace is not None
        # Subsequent plain queries stay exact (params persisted).
        assert backend.query(target).status == "exact"

    def test_pull_fails_gracefully_after_eviction(self):
        # A tiny buffer evicts everything quickly.
        backend, collector = wire(params_buffer_bytes=600)
        for i in range(3, 30):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        # Trace 10: past the always-sampled first occurrences, and long
        # since evicted from the 600-byte buffer.
        target = f"{10:032x}"
        assert target not in collector.agent.params_buffer
        result = backend.query(target, pull_params=True)
        # The oldest trace's params were evicted: still answerable, but
        # only approximately — the commonality part never dies.
        assert result.status == "partial"

    def test_pull_noop_for_exact_and_miss(self):
        backend, collector = wire()
        collector.process(subtrace("1" * 32), now=0.0)
        backend.notify_sampled("1" * 32)
        collector.flush(now=10.0)
        assert backend.query("1" * 32, pull_params=True).status == "exact"
        assert backend.query("e" * 32, pull_params=True).status in (
            "miss",
            "partial",
        )


class TestPullThroughSpecs:
    def test_pull_spec_upgrades_like_point_lookup(self):
        from repro.query import QuerySpec

        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        assert backend.query(target).status == "partial"
        result = backend.execute(QuerySpec.point(target, pull_params=True)).one()
        assert result.status == "exact"

    def test_pull_runs_before_predicate_evaluation(self):
        from repro.query import QuerySpec

        backend, collector = wire()
        for i in range(3, 9):
            collector.process(subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        target = f"{6:032x}"
        assert backend.query(target).status == "partial"
        # A window no real span falls into: the timestamp-less partial
        # would sail through it, but the pull must upgrade the answer
        # *first* so the predicate judges the exact trace's real spans.
        spec = QuerySpec.where(
            candidates=[target], time_range=(1000.0, 2000.0), pull_params=True
        )
        assert backend.execute(spec).all() == []
        # The pull itself did happen: the params are persisted now.
        assert backend.query(target).status == "exact"
