"""Property-based tests for the RRCF and topology-pattern invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rrcf import RandomCutTree
from repro.model.span import Span, SpanKind
from repro.model.trace import SubTrace
from repro.parsing.span_parser import SpanParser
from repro.parsing.trace_parser import extract_topo_pattern

points = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestRrcfProperties:
    @given(points, st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_count_tracks_inserts(self, pts, seed):
        tree = RandomCutTree(seed=seed)
        for i, p in enumerate(pts):
            tree.insert(i, list(p))
        assert len(tree) == len(pts)
        for i in range(len(pts)):
            assert i in tree

    @given(points, st.integers(0, 2**16), st.data())
    @settings(max_examples=40, deadline=None)
    def test_insert_delete_round_trip(self, pts, seed, data):
        tree = RandomCutTree(seed=seed)
        for i, p in enumerate(pts):
            tree.insert(i, list(p))
        order = list(range(len(pts)))
        data.draw(st.randoms(note_method_calls=False)).shuffle(order)
        for count_left, i in enumerate(order):
            tree.delete(i)
            assert len(tree) == len(pts) - count_left - 1
            assert i not in tree

    @given(points, st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_codisp_nonnegative(self, pts, seed):
        tree = RandomCutTree(seed=seed)
        for i, p in enumerate(pts):
            tree.insert(i, list(p))
        for i in range(len(pts)):
            assert tree.codisp(i) >= 0.0


def _random_subtrace(rng: random.Random, n_spans: int) -> SubTrace:
    trace_id = f"{rng.getrandbits(128):032x}"
    spans: list[Span] = []
    for i in range(n_spans):
        parent = None if i == 0 else spans[rng.randrange(i)].span_id
        spans.append(
            Span(
                trace_id=trace_id,
                span_id=f"{i:016x}",
                parent_id=parent,
                name=f"op-{i % 3}",
                service=f"svc-{i % 2}",
                kind=SpanKind.SERVER,
                start_time=float(i),
                duration=1.0,
                node="node-0",
                attributes={},
            )
        )
    return SubTrace(trace_id=trace_id, node="node-0", spans=spans)


class TestTopoPatternProperties:
    @given(st.integers(1, 8), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_span_order_invariance(self, n_spans, seed):
        """Shuffling the span list must not change the pattern id."""
        rng = random.Random(seed)
        sub = _random_subtrace(rng, n_spans)
        parser_a = SpanParser()
        parsed_a = {s.span_id: parser_a.parse(s) for s in sub}
        pattern_a = extract_topo_pattern(sub, parsed_a)

        shuffled = list(sub.spans)
        rng.shuffle(shuffled)
        sub_b = SubTrace(trace_id=sub.trace_id, node=sub.node, spans=shuffled)
        parser_b = SpanParser()
        parsed_b = {s.span_id: parser_b.parse(s) for s in sub_b}
        pattern_b = extract_topo_pattern(sub_b, parsed_b)
        assert pattern_a.pattern_id == pattern_b.pattern_id

    @given(st.integers(1, 8), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_serialisation_round_trip(self, n_spans, seed):
        from repro.parsing.trace_parser import TopoPattern

        rng = random.Random(seed)
        sub = _random_subtrace(rng, n_spans)
        parser = SpanParser()
        parsed = {s.span_id: parser.parse(s) for s in sub}
        pattern = extract_topo_pattern(sub, parsed)
        rebuilt = TopoPattern.from_dict(pattern.to_dict())
        assert rebuilt.pattern_id == pattern.pattern_id
        assert rebuilt.span_count == n_spans
