"""Fast-path equivalence tests for the batched ingestion engine.

The engine's optimisations (interned pattern identity, span replay
plans, the incremental byte estimator, incremental hot-template
ranking, Bloom fast paths) are all *supposed to be invisible*: same
ids, same bytes, same decisions as the reference computations.  These
tests pin that equivalence down.
"""

from __future__ import annotations

import hashlib
import math
import random
import string

from repro.agent.agent import MintAgent
from repro.agent.config import MintConfig
from repro.bloom.bloom_filter import BloomFilter, sized_for_bytes
from repro.model.encoding import encoded_size, fast_encoded_size
from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import SubTrace
from repro.parsing.attribute_parser import StringAttributeParser
from repro.parsing.span_parser import ParsedSpan, SpanParser, SpanPattern, SpanPatternLibrary
from repro.sim.experiment import generate_stream
from repro.workloads import build_onlineboutique


def _make_span(i: int, rng: random.Random, node: str = "node-0") -> Span:
    """Spans mixing stable vocabularies with high-cardinality values."""
    return Span(
        trace_id=f"trace-{i:08x}",
        span_id=f"span-{i:08x}",
        parent_id=None if i % 3 == 0 else f"span-{i - 1:08x}",
        name=f"op-{i % 4}",
        service=f"svc-{i % 3}",
        kind=SpanKind.SERVER,
        start_time=rng.uniform(0, 100),
        duration=rng.uniform(0.1, 50),
        status=SpanStatus.OK if i % 7 else SpanStatus.ERROR,
        node=node,
        attributes={
            "http.method": rng.choice(["GET", "POST"]),
            "http.url": f"/api/items/{rng.randrange(10**9):x}",
            "region": rng.choice(["eu-west", "us-east", "ap-south"]),
            "retries": rng.randrange(4),
            "payload": rng.uniform(1, 1e6),
        },
    )


class TestPatternIdentity:
    def test_pattern_id_is_content_hash(self):
        pattern = SpanPattern(
            name="op",
            service="svc",
            kind="server",
            status="ok",
            attributes=(("k", "string", "v <*>"),),
        )
        expected = hashlib.sha1(repr(pattern).encode("utf-8")).hexdigest()[:16]
        assert pattern.pattern_id == expected
        # Cached access returns the same value.
        assert pattern.pattern_id == expected

    def test_ids_stable_across_libraries_and_processes(self):
        """The backend merge invariant: two agents observing the same
        span shape must derive the same id with no coordination."""
        rng_a, rng_b = random.Random(5), random.Random(5)
        parser_a, parser_b = SpanParser(), SpanParser()
        ids_a = [parser_a.parse(_make_span(i, rng_a)).pattern_id for i in range(60)]
        ids_b = [parser_b.parse(_make_span(i, rng_b)).pattern_id for i in range(60)]
        assert ids_a == ids_b

    def test_intern_matches_register(self):
        library = SpanPatternLibrary()
        pattern = SpanPattern(
            name="op",
            service="svc",
            kind="server",
            status="ok",
            attributes=(("k", "string", "v"),),
        )
        via_register = library.register(pattern)
        via_intern = library.intern("op", "svc", "server", "ok", (("k", "string", "v"),))
        assert via_register == via_intern == pattern.pattern_id
        assert library.match_count(via_intern) == 2

    def test_round_trip_preserves_id(self):
        pattern = SpanPattern(
            name="op",
            service="svc",
            kind="client",
            status="error",
            attributes=(("a", "numeric", "<num>"), ("b", "string", "x <*>")),
        )
        assert SpanPattern.from_dict(pattern.to_dict()).pattern_id == pattern.pattern_id


class TestIncrementalSizeEstimator:
    def _random_value(self, rng: random.Random, depth: int = 0):
        roll = rng.random()
        if depth > 2 or roll < 0.4:
            return rng.choice(
                [
                    rng.uniform(-1e6, 1e6),
                    rng.randrange(-(10**9), 10**9),
                    "".join(rng.choice(string.printable) for _ in range(rng.randrange(20))),
                    'esc"ape\\',
                    "unicode-é中文",
                    None,
                    True,
                    False,
                    float("nan"),
                    float("inf"),
                ]
            )
        if roll < 0.7:
            return [self._random_value(rng, depth + 1) for _ in range(rng.randrange(4))]
        return {
            "".join(rng.choice(string.ascii_letters) for _ in range(rng.randrange(1, 6))):
                self._random_value(rng, depth + 1)
            for _ in range(rng.randrange(4))
        }

    def test_fast_encoded_size_matches_ruler(self):
        rng = random.Random(99)
        for _ in range(2000):
            value = self._random_value(rng)
            assert fast_encoded_size(value) == encoded_size(value)

    def test_params_size_matches_ruler_on_random_records(self):
        rng = random.Random(7)
        for i in range(500):
            params = {}
            for j in range(rng.randrange(6)):
                if rng.random() < 0.5:
                    params[f"k{j}"] = rng.uniform(-1e9, 1e9)
                else:
                    params[f"k{j}"] = [
                        "".join(rng.choice(string.printable) for _ in range(rng.randrange(12)))
                        for _ in range(rng.randrange(3))
                    ]
            params["__duration__"] = rng.uniform(0, 1e4)
            span = ParsedSpan(
                trace_id=f"t-{i}",
                span_id=f"s-{i}",
                parent_id=None if i % 2 else f"p-{i}",
                node=f"node-{i % 3}",
                start_time=rng.uniform(0, 1e6),
                pattern_id=f"{i:016x}",
                params=params,
            )
            assert span.params_size_bytes() == encoded_size(span.params_record())

    def test_params_size_matches_ruler_on_ingested_spans(self):
        """The plan-based sizing fast path must agree with the JSON
        ruler on real ingested traffic (including replayed spans)."""
        rng = random.Random(3)
        agent = MintAgent(node="node-0")
        spans = [_make_span(i, rng) for i in range(300)]
        agent.warm_up(spans[:80])
        for i, span in enumerate(spans):
            sub = SubTrace(trace_id=span.trace_id, node="node-0", spans=[span])
            result = agent.ingest(sub)
            assert result.parsed is not None
            for parsed in result.parsed.parsed_spans:
                assert parsed.params_size_bytes() == encoded_size(parsed.params_record())


class TestIngestManyEquivalence:
    def _stream(self, count: int = 120):
        workload = build_onlineboutique()
        stream, _ = generate_stream(workload, count, abnormal_rate=0.05, seed=17)
        return [trace for _, trace in stream]

    def test_ingest_many_identical_to_looped_ingest(self):
        traces = self._stream()
        nodes = {s.node for t in traces for s in t.spans}
        config = MintConfig()
        loop_agents = {n: MintAgent(node=n, config=config) for n in nodes}
        batch_agents = {n: MintAgent(node=n, config=config) for n in nodes}
        per_node: dict[str, list[SubTrace]] = {}
        for trace in traces:
            for sub in trace.sub_traces():
                per_node.setdefault(sub.node, []).append(sub)
        for node, subs in per_node.items():
            warm = [s for sub in subs[:30] for s in sub.spans]
            loop_agents[node].warm_up(warm)
            batch_agents[node].warm_up(warm)
        for node, subs in per_node.items():
            looped = [loop_agents[node].ingest(sub) for sub in subs]
            batched = batch_agents[node].ingest_many(subs)
            assert len(looped) == len(batched)
            for a, b in zip(looped, batched):
                assert a.trace_id == b.trace_id
                assert a.topo_pattern_id == b.topo_pattern_id
                assert a.sampled == b.sampled
                assert a.fired_samplers == b.fired_samplers
                assert a.parsed is not None and b.parsed is not None
                assert [p.pattern_id for p in a.parsed.parsed_spans] == [
                    p.pattern_id for p in b.parsed.parsed_spans
                ]
                assert [p.params for p in a.parsed.parsed_spans] == [
                    p.params for p in b.parsed.parsed_spans
                ]
            assert (
                loop_agents[node].params_buffer.used_bytes
                == batch_agents[node].params_buffer.used_bytes
            )
            assert len(loop_agents[node].span_patterns()) == len(
                batch_agents[node].span_patterns()
            )


class TestPlanReplayEquivalence:
    class _NoPlans(dict):
        """A plan table that never hits and never stores."""

        def get(self, key, default=None):  # noqa: D102
            return None

        def __len__(self):
            return SpanParser._SPAN_PLAN_CAP  # always "full"

    def test_plan_replay_equals_reference_parse(self):
        """Parsing with plans enabled must be indistinguishable from the
        reference path, span by span, including high-cardinality
        (volatile) attributes and hit-count bookkeeping."""
        rng_a, rng_b = random.Random(11), random.Random(11)
        fast, reference = SpanParser(), SpanParser()
        reference._span_plans = self._NoPlans()
        for i in range(400):
            a = fast.parse(_make_span(i, rng_a))
            b = reference.parse(_make_span(i, rng_b))
            assert a.pattern_id == b.pattern_id
            assert a.params == b.params
        assert len(fast._span_plans) > 0  # plans actually engaged
        ids_fast = sorted(p.pattern_id for p in fast.library.patterns())
        ids_ref = sorted(p.pattern_id for p in reference.library.patterns())
        assert ids_fast == ids_ref
        for pid in ids_fast:
            assert fast.library.match_count(pid) == reference.library.match_count(pid)
            assert fast.library.numeric_ranges(pid) == reference.library.numeric_ranges(pid)


class TestHotTemplateRanking:
    def test_incremental_ranking_matches_sorted_recompute(self):
        rng = random.Random(23)
        parser = StringAttributeParser("k", similarity_threshold=0.8)
        vocab = [f"request {w} handled" for w in ("alpha", "beta", "gamma", "delta")]
        parser.warm_up(vocab)
        values = [rng.choice(vocab) for _ in range(300)] + [
            f"request {rng.randrange(10**6)} handled" for _ in range(100)
        ]
        rng.shuffle(values)
        for value in values:
            parser.parse(value)
            expected = [
                t
                for t, _ in sorted(
                    parser._hit_counts.items(), key=lambda item: -item[1][0]
                )[: parser._HOT_TEMPLATES]
            ]
            assert parser._hot_ranked == expected


class TestNumericRangeFastPath:
    def test_envelope_short_circuit_matches_reference(self):
        from repro.parsing.numeric_buckets import NumericBucketer

        rng = random.Random(31)
        fast = SpanPatternLibrary()
        bucketer = NumericBucketer(alpha=0.5)
        reference: dict[str, tuple[float, float]] = {}
        gamma = bucketer.gamma
        edge_values = [1.0, -1.0, gamma, -gamma, gamma**3, -(gamma**3), 0.0]
        for _ in range(3000):
            if rng.random() < 0.2:
                value = rng.choice(edge_values)
            else:
                value = rng.uniform(-200, 200)
            fast.observe_numeric("p", "k", value)
            bucket = bucketer.bucket_of(value)
            lower = -bucket.upper if bucket.negative else bucket.lower
            upper = -bucket.lower if bucket.negative else bucket.upper
            current = reference.get("k")
            reference["k"] = (
                (lower, upper)
                if current is None
                else (min(current[0], lower), max(current[1], upper))
            )
            assert fast.numeric_ranges("p") == reference


class TestBloomFastPath:
    def test_no_false_negatives_and_popcount_saturation(self):
        filt = BloomFilter(expected_insertions=500, false_positive_probability=0.01)
        items = [f"trace-{i}" for i in range(500)]
        for item in items:
            filt.add(item)
        assert all(item in filt for item in items)
        reference = sum(bin(b).count("1") for b in filt.to_bytes())
        assert filt.saturation == reference / filt.bit_count

    def test_sized_for_bytes_closed_form_fits_budget(self):
        for budget in (16, 256, 1024, 4096, 65536):
            for fpp in (0.001, 0.01, 0.1):
                filt = sized_for_bytes(budget, fpp)
                assert filt.size_bytes <= budget
                # Capacity is the closed-form floor of the bit budget.
                bits_per_item = -math.log(fpp) / (math.log(2) ** 2)
                assert filt.expected_insertions == max(
                    1, int(budget * 8 / bits_per_item)
                )

    def test_union_consistency(self):
        a = BloomFilter(100, 0.01)
        b = BloomFilter(100, 0.01)
        a.add("x")
        b.add("y")
        merged = a.union(b)
        assert "x" in merged and "y" in merged


class TestFlushCallbackApi:
    def test_drain_and_notify_delivers_filters(self):
        agent = MintAgent(node="node-0", config=MintConfig(bloom_buffer_bytes=64))
        received = []
        agent.mounted_library.flush_callback = received.append
        assert agent.mounted_library.flush_callback is not None
        rng = random.Random(1)
        for i in range(10):
            span = _make_span(i, rng)
            agent.ingest(SubTrace(trace_id=span.trace_id, node="node-0", spans=[span]))
        drained = agent.mounted_library.drain_and_notify()
        assert drained  # active filters existed
        assert received[-len(drained):] == drained

    def test_reconstruct_patterns_uses_public_api(self):
        agent = MintAgent(node="node-0")
        received = []
        agent.mounted_library.flush_callback = received.append
        rng = random.Random(2)
        for i in range(5):
            span = _make_span(i, rng)
            agent.ingest(SubTrace(trace_id=span.trace_id, node="node-0", spans=[span]))
        agent.reconstruct_patterns()
        assert received, "drained filters must reach the flush callback"
        # The callback survives the rebuild.
        assert agent.mounted_library.flush_callback is not None
        assert len(agent.span_patterns()) == 0


class TestDeadNumericParserRemoved:
    def test_span_parser_has_no_unused_numeric_path(self):
        parser = SpanParser()
        assert not hasattr(parser, "_numeric_parser")
        assert not hasattr(parser, "_numeric_parsers")
