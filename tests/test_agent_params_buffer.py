"""Unit tests for the FIFO Params Buffer."""

import pytest

from repro.agent.params_buffer import ParamsBuffer
from repro.parsing.span_parser import ParsedSpan


def parsed(trace: str, span: str, payload: str = "x" * 50) -> ParsedSpan:
    return ParsedSpan(
        trace_id=trace,
        span_id=span,
        parent_id=None,
        node="node-0",
        start_time=0.0,
        pattern_id="p" * 16,
        params={"blob": [payload]},
    )


class TestBuffering:
    def test_add_and_get(self):
        buf = ParamsBuffer(capacity_bytes=10_000)
        buf.add(parsed("t1", "s1"))
        block = buf.get("t1")
        assert block is not None
        assert len(block.spans) == 1

    def test_same_trace_grouped_into_one_block(self):
        buf = ParamsBuffer(capacity_bytes=10_000)
        buf.add(parsed("t1", "s1"))
        buf.add(parsed("t1", "s2"))
        assert len(buf) == 1
        assert len(buf.get("t1").spans) == 2

    def test_used_bytes_tracks_content(self):
        buf = ParamsBuffer(capacity_bytes=100_000)
        assert buf.used_bytes == 0
        buf.add(parsed("t1", "s1"))
        first = buf.used_bytes
        buf.add(parsed("t2", "s2"))
        assert buf.used_bytes > first

    def test_pop_removes_and_returns(self):
        buf = ParamsBuffer(capacity_bytes=10_000)
        buf.add(parsed("t1", "s1"))
        block = buf.pop("t1")
        assert block is not None
        assert "t1" not in buf
        assert buf.used_bytes == 0
        assert buf.pop("t1") is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ParamsBuffer(capacity_bytes=0)


class TestEviction:
    def test_fifo_eviction_of_oldest_block(self):
        buf = ParamsBuffer(capacity_bytes=400)
        buf.add(parsed("t1", "s1", payload="a" * 100))
        buf.add(parsed("t2", "s2", payload="b" * 100))
        buf.add(parsed("t3", "s3", payload="c" * 100))
        # t1 (front of queue) must be gone first.
        assert "t1" not in buf
        assert buf.evicted_blocks >= 1
        assert buf.used_bytes <= 400

    def test_appending_does_not_refresh_position(self):
        buf = ParamsBuffer(capacity_bytes=500)
        buf.add(parsed("t1", "s1", payload="a" * 80))
        buf.add(parsed("t2", "s2", payload="b" * 80))
        buf.add(parsed("t1", "s3", payload="a" * 80))  # append to t1
        buf.add(parsed("t3", "s4", payload="c" * 200))
        # FIFO (not LRU): t1 is the oldest (appending to it did not
        # refresh its position) and evicts first; the newest survives.
        assert "t1" not in buf
        assert "t3" in buf

    def test_trace_ids_in_fifo_order(self):
        buf = ParamsBuffer(capacity_bytes=100_000)
        for i in range(5):
            buf.add(parsed(f"t{i}", f"s{i}"))
        assert buf.trace_ids() == [f"t{i}" for i in range(5)]

    def test_evicted_bytes_accounted(self):
        buf = ParamsBuffer(capacity_bytes=300)
        buf.add(parsed("t1", "s1", payload="a" * 100))
        used = buf.used_bytes
        buf.add(parsed("t2", "s2", payload="b" * 150))
        assert buf.evicted_bytes >= used or buf.evicted_blocks == 0
