"""Unit tests for the template prefix tree."""

from repro.parsing.prefix_tree import TemplatePrefixTree
from repro.parsing.string_patterns import WILDCARD, StringTemplate
from repro.parsing.tokenizer import tokenize


def t(*tokens: str) -> StringTemplate:
    return StringTemplate(tokens=tokens)


class TestInsertAndContains:
    def test_insert_and_contains(self):
        tree = TemplatePrefixTree()
        template = t("select", " ", WILDCARD)
        assert tree.insert(template)
        assert template in tree
        assert len(tree) == 1

    def test_duplicate_insert_rejected(self):
        tree = TemplatePrefixTree()
        template = t("a", " ", "b")
        assert tree.insert(template)
        assert not tree.insert(template)
        assert len(tree) == 1

    def test_templates_listing(self):
        tree = TemplatePrefixTree()
        t1, t2 = t("a", " ", "b"), t("a", " ", WILDCARD)
        tree.insert(t1)
        tree.insert(t2)
        assert set(tree.templates()) == {t1, t2}

    def test_prefix_sharing_reduces_nodes(self):
        shared = TemplatePrefixTree()
        shared.insert(t("select", " ", "a"))
        shared.insert(t("select", " ", "b"))
        disjoint = TemplatePrefixTree()
        disjoint.insert(t("select", " ", "a"))
        disjoint.insert(t("update", " ", "b"))
        assert shared.node_count() < disjoint.node_count()


class TestMatching:
    def test_exact_literal_match(self):
        tree = TemplatePrefixTree()
        template = t(*tokenize("select 1"))
        tree.insert(template)
        assert tree.find_match("select 1", tokenize("select 1")) == template

    def test_wildcard_match(self):
        tree = TemplatePrefixTree()
        template = t("select", " ", WILDCARD)
        tree.insert(template)
        value = "select something"
        assert tree.find_match(value, tokenize(value)) == template

    def test_most_specific_wins(self):
        tree = TemplatePrefixTree()
        loose = t(WILDCARD)
        tight = t("select", " ", WILDCARD)
        tree.insert(loose)
        tree.insert(tight)
        value = "select x"
        assert tree.find_match(value, tokenize(value)) == tight

    def test_no_match_returns_none(self):
        tree = TemplatePrefixTree()
        tree.insert(t("update", " ", WILDCARD))
        assert tree.find_match("delete row", tokenize("delete row")) is None

    def test_wildcard_consuming_zero_tokens(self):
        tree = TemplatePrefixTree()
        template = t("prefix", WILDCARD)
        tree.insert(template)
        assert tree.find_match("prefix", tokenize("prefix")) == template

    def test_trailing_wildcard_consumes_rest(self):
        tree = TemplatePrefixTree()
        template = t("a", " ", WILDCARD)
        tree.insert(template)
        value = "a b c d e f"
        assert tree.find_match(value, tokenize(value)) == template

    def test_interior_wildcard(self):
        tree = TemplatePrefixTree()
        template = t("begin", " ", WILDCARD, " ", "end")
        tree.insert(template)
        value = "begin middle stuff end"
        assert tree.find_match(value, tokenize(value)) == template
