"""Unit tests for the mounted topo library (patterns + Bloom filters)."""

from repro.agent.pattern_library import FlushedBloom, MountedTopoLibrary
from repro.model.trace import SubTrace
from repro.parsing.span_parser import SpanParser
from repro.parsing.trace_parser import extract_topo_pattern
from tests.conftest import make_span


def pattern_for(trace_id: str):
    sub = SubTrace(
        trace_id=trace_id, node="node-0", spans=[make_span(trace_id=trace_id)]
    )
    parser = SpanParser()
    parsed = {s.span_id: parser.parse(s) for s in sub}
    return extract_topo_pattern(sub, parsed)


class TestMounting:
    def test_register_and_mount(self):
        lib = MountedTopoLibrary(node="node-0", bloom_buffer_bytes=1024)
        pattern = pattern_for("1" * 32)
        pattern_id = lib.register_and_mount(pattern, "1" * 32)
        assert lib.might_contain(pattern_id, "1" * 32)
        assert not lib.might_contain(pattern_id, "9" * 32)

    def test_flush_on_full(self):
        flushed: list[FlushedBloom] = []
        lib = MountedTopoLibrary(
            node="node-0", bloom_buffer_bytes=64, on_flush=flushed.append
        )
        pattern = pattern_for("0" * 32)
        capacity = None
        for i in range(200):
            lib.register_and_mount(pattern, f"{i:032x}")
            if flushed and capacity is None:
                capacity = i + 1
        assert flushed, "a 64-byte filter must fill within 200 inserts"
        assert flushed[0].node == "node-0"
        assert flushed[0].inserted > 0
        assert lib.flushed_count == len(flushed)

    def test_filter_reset_after_flush(self):
        flushed: list[FlushedBloom] = []
        lib = MountedTopoLibrary(
            node="node-0", bloom_buffer_bytes=64, on_flush=flushed.append
        )
        pattern = pattern_for("0" * 32)
        for i in range(200):
            lib.register_and_mount(pattern, f"{i:032x}")
        # After a flush the fresh filter must not contain early ids.
        if flushed:
            pattern_id = pattern.pattern_id
            recent_only = lib.active_filters()[pattern_id]
            assert len(recent_only) < 200

    def test_drain_active_filters(self):
        lib = MountedTopoLibrary(node="node-0", bloom_buffer_bytes=1024)
        pattern = pattern_for("5" * 32)
        lib.register_and_mount(pattern, "5" * 32)
        drained = lib.drain_active_filters()
        assert len(drained) == 1
        assert drained[0].inserted == 1
        # Drained filters are reset.
        assert lib.drain_active_filters() == []

    def test_shared_library_instance(self):
        from repro.parsing.trace_parser import TopoPatternLibrary

        shared = TopoPatternLibrary()
        lib = MountedTopoLibrary(node="n", library=shared)
        pattern = pattern_for("7" * 32)
        lib.register_and_mount(pattern, "7" * 32)
        assert shared.match_count(pattern.pattern_id) == 1
