"""Unit tests for workload specs, generators and benchmark systems."""

import random

import pytest

from repro.model.span import SpanKind
from repro.parsing.lcs import token_similarity
from repro.parsing.tokenizer import tokenize, word_tokens
from repro.workloads import (
    DATASET_SPECS,
    SUBSERVICE_SPECS,
    WorkloadDriver,
    build_dataset,
    build_onlineboutique,
    build_subservice,
    build_trainticket,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.specs import (
    ApiSpec,
    CallSpec,
    NumericAttributeSpec,
    StringAttributeSpec,
    Workload,
    int_slot,
)


class TestSpecs:
    def test_string_spec_fills_slots(self):
        spec = StringAttributeSpec(template="id={} n={}", slots=[int_slot(1, 9)] * 2)
        value = spec.generate(random.Random(1))
        assert value.startswith("id=")
        assert spec.slot_count == 2

    def test_numeric_spec_respects_minimum(self):
        spec = NumericAttributeSpec(median=1.0, spread=2.0, minimum=5.0)
        rng = random.Random(2)
        assert all(spec.generate(rng) >= 5.0 for _ in range(50))

    def test_numeric_spec_integer_mode(self):
        spec = NumericAttributeSpec(median=100.0, integer=True)
        value = spec.generate(random.Random(3))
        assert value == int(value)

    def test_workload_validates_placement(self):
        api = ApiSpec(name="a", root=CallSpec(service="ghost", operation="op"))
        with pytest.raises(ValueError):
            Workload(name="w", apis=[api], service_nodes={})

    def test_workload_requires_apis(self):
        with pytest.raises(ValueError):
            Workload(name="w", apis=[], service_nodes={})

    def test_call_spec_walk_and_depth(self):
        leaf = CallSpec(service="s2", operation="leaf")
        root = CallSpec(service="s1", operation="root", children=[leaf])
        assert [c.operation for c in root.walk()] == ["root", "leaf"]
        assert root.depth() == 2


class TestBenchmarkSystems:
    def test_onlineboutique_shape(self):
        wl = build_onlineboutique()
        assert len(wl.services) == 10
        assert len(wl.apis) == 5
        assert len(wl.nodes) == 5

    def test_trainticket_shape(self):
        wl = build_trainticket()
        assert len(wl.services) == 45
        assert len(wl.apis) == 9
        assert len(wl.nodes) == 12

    @pytest.mark.parametrize("name", list(DATASET_SPECS))
    def test_datasets_match_fig13(self, name):
        spec = DATASET_SPECS[name]
        wl = build_dataset(name)
        assert len(wl.apis) == spec.api_number
        depths = [api.root.depth() for api in wl.apis]
        assert max(depths) >= spec.average_depth - 1

    @pytest.mark.parametrize("name", list(SUBSERVICE_SPECS))
    def test_subservices_buildable(self, name):
        wl = build_subservice(name)
        assert len(wl.apis) == SUBSERVICE_SPECS[name].api_number

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            build_dataset("Z")
        with pytest.raises(KeyError):
            build_subservice("S9")


class TestTraceGenerator:
    def test_deterministic(self):
        wl = build_onlineboutique()
        a = TraceGenerator(wl, seed=5).generate(wl.apis[0])
        b = TraceGenerator(wl, seed=5).generate(wl.apis[0])
        assert a.trace_id == b.trace_id
        assert [s.attributes for s in a.spans] == [s.attributes for s in b.spans]

    def test_tree_well_formed(self):
        wl = build_onlineboutique()
        trace = TraceGenerator(wl, seed=6).generate(wl.api_by_name("checkout"))
        ids = {s.span_id for s in trace.spans}
        roots = [s for s in trace.spans if s.parent_id is None]
        assert len(roots) == 1
        for span in trace.spans:
            assert span.parent_id is None or span.parent_id in ids

    def test_cross_node_calls_have_client_spans(self):
        wl = build_onlineboutique()
        trace = TraceGenerator(wl, seed=7).generate(wl.api_by_name("home"))
        clients = [s for s in trace.spans if s.kind is SpanKind.CLIENT]
        assert clients
        for client in clients:
            assert "peer.service" in client.attributes
            # The client span sits on the caller's node.
            server = next(
                s for s in trace.spans if s.parent_id == client.span_id
            )
            assert server.node != client.node

    def test_every_span_has_resource_block(self):
        wl = build_onlineboutique()
        trace = TraceGenerator(wl, seed=8).generate(wl.apis[0])
        for span in trace.spans:
            assert "otel.resource" in span.attributes

    def test_durations_nest(self):
        wl = build_onlineboutique()
        trace = TraceGenerator(wl, seed=9).generate(wl.api_by_name("home"))
        by_id = {s.span_id: s for s in trace.spans}
        for span in trace.spans:
            if span.parent_id and span.parent_id in by_id:
                assert by_id[span.parent_id].duration >= span.duration * 0.99


class TestAttributeClusterability:
    """The workload design contract: same-operation values must clear
    the paper's 0.8 LCS threshold so they cluster into one template."""

    @pytest.mark.parametrize(
        "builder", [build_onlineboutique, build_trainticket, lambda: build_dataset("A")]
    )
    def test_same_slot_values_similar(self, builder):
        wl = builder()
        rng = random.Random(0)
        for api in wl.apis[:3]:
            for call in api.root.walk():
                for key, spec in call.attributes.items():
                    if not isinstance(spec, StringAttributeSpec) or not spec.slots:
                        continue
                    a = word_tokens(tokenize(spec.generate(rng)))
                    b = word_tokens(tokenize(spec.generate(rng)))
                    assert token_similarity(a, b) >= 0.8, (api.name, key)


class TestDriver:
    def test_trace_count_and_timing(self):
        wl = build_onlineboutique()
        driver = WorkloadDriver(wl, seed=1, requests_per_minute=600)
        stream = list(driver.traces(10))
        assert len(stream) == 10
        times = [now for now, _ in stream]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(0.1)

    def test_api_mix_follows_weights(self):
        wl = build_onlineboutique()
        driver = WorkloadDriver(wl, seed=2)
        names = []
        for _, trace in driver.traces(500):
            names.append(trace.root.name)
        # 'home' (weight .35) must dominate 'set_currency' (weight .05).
        assert names.count("GET /") > names.count("POST /setCurrency")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            WorkloadDriver(build_onlineboutique(), requests_per_minute=0)
