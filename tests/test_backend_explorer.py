"""Unit tests for the Trace Explorer (flame graphs, batch analysis)."""

import pytest

from repro.agent.config import MintConfig
from repro.backend.explorer import (
    BatchAnalysis,
    batch_analyze,
    flame_graph,
    flame_graph_from_approximate,
    flame_graph_from_trace,
    render_flame_graph,
)
from repro.framework import MintFramework
from repro.query.result import (
    ApproximateSegment,
    ApproximateTrace,
    QueryResult,
    QueryStatus,
)
from repro.workloads import WorkloadDriver, build_onlineboutique
from tests.conftest import make_chain_trace


def _view(name: str, service: str, depth: int = 0, **extra) -> dict:
    """One rendered approximate span view, explorer-shaped."""
    view = {
        "name": name,
        "service": service,
        "kind": "server",
        "status": "ok",
        "duration": "(1, 9]",
        "attributes": {},
        "depth": depth,
    }
    view.update(extra)
    return view


@pytest.fixture(scope="module")
def mint_with_traffic():
    mint = MintFramework(
        config=MintConfig(edge_case_base_rate=0.0), auto_warmup_traces=10
    )
    driver = WorkloadDriver(build_onlineboutique(), seed=33)
    traces = [t for _, t in driver.traces(80)]
    for i, trace in enumerate(traces):
        mint.process_trace(trace, float(i))
    mint.finalize(100.0)
    return mint, traces


class TestFlameGraphExact:
    def test_chain_becomes_nested_nodes(self):
        trace = make_chain_trace(depth=3)
        roots = flame_graph_from_trace(trace)
        assert len(roots) == 1
        assert roots[0].children[0].children[0].label == "op-2"

    def test_durations_rendered(self):
        trace = make_chain_trace(depth=2)
        roots = flame_graph_from_trace(trace)
        assert roots[0].duration_text.endswith("ms")

    def test_render_text(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        exact_id = sorted(mint.stored_trace_ids())[0]
        text = render_flame_graph(mint.query_full(exact_id))
        assert "[exact]" in text
        assert "▇" in text
        # Indentation grows with depth.
        lines = text.splitlines()[1:]
        assert any(line.startswith("  ") for line in lines)


class TestFlameGraphApproximate:
    def test_partial_trace_renders(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        partial = next(
            t.trace_id
            for t in traces
            if mint.query(t.trace_id).status == "partial"
        )
        result = mint.query_full(partial)
        roots = flame_graph(result)
        assert roots
        text = render_flame_graph(result)
        assert "[partial]" in text
        # Approximate durations are bucket intervals.
        assert "(" in text and "]" in text

    def test_miss_renders_empty(self, mint_with_traffic):
        mint, _ = mint_with_traffic
        result = mint.query_full("e" * 32)
        if result.status == "miss":
            assert flame_graph(result) == []


class TestBatchAnalysis:
    def test_population_counts(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.traces_seen == len(traces)
        assert analysis.exact_traces + analysis.partial_traces == len(traces)
        assert analysis.spans_available > len(traces)

    def test_paths_aggregated(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.top_paths
        top_path, count = analysis.top_paths[0]
        assert count >= 1
        assert "frontend" in top_path

    def test_duration_buckets_collected(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.service_duration_buckets
        some_service = next(iter(analysis.service_duration_buckets))
        assert sum(analysis.service_duration_buckets[some_service].values()) > 0

    def test_misses_skipped(self):
        from repro.backend.querier import QueryResult

        analysis = batch_analyze([QueryResult(trace_id="x", status="miss")])
        assert analysis.traces_seen == 0


class TestFlameGraphPartialAndMiss:
    """PR 5 satellite: explorer behaviour on partial / miss results."""

    def test_miss_is_empty_everywhere(self):
        miss = QueryResult(trace_id="dead" * 8, status=QueryStatus.MISS)
        assert flame_graph(miss) == []
        text = render_flame_graph(miss)
        assert "[miss]" in text
        assert text.count("\n") == 0  # header line only, no bars

    def test_real_miss_from_framework(self, mint_with_traffic):
        mint, _ = mint_with_traffic
        result = mint.query("e" * 32)
        assert result.status is QueryStatus.MISS
        assert flame_graph(result) == []

    def test_empty_segment_renders_no_bars(self):
        approx = ApproximateTrace(
            trace_id="t",
            segments=[ApproximateSegment(topo_pattern_id="p1", nodes_reporting=["n"])],
        )
        partial = QueryResult(
            trace_id="t", status=QueryStatus.PARTIAL, approximate=approx
        )
        assert flame_graph(partial) == []
        assert "[partial]" in render_flame_graph(partial)

    def test_multi_segment_stitched_trace(self):
        """Two stitched segments contribute their own root forests."""
        upstream = ApproximateSegment(
            topo_pattern_id="p-up",
            nodes_reporting=["node-a"],
            spans=[
                _view("GET /checkout", "frontend", depth=0),
                _view("charge", "payments", depth=1),
            ],
            exit_ops=[("shipping", "quote")],
        )
        downstream = ApproximateSegment(
            topo_pattern_id="p-down",
            nodes_reporting=["node-b"],
            spans=[_view("quote", "shipping", depth=0)],
            entry_ops=[("shipping", "quote")],
        )
        approx = ApproximateTrace(trace_id="t", segments=[upstream, downstream])
        roots = flame_graph_from_approximate(approx)
        assert [r.service for r in roots] == ["frontend", "shipping"]
        assert [c.service for c in roots[0].children] == ["payments"]
        text = render_flame_graph(
            QueryResult(trace_id="t", status=QueryStatus.PARTIAL, approximate=approx)
        )
        assert "payments" in text and "shipping" in text

    def test_depth_gaps_fall_back_to_roots(self):
        approx = ApproximateTrace(
            trace_id="t",
            segments=[
                ApproximateSegment(
                    topo_pattern_id="p",
                    nodes_reporting=["n"],
                    spans=[_view("deep", "svc", depth=3), _view("top", "svc", depth=0)],
                )
            ],
        )
        roots = flame_graph_from_approximate(approx)
        assert [r.label for r in roots] == ["deep", "top"]


class TestBatchAnalyzeMixedStatuses:
    """PR 5 satellite: batch_analyze over cursors of mixed outcomes."""

    def _mixed_results(self):
        exact_trace = make_chain_trace(depth=2, trace_id="a" * 32)
        approx = ApproximateTrace(
            trace_id="b" * 32,
            segments=[
                ApproximateSegment(
                    topo_pattern_id="p",
                    nodes_reporting=["n"],
                    spans=[
                        _view("op", "svc-approx", status="error", duration=None),
                        _view("child", "svc-approx", depth=1),
                    ],
                )
            ],
        )
        return [
            QueryResult(
                trace_id=exact_trace.trace_id,
                status=QueryStatus.EXACT,
                trace=exact_trace,
            ),
            QueryResult(
                trace_id="b" * 32, status=QueryStatus.PARTIAL, approximate=approx
            ),
            QueryResult(trace_id="c" * 32, status=QueryStatus.MISS),
        ]

    def test_counts_split_by_status(self):
        analysis = batch_analyze(self._mixed_results())
        assert analysis.traces_seen == 2
        assert analysis.exact_traces == 1
        assert analysis.partial_traces == 1
        assert analysis.spans_available == 4  # 2 exact + 2 approximate

    def test_approximate_error_flags_counted(self):
        analysis = batch_analyze(self._mixed_results())
        assert analysis.service_error_counts["svc-approx"] == 1

    def test_unknown_duration_bucketed_as_mask(self):
        analysis = batch_analyze(self._mixed_results())
        assert analysis.service_duration_buckets["svc-approx"]["<num>"] == 1

    def test_from_cursor_over_live_framework(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        ids = [t.trace_id for t in traces] + ["e" * 32]  # one guaranteed miss
        analysis = BatchAnalysis.from_cursor(mint.query_many(ids))
        assert analysis.traces_seen == len(traces)
        assert analysis.exact_traces + analysis.partial_traces == len(traces)
        by_list = batch_analyze([mint.query(tid) for tid in ids])
        assert analysis.spans_available == by_list.spans_available
        assert analysis.path_counts == by_list.path_counts
