"""Unit tests for the Trace Explorer (flame graphs, batch analysis)."""

import pytest

from repro.agent.config import MintConfig
from repro.backend.explorer import (
    batch_analyze,
    flame_graph,
    flame_graph_from_trace,
    render_flame_graph,
)
from repro.baselines import MintFramework
from repro.workloads import WorkloadDriver, build_onlineboutique
from tests.conftest import make_chain_trace


@pytest.fixture(scope="module")
def mint_with_traffic():
    mint = MintFramework(
        config=MintConfig(edge_case_base_rate=0.0), auto_warmup_traces=10
    )
    driver = WorkloadDriver(build_onlineboutique(), seed=33)
    traces = [t for _, t in driver.traces(80)]
    for i, trace in enumerate(traces):
        mint.process_trace(trace, float(i))
    mint.finalize(100.0)
    return mint, traces


class TestFlameGraphExact:
    def test_chain_becomes_nested_nodes(self):
        trace = make_chain_trace(depth=3)
        roots = flame_graph_from_trace(trace)
        assert len(roots) == 1
        assert roots[0].children[0].children[0].label == "op-2"

    def test_durations_rendered(self):
        trace = make_chain_trace(depth=2)
        roots = flame_graph_from_trace(trace)
        assert roots[0].duration_text.endswith("ms")

    def test_render_text(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        exact_id = sorted(mint.stored_trace_ids())[0]
        text = render_flame_graph(mint.query_full(exact_id))
        assert "[exact]" in text
        assert "▇" in text
        # Indentation grows with depth.
        lines = text.splitlines()[1:]
        assert any(line.startswith("  ") for line in lines)


class TestFlameGraphApproximate:
    def test_partial_trace_renders(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        partial = next(
            t.trace_id
            for t in traces
            if mint.query(t.trace_id).status == "partial"
        )
        result = mint.query_full(partial)
        roots = flame_graph(result)
        assert roots
        text = render_flame_graph(result)
        assert "[partial]" in text
        # Approximate durations are bucket intervals.
        assert "(" in text and "]" in text

    def test_miss_renders_empty(self, mint_with_traffic):
        mint, _ = mint_with_traffic
        result = mint.query_full("e" * 32)
        if result.status == "miss":
            assert flame_graph(result) == []


class TestBatchAnalysis:
    def test_population_counts(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.traces_seen == len(traces)
        assert analysis.exact_traces + analysis.partial_traces == len(traces)
        assert analysis.spans_available > len(traces)

    def test_paths_aggregated(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.top_paths
        top_path, count = analysis.top_paths[0]
        assert count >= 1
        assert "frontend" in top_path

    def test_duration_buckets_collected(self, mint_with_traffic):
        mint, traces = mint_with_traffic
        analysis = batch_analyze(mint.query_full(t.trace_id) for t in traces)
        assert analysis.service_duration_buckets
        some_service = next(iter(analysis.service_duration_buckets))
        assert sum(analysis.service_duration_buckets[some_service].values()) > 0

    def test_misses_skipped(self):
        from repro.backend.querier import QueryResult

        analysis = batch_analyze([QueryResult(trace_id="x", status="miss")])
        assert analysis.traces_seen == 0
