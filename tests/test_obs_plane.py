"""The observability plane: registry semantics, the unified quantile
codepath, thread safety, export surfaces, and the two contracts the
plane lives or dies by — observation changes nothing it observes, and
two identical seeded runs report identically (sim domain).

The obs bench (``benchmarks/perf/run_obs_bench.py``) gates the same
contracts end to end at full scale; these tests pin them per component
and at smoke scale so a violation names its seam.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.framework import MintFramework
from repro.obs import (
    NULL_OBSERVER,
    Counter,
    Gauge,
    Histogram,
    LatencyStats,
    MetricsRegistry,
    NullObserver,
    Observer,
    deterministic_report,
    format_labels,
    render_prometheus,
    report_to_json,
)
from repro.obs.metrics import SIM_DOMAIN, WALL_DOMAIN
from repro.obs.trace import NULL_INSTRUMENT
from repro.sim.incident import incident_deployment, run_incident
from repro.transport import Deployment
from repro.workloads.generator import WorkloadDriver


def build_stream(workload, count: int, seed: int = 7):
    driver = WorkloadDriver(workload, seed=seed, requests_per_minute=6000)
    return list(driver.traces(count))


def drive(deployment: Deployment, stream) -> MintFramework:
    framework = MintFramework(deployment=deployment)
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework


class TestMetricsRegistry:
    def test_counter_counts_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("mint_things", plane="test")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 42

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("mint_depth")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0

    def test_same_name_and_labels_share_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("mint_reports", shard="0", plane="transport")
        # Label order must not matter for identity.
        b = registry.counter("mint_reports", plane="transport", shard="0")
        c = registry.counter("mint_reports", shard="1", plane="transport")
        assert a is b
        assert a is not c
        a.inc()
        assert registry.counter("mint_reports", shard="0", plane="transport").value == 1

    def test_kind_collision_on_one_name_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("mint_dual")
        with pytest.raises(ValueError):
            registry.gauge("mint_dual")

    def test_snapshot_keys_carry_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("mint_reports", shard="0", plane="transport").inc(3)
        snapshot = registry.snapshot()
        key = 'mint_reports{plane="transport",shard="0"}'
        assert snapshot["counters"] == {key: 3}
        assert format_labels({"shard": "0", "plane": "transport"}) == (
            '{plane="transport",shard="0"}'
        )


class TestHistogramQuantiles:
    def test_latency_stats_is_the_histogram(self):
        # The satellite contract: one quantile codepath.  LatencyStats
        # survives as the sample-tracking flavour of Histogram.
        assert issubclass(LatencyStats, Histogram)
        stats = LatencyStats()
        stats.record(0.2)
        stats.observe(0.4)  # both verbs, one instrument
        assert len(stats) == 2
        assert stats.mean == pytest.approx(0.3)

    def test_exact_percentiles_with_sample_tracking(self):
        hist = Histogram("h", track_samples=True)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            hist.observe(value)
        assert hist.p50 == 0.3
        assert hist.percentile(0) == 0.1
        assert hist.percentile(100) == 0.5

    def test_bucketed_percentile_returns_an_upper_bound(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0), track_samples=False)
        for value in (0.05, 0.05, 0.5):
            hist.observe(value)
        # Without samples the quantile is the covering bucket's bound —
        # conservative, never an underestimate.
        assert hist.p50 == 0.1
        assert hist.p99 == 1.0

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError, match="negative latency"):
            Histogram("h").observe(-1e-9)

    def test_percentile_bounds_validated(self):
        hist = Histogram("h")
        with pytest.raises(ValueError, match="pct"):
            hist.percentile(101)

    def test_merge_across_bucket_layouts_uses_samples(self):
        left = Histogram("h", buckets=(0.1, 1.0), track_samples=True)
        right = Histogram("h", buckets=(0.5, 2.0), track_samples=True)
        left.observe(0.05)
        right.observe(1.5)
        left.merge(right)
        assert len(left) == 2
        assert left.percentile(100) == 1.5

    def test_deterministic_snapshot_strips_wall_durations_only(self):
        wall = Histogram("w", domain=WALL_DOMAIN)
        sim = Histogram("s", domain=SIM_DOMAIN)
        wall.observe(0.123)
        sim.observe(0.5)
        assert set(wall.snapshot(deterministic=True)) == {"count", "domain"}
        assert wall.snapshot(deterministic=True)["count"] == 1
        assert "p50" in sim.snapshot(deterministic=True)


class TestObserverSeam:
    def test_spans_record_into_stage_histograms(self):
        observer = Observer()
        with observer.span("parse"):
            pass
        ticks = iter([1.0, 3.5])
        with observer.sim_span("epoch_barrier", clock=lambda: next(ticks)):
            pass
        snapshot = observer.snapshot()
        stages = snapshot["histograms"]
        assert 'mint_stage_seconds{stage="parse"}' in stages
        barrier = stages['mint_stage_seconds{stage="epoch_barrier"}']
        assert barrier["sum"] == pytest.approx(2.5)

    def test_null_observer_is_inert_everywhere(self):
        assert NULL_OBSERVER.enabled is False
        assert NULL_OBSERVER.registry is None
        assert NULL_OBSERVER.counter("mint_x") is NULL_INSTRUMENT
        # Every verb is a no-op, including the context managers.
        NULL_OBSERVER.count("mint_x", 3)
        NULL_OBSERVER.observe_sim("parse", 1.0)
        with NULL_OBSERVER.span("parse"):
            pass
        assert NULL_OBSERVER.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert isinstance(NULL_OBSERVER, NullObserver)


class TestThreadSafety:
    def test_registry_survives_concurrent_writers(self):
        registry = MetricsRegistry()
        counter = registry.counter("mint_hits")
        hist = registry.histogram("mint_lat", track_samples=False)
        workers, per_worker = 8, 2000

        def hammer():
            for i in range(per_worker):
                counter.inc()
                hist.observe((i % 100) * 1e-4)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == workers * per_worker
        assert hist.count == workers * per_worker

    def test_meters_stay_exact_under_concurrent_lane_replay(self, boutique_workload):
        # The concurrent ingest plane fans the hot path over worker
        # lanes; instrumentation stays parent-side (single-writer), so
        # obs-on lane ingest must agree with the sequential run on
        # every deterministic surface.
        stream = build_stream(boutique_workload, 96)
        lanes = drive(Deployment.single(workers=2, ingest_epoch=16), stream)
        sequential = drive(Deployment.single(), stream)
        assert lanes.storage_bytes == sequential.storage_bytes
        assert lanes.network_bytes == sequential.network_bytes
        counters = lanes.observer.snapshot(deterministic=True)["counters"]
        assert counters['mint_ingest_traces{plane="ingest"}'] == len(stream)
        lane_total = sum(
            value
            for key, value in counters.items()
            if key.startswith("mint_lane_reports")
        )
        # Epoch replies carry the mid-stream reports; finalize-time
        # collector flushes go to the transport directly, so the lane
        # counters are a strict subset of the wire's total.
        assert 0 < lane_total <= counters['mint_transport_reports{plane="transport"}']
        assert counters['mint_epochs_applied{plane="concurrent"}'] > 0
        lanes.close()
        sequential.close()


class TestFrameworkContracts:
    def test_observation_changes_nothing_it_observes(self, boutique_workload):
        stream = build_stream(boutique_workload, 80)
        on = drive(Deployment.single(observability=True), stream)
        off = drive(Deployment.single(observability=False), stream)
        assert (on.storage_bytes, on.network_bytes) == (
            off.storage_bytes,
            off.network_bytes,
        )
        ids = [trace.trace_id for _, trace in stream]
        on_answers = [(r.trace_id, str(r.status)) for r in on.query_many(ids)]
        off_answers = [(r.trace_id, str(r.status)) for r in off.query_many(ids)]
        assert on_answers == off_answers
        on.close()
        off.close()

    def test_deterministic_report_replays_bit_identically(self, boutique_workload):
        stream = build_stream(boutique_workload, 80)
        first = drive(Deployment.sharded(2), stream)
        second = drive(Deployment.sharded(2), stream)
        assert deterministic_report(first) == deterministic_report(second)
        first.close()
        second.close()

    def test_obs_report_folds_every_plane(self, boutique_workload):
        stream = build_stream(boutique_workload, 60)
        framework = drive(Deployment.single(), stream)
        report = framework.obs_report()
        assert set(report) >= {
            "framework", "deployment", "observability", "ledger",
            "meters", "metrics", "net", "elastic", "cold", "query", "shards",
        }
        assert report["observability"] is True
        assert report["ledger"]["storage_bytes"] == framework.storage_bytes
        counters = report["metrics"]["counters"]
        assert counters['mint_ingest_traces{plane="ingest"}'] == len(stream)
        # The folded-in query totals count the plans the plane ran.
        assert report["query"]["candidates"] == 0  # no queries yet
        framework.close()

    def test_obs_off_framework_reports_empty_metrics(self, boutique_workload):
        stream = build_stream(boutique_workload, 40)
        framework = drive(Deployment.single(observability=False), stream)
        assert "+obs-off" in framework.deployment.describe()
        report = framework.obs_report()
        assert report["observability"] is False
        assert report["metrics"] == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert framework.obs_prometheus() == ""
        framework.close()


class TestExportSurfaces:
    def test_prometheus_rendering(self, boutique_workload):
        stream = build_stream(boutique_workload, 40)
        framework = drive(Deployment.single(), stream)
        text = framework.obs_prometheus()
        assert "# TYPE mint_ingest_traces_total counter" in text
        assert 'mint_ingest_traces_total{plane="ingest"} 40' in text
        assert 'le="+Inf"' in text
        assert "mint_stage_seconds_count" in text
        # Rendering is stable: same state, same text.
        assert text == framework.obs_prometheus()
        framework.close()

    def test_obs_json_round_trips(self, boutique_workload):
        stream = build_stream(boutique_workload, 40)
        framework = drive(Deployment.single(), stream)
        decoded = json.loads(framework.obs_json(deterministic=True))
        assert decoded == framework.obs_report(deterministic=True)
        assert report_to_json({"b": 1, "a": 2}).index('"a"') < report_to_json(
            {"b": 1, "a": 2}
        ).index('"b"')
        framework.close()

    def test_render_prometheus_handles_an_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestIncidentHarness:
    def test_incident_detects_and_reports(self):
        result = run_incident(num_traces=150, probe_every=25, seed=11)
        assert result.detected
        assert result.detection_latency_s is not None
        assert result.detection_latency_s >= 0.0
        assert result.fault_time_s > 0.0
        assert result.faulty_traces > 0
        assert result.probes and result.probes[-1].hit
        cell = result.as_dict()
        assert cell["topology"] == "single"
        assert cell["profile"] == "lossless"
        assert cell["target_service"] == result.target_service
        assert cell["probes"][-1]["hit"] is True

    def test_incident_is_deterministic(self):
        first = run_incident(num_traces=120, probe_every=30, seed=11)
        second = run_incident(num_traces=120, probe_every=30, seed=11)
        assert first.as_dict() == second.as_dict()

    def test_incident_deployment_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="incident topology"):
            incident_deployment("mesh", "lossless", 10.0)


class TestInstrumentPlumbing:
    def test_counter_and_gauge_are_slotted_and_locked(self):
        counter = Counter("c", {})
        gauge = Gauge("g", {})
        counter.inc()
        gauge.set(1.0)
        assert not hasattr(counter, "__dict__")
        assert not hasattr(gauge, "__dict__")

    def test_histogram_pickles_without_its_lock(self):
        import pickle

        hist = Histogram("h", track_samples=True)
        hist.observe(0.25)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.count == 1
        assert clone.p50 == 0.25
        clone.observe(0.5)  # the recreated lock works
        assert clone.count == 2
