"""The concurrent ingest plane: lanes, proxies, barriers, snapshots.

The load-bearing contract here is worker-count invariance — a parallel
deployment at ANY worker count, in EITHER lane mode, must be
bit-identical to the single-threaded run of the same topology: byte
tables, per-minute meter series, per-shard charge attribution, query
signatures and stored-trace sets.  The race/stress CI lane reruns this
module 20x with randomized worker counts, so anything order- or
timing-dependent that slips past the design will flake there loudly.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.concurrent.lanes import LaneError, ProcessLane, ThreadLane, make_lane
from repro.concurrent.snapshot import PatternPlaneSnapshot
from repro.concurrent.verify import compare_fingerprints, fingerprint
from repro.framework import MintFramework
from repro.sim.concurrent import (
    run_concurrent_experiment,
    run_snapshot_experiment,
)
from repro.sim.experiment import generate_stream
from repro.transport import Deployment

NUM_TRACES = 160
WARMUP = 60

# The stress lane exports a randomized count; default exercises 3 (an
# uneven fleet split, the interesting case between 1 and powers of two).
STRESS_WORKERS = int(os.environ.get("CONCURRENT_STRESS_WORKERS", "3"))


@pytest.fixture(scope="module")
def stream(boutique_workload):
    stream, _ = generate_stream(
        boutique_workload, NUM_TRACES, abnormal_rate=0.02, seed=17
    )
    return stream


def drive(framework, stream):
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework


@pytest.fixture(scope="module")
def reference_print(stream):
    framework = drive(MintFramework(auto_warmup_traces=WARMUP), stream)
    return fingerprint(framework, stream)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2, STRESS_WORKERS, 8])
    def test_thread_lanes_bit_identical_to_sequential(
        self, stream, reference_print, workers
    ):
        framework = drive(
            MintFramework(
                auto_warmup_traces=WARMUP,
                deployment=Deployment.single(workers=workers),
            ),
            stream,
        )
        try:
            violations = compare_fingerprints(
                reference_print, fingerprint(framework, stream)
            )
            assert violations == []
        finally:
            framework.close()

    def test_process_lanes_bit_identical_to_sequential(
        self, stream, reference_print
    ):
        framework = drive(
            MintFramework(
                auto_warmup_traces=WARMUP,
                deployment=Deployment.single(workers=2, worker_mode="process"),
            ),
            stream,
        )
        try:
            violations = compare_fingerprints(
                reference_print, fingerprint(framework, stream)
            )
            assert violations == []
        finally:
            framework.close()

    def test_sharded_parallel_matches_sharded_sequential(self, stream):
        reference = drive(
            MintFramework(
                auto_warmup_traces=WARMUP, deployment=Deployment.sharded(4)
            ),
            stream,
        )
        framework = drive(
            MintFramework(
                auto_warmup_traces=WARMUP,
                deployment=Deployment.sharded(4, workers=4),
            ),
            stream,
        )
        try:
            violations = compare_fingerprints(
                fingerprint(reference, stream), fingerprint(framework, stream)
            )
            assert violations == []
        finally:
            framework.close()

    def test_epoch_size_does_not_change_results(self, stream, reference_print):
        # The epoch is a latency/throughput knob, never a results knob.
        for epoch in (1, 7, 256):
            framework = drive(
                MintFramework(
                    auto_warmup_traces=WARMUP,
                    deployment=Deployment.single(workers=2, ingest_epoch=epoch),
                ),
                stream,
            )
            try:
                assert (
                    compare_fingerprints(
                        reference_print, fingerprint(framework, stream)
                    )
                    == []
                ), f"ingest_epoch={epoch} diverged"
            finally:
                framework.close()

    def test_randomized_worker_counts_and_epochs(self, stream, reference_print):
        # The stress lane's core: every (workers, epoch) draw must agree.
        rng = random.Random()  # deliberately unseeded; CI reruns 20x
        for _ in range(2):
            workers = rng.randint(1, 9)
            epoch = rng.choice([1, 3, 16, 64])
            framework = drive(
                MintFramework(
                    auto_warmup_traces=WARMUP,
                    deployment=Deployment.single(
                        workers=workers, ingest_epoch=epoch
                    ),
                ),
                stream,
            )
            try:
                assert (
                    compare_fingerprints(
                        reference_print, fingerprint(framework, stream)
                    )
                    == []
                ), f"workers={workers} ingest_epoch={epoch} diverged"
            finally:
                framework.close()


class TestHarness:
    def test_run_concurrent_experiment_clean(self, boutique_workload):
        result = run_concurrent_experiment(
            boutique_workload,
            num_traces=120,
            warmup_traces=50,
            worker_counts=(1, STRESS_WORKERS),
            num_shards=2,
        )
        assert result.identical, result.violations
        # Epoch application is worker-count independent by design.
        assert len(set(result.epochs_applied.values())) == 1

    def test_run_snapshot_experiment_clean(self, boutique_workload):
        violations = run_snapshot_experiment(
            boutique_workload, num_traces=120, warmup_traces=50, workers=2
        )
        assert violations == []


class TestMidRunReads:
    def test_queries_quiesce_partial_epochs(self, stream):
        parallel = MintFramework(
            auto_warmup_traces=WARMUP,
            deployment=Deployment.single(workers=STRESS_WORKERS, ingest_epoch=64),
        )
        twin = MintFramework(auto_warmup_traces=WARMUP)
        try:
            for now, trace in stream[:100]:
                parallel.process_trace(trace, now)
                twin.process_trace(trace, now)
            probe = stream[99][1].trace_id
            ours, theirs = parallel.query(probe), twin.query(probe)
            assert ours.status == theirs.status
            assert parallel.stored_trace_ids() == twin.stored_trace_ids()
        finally:
            parallel.close()
            twin.close()

    def test_pull_params_round_trip(self, stream):
        from repro.query.spec import QuerySpec

        parallel = MintFramework(
            auto_warmup_traces=WARMUP,
            deployment=Deployment.single(workers=2),
        )
        twin = MintFramework(auto_warmup_traces=WARMUP)
        try:
            for now, trace in stream[:120]:
                parallel.process_trace(trace, now)
                twin.process_trace(trace, now)
            probe = stream[110][1].trace_id
            ours = parallel.execute(QuerySpec.point(probe, pull_params=True)).one()
            theirs = twin.execute(QuerySpec.point(probe, pull_params=True)).one()
            assert ours.status == theirs.status
        finally:
            parallel.close()
            twin.close()


class TestSnapshots:
    def test_snapshot_is_immutable_and_versioned(self, stream):
        framework = drive(
            MintFramework(
                auto_warmup_traces=WARMUP, deployment=Deployment.single(workers=2)
            ),
            stream,
        )
        try:
            snapshot = framework.pattern_snapshot()
            assert snapshot.version >= 1
            assert len(snapshot) > 0
            with pytest.raises(TypeError):
                snapshot.span_patterns["boom"] = None  # type: ignore[index]
            some_id = snapshot.pattern_ids()[0]
            assert snapshot.get(some_id) is not None
            assert snapshot.get("missing") is None
        finally:
            framework.close()

    def test_empty_snapshot(self):
        snapshot = PatternPlaneSnapshot.empty()
        assert snapshot.version == 0
        assert len(snapshot) == 0
        assert snapshot.pattern_ids() == ()

    def test_sequential_deployment_has_no_snapshot(self):
        framework = MintFramework()
        assert framework.pattern_snapshot() is None
        framework.close()  # no-op, must not raise


class TestLanes:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_lane_error_propagates_with_traceback(self, mode):
        from repro.agent.config import MintConfig

        lane = make_lane(mode, 0, MintConfig())
        try:
            lane.post(("no_such_command",))
            lane.post(("barrier",))
            with pytest.raises(LaneError, match="no_such_command"):
                lane.collect()
        finally:
            lane.stop()

    def test_make_lane_rejects_unknown_mode(self):
        from repro.agent.config import MintConfig

        with pytest.raises(ValueError, match="unknown worker mode"):
            make_lane("fiber", 0, MintConfig())

    @pytest.mark.parametrize("kind", [ThreadLane, ProcessLane])
    def test_stop_is_idempotent(self, kind):
        from repro.agent.config import MintConfig

        lane = kind(0, MintConfig())
        lane.stop()
        lane.stop()

    def test_shutdown_and_close_idempotent(self, stream):
        framework = drive(
            MintFramework(
                auto_warmup_traces=WARMUP, deployment=Deployment.single(workers=2)
            ),
            stream[:40],
        )
        framework.close()
        framework.close()


class TestDeploymentDescriptor:
    def test_parallel_descriptor_validation(self):
        with pytest.raises(ValueError, match="workers must be >= 0"):
            Deployment(workers=-1)
        with pytest.raises(ValueError, match="worker_mode"):
            Deployment(workers=2, worker_mode="fiber")
        with pytest.raises(ValueError, match="ingest_epoch"):
            Deployment(workers=2, ingest_epoch=0)
        with pytest.raises(ValueError, match="elastic"):
            Deployment(num_shards=2, elastic=True, workers=2)

    def test_parallel_descriptor_describe(self):
        dep = Deployment.sharded(4, workers=2, worker_mode="process")
        assert dep.is_parallel
        assert "2w-process" in dep.describe()
        assert not Deployment.sharded(4).is_parallel

    def test_parallel_framework_name(self):
        framework = MintFramework(deployment=Deployment.single(workers=2))
        try:
            assert "2w-thread" in framework.name
        finally:
            framework.close()
