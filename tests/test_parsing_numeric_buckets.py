"""Unit tests for exponential-interval bucketing."""


import pytest

from repro.parsing.numeric_buckets import (
    NumericBucketer,
    parse_bucket_label,
    reconstruct_from_label,
)


class TestBucketer:
    def test_gamma_from_alpha(self):
        assert NumericBucketer(alpha=0.5).gamma == pytest.approx(3.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            NumericBucketer(alpha=0.0)
        with pytest.raises(ValueError):
            NumericBucketer(alpha=1.0)

    def test_unit_interval_is_bucket_zero(self):
        b = NumericBucketer(alpha=0.5)
        for value in (0.01, 0.5, 1.0):
            assert b.bucket_of(value).index == 0

    def test_value_within_its_bucket(self):
        b = NumericBucketer(alpha=0.5)
        for value in (1.5, 3.0, 10.0, 100.0, 12345.0):
            bucket = b.bucket_of(value)
            assert bucket.lower < value <= bucket.upper * (1 + 1e-9)

    def test_bucket_boundaries_gamma_powers(self):
        b = NumericBucketer(alpha=0.5)
        bucket = b.bucket_of(30.0)
        assert bucket.lower == pytest.approx(27.0)
        assert bucket.upper == pytest.approx(81.0)
        assert bucket.label == "(27, 81]"

    def test_zero_gets_degenerate_bucket(self):
        bucket = NumericBucketer().bucket_of(0.0)
        assert (bucket.lower, bucket.upper) == (0.0, 0.0)

    def test_negative_values_mirrored(self):
        b = NumericBucketer(alpha=0.5)
        bucket = b.bucket_of(-30.0)
        assert bucket.negative
        assert bucket.label.startswith("-(")
        assert b.reconstruct(bucket, b.parameter_of(-30.0)) == pytest.approx(-30.0)

    def test_parameter_plus_lower_reconstructs(self):
        b = NumericBucketer(alpha=0.5)
        for value in (0.25, 1.0, 2.0, 29.9, 81.0, 5769.0):
            bucket = b.bucket_of(value)
            assert b.reconstruct(bucket, b.parameter_of(value)) == pytest.approx(value)

    def test_midpoint_relative_error_bounded_by_alpha(self):
        for alpha in (0.2, 0.5, 0.8):
            b = NumericBucketer(alpha=alpha)
            for value in (1.7, 13.0, 999.0):
                bucket = b.bucket_of(value)
                rel_error = abs(bucket.midpoint - value) / value
                assert rel_error <= alpha + 1e-9

    def test_bucket_by_index_round_trip(self):
        b = NumericBucketer(alpha=0.5)
        for value in (0.3, 4.0, 250.0):
            bucket = b.bucket_of(value)
            rebuilt = b.bucket_by_index(bucket.index, bucket.negative)
            assert rebuilt == bucket

    def test_index_of_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NumericBucketer().index_of(0.0)


class TestLabelCodec:
    def test_parse_label(self):
        assert parse_bucket_label("(27, 81]") == (False, 27.0, 81.0)

    def test_parse_negative_label(self):
        assert parse_bucket_label("-(27, 81]") == (True, 27.0, 81.0)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bucket_label("27..81")
        with pytest.raises(ValueError):
            parse_bucket_label("(2781]")

    def test_reconstruct_from_label(self):
        assert reconstruct_from_label("(27, 81]", 3.0) == pytest.approx(30.0)
        assert reconstruct_from_label("-(27, 81]", 3.0) == pytest.approx(-30.0)
