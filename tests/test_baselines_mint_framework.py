"""Unit tests for the Mint framework adapter (agents + backend wired)."""

from repro.framework import MintFramework
from repro.baselines.otel import OTFull
from tests.conftest import make_chain_trace


def small_mint(**kwargs) -> MintFramework:
    kwargs.setdefault("auto_warmup_traces", 5)
    return MintFramework(**kwargs)


class TestIngestAndWarmup:
    def test_warmup_queue_drains_automatically(self):
        mint = small_mint()
        for i in range(10):
            mint.process_trace(make_chain_trace(depth=2, trace_id=f"{i:032x}"), float(i))
        # Auto-warmup after 5 traces; all 10 processed online afterwards.
        assert mint._warmed_up
        assert len(mint._collectors) >= 1

    def test_finalize_drains_pending_warmup(self):
        mint = MintFramework(auto_warmup_traces=1000)
        mint.process_trace(make_chain_trace(depth=2, trace_id="1" * 32), 0.0)
        assert not mint._warmed_up
        mint.finalize(1.0)
        assert mint._warmed_up
        assert mint.query("1" * 32).is_hit

    def test_explicit_warmup(self):
        mint = MintFramework()
        warmup = [make_chain_trace(depth=2, trace_id=f"{i:032x}") for i in range(5)]
        mint.warm_up(warmup)
        assert mint._warmed_up

    def test_agents_created_per_node(self):
        mint = small_mint()
        for i in range(6):
            mint.process_trace(
                make_chain_trace(depth=4, trace_id=f"{i:032x}", nodes=("n0", "n1", "n2")),
                float(i),
            )
        assert set(mint._collectors) == {"n0", "n1", "n2"}


class TestAccounting:
    def test_network_below_full(self):
        mint = small_mint()
        full = OTFull()
        traces = [make_chain_trace(depth=3, trace_id=f"{i:032x}") for i in range(100)]
        for i, trace in enumerate(traces):
            mint.process_trace(trace, float(i))
            full.process_trace(trace, float(i))
        mint.finalize(100.0)
        assert 0 < mint.network_bytes < full.network_bytes

    def test_storage_matches_backend(self):
        mint = small_mint()
        for i in range(20):
            mint.process_trace(make_chain_trace(depth=2, trace_id=f"{i:032x}"), float(i))
        mint.finalize(20.0)
        assert mint.storage_bytes == mint.backend.storage_bytes()


class TestQueries:
    def test_every_trace_answerable(self):
        mint = small_mint()
        traces = [make_chain_trace(depth=3, trace_id=f"{i:032x}") for i in range(50)]
        for i, trace in enumerate(traces):
            mint.process_trace(trace, float(i))
        mint.finalize(50.0)
        for trace in traces:
            assert mint.query(trace.trace_id).is_hit, trace.trace_id

    def test_query_full_returns_payloads(self):
        mint = small_mint()
        traces = [make_chain_trace(depth=2, trace_id=f"{i:032x}") for i in range(30)]
        for i, trace in enumerate(traces):
            mint.process_trace(trace, float(i))
        mint.finalize(30.0)
        statuses = {mint.query_full(t.trace_id).status for t in traces}
        assert "partial" in statuses or "exact" in statuses
        for trace in traces:
            result = mint.query_full(trace.trace_id)
            if result.status == "exact":
                assert result.trace is not None
            elif result.status == "partial":
                assert result.approximate is not None

    def test_extra_tail_sampler_captures_tagged(self):
        from repro.agent.samplers import TailSampler
        from repro.model.trace import Trace
        from tests.conftest import make_span

        mint = MintFramework(
            auto_warmup_traces=1,
            extra_sampler_factories=[lambda: TailSampler()],
        )
        tagged = Trace(
            trace_id="b" * 32,
            spans=[
                make_span(trace_id="b" * 32, attributes={"is_abnormal": "true"})
            ],
        )
        mint.process_trace(make_chain_trace(depth=2, trace_id="1" * 32), 0.0)
        mint.process_trace(tagged, 1.0)
        mint.finalize(2.0)
        assert mint.query("b" * 32).is_exact
