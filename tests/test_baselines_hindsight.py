"""Unit tests for the Hindsight retroactive sampler."""

from repro.baselines.hindsight import BREADCRUMB_BYTES, Hindsight
from repro.model.encoding import encoded_size
from repro.model.trace import Trace
from tests.conftest import make_chain_trace, make_span


def abnormal_trace(trace_id: str) -> Trace:
    span = make_span(trace_id=trace_id, attributes={"is_abnormal": "true"})
    return Trace(trace_id=trace_id, spans=[span])


class TestHindsight:
    def test_breadcrumbs_charged_for_every_trace(self):
        fw = Hindsight()
        trace = make_chain_trace(depth=4, nodes=("n0", "n1"))
        fw.process_trace(trace, 0.0)
        assert fw.network_bytes == BREADCRUMB_BYTES * len(trace.sub_traces())
        assert fw.storage_bytes == 0

    def test_triggered_trace_fully_retrieved(self):
        fw = Hindsight()
        trace = abnormal_trace("1" * 32)
        fw.process_trace(trace, 0.0)
        per_span = sum(encoded_size(s) for s in trace.spans)
        assert fw.storage_bytes == per_span
        assert fw.network_bytes == BREADCRUMB_BYTES + per_span
        assert fw.query("1" * 32).is_exact

    def test_untriggered_trace_not_stored(self):
        fw = Hindsight()
        trace = make_chain_trace(depth=2, trace_id="2" * 32)
        fw.process_trace(trace, 0.0)
        assert fw.query("2" * 32).status == "miss"

    def test_buffer_eviction_loses_old_data(self):
        # A tiny agent buffer: older traces get evicted before triggering.
        fw = Hindsight(buffer_bytes_per_node=1500)
        old = make_chain_trace(depth=3, trace_id="3" * 32)
        fw.process_trace(old, 0.0)
        for i in range(10):
            fw.process_trace(make_chain_trace(depth=3, trace_id=f"{i:032x}"), 0.0)
        # Retroactively triggering the evicted trace retrieves nothing.
        fw._retrieve(old, 0.0)
        assert fw.query("3" * 32).status == "miss"

    def test_network_between_head_and_tail(self):
        """Fig. 11's shape: Hindsight > OT-Head but far below OT-Tail."""
        from repro.baselines.otel import OTFull

        full = OTFull()
        hindsight = Hindsight()
        for i in range(50):
            trace = make_chain_trace(depth=3, trace_id=f"{i:032x}")
            full.process_trace(trace, 0.0)
            hindsight.process_trace(trace, 0.0)
        assert 0 < hindsight.network_bytes < full.network_bytes * 0.2
