"""Unit tests for leader clustering of attribute values."""

import pytest

from repro.parsing.clustering import cluster_sizes, cluster_strings


def sql(i: int) -> str:
    return (
        f"INSERT INTO patch_inventory (city_id, rb_id, customer_id, note) "
        f"VALUES ({i}, {i + 1}, {i + 2}, 'auto')"
    )


class TestClusterStrings:
    def test_similar_values_cluster_together(self):
        clusters = cluster_strings([sql(i) for i in range(20)], threshold=0.8)
        assert len(clusters) == 1
        assert cluster_sizes(clusters) == [20]

    def test_dissimilar_values_split(self):
        values = [sql(1), "GET /health HTTP/1.1 response status ok cached"]
        clusters = cluster_strings(values, threshold=0.8)
        assert len(clusters) == 2

    def test_every_value_is_member_of_exactly_one_cluster(self):
        values = [sql(i) for i in range(5)] + ["something else entirely here"] * 3
        clusters = cluster_strings(values, threshold=0.8)
        assert sum(cluster_sizes(clusters)) == len(values)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cluster_strings(["a"], threshold=1.5)

    def test_max_clusters_cap(self):
        values = [f"completely unique value number {i} " + "x" * i for i in range(10)]
        clusters = cluster_strings(values, threshold=0.99, max_clusters=3)
        assert len(clusters) <= 3
        assert sum(cluster_sizes(clusters)) == len(values)

    def test_empty_input(self):
        assert cluster_strings([], threshold=0.8) == []

    def test_threshold_zero_single_cluster(self):
        clusters = cluster_strings(["abc def", "xyz 123", "q"], threshold=0.0)
        assert len(clusters) == 1

    def test_order_deterministic(self):
        values = [sql(i) for i in range(6)]
        a = cluster_strings(values, threshold=0.8)
        b = cluster_strings(values, threshold=0.8)
        assert [c.members for c in a] == [c.members for c in b]
