"""Unit tests for the pattern reconstruct interface (paper Section 4.1)."""

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.backend.backend import MintBackend
from repro.model.trace import SubTrace
from tests.conftest import make_span


def subtrace(trace_id: str, name: str = "GET /items") -> SubTrace:
    return SubTrace(
        trace_id=trace_id,
        node="node-0",
        spans=[make_span(trace_id=trace_id, name=name)],
    )


class TestReconstructInterface:
    def test_libraries_reset(self):
        agent = MintAgent(node="node-0")
        agent.ingest(subtrace("1" * 32))
        assert len(agent.span_parser.library) > 0
        agent.reconstruct_patterns()
        assert len(agent.span_parser.library) == 0
        assert len(agent.trace_parser.library) == 0
        assert not agent.is_warmed_up

    def test_mounted_metadata_flushed_not_lost(self):
        flushed = []
        agent = MintAgent(node="node-0", on_bloom_flush=flushed.append)
        agent.ingest(subtrace("1" * 32))
        agent.reconstruct_patterns()
        assert flushed, "active Bloom filters must be reported before reset"

    def test_agent_keeps_working_after_rebuild(self):
        agent = MintAgent(node="node-0")
        agent.ingest(subtrace("1" * 32, name="old-operation"))
        agent.reconstruct_patterns()
        result = agent.ingest(subtrace("2" * 32, name="new-operation"))
        assert result.topo_pattern_id in agent.trace_parser.library

    def test_end_to_end_queries_survive_rebuild(self):
        backend = MintBackend()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, backend.receive)
        backend.register_collector(collector)
        collector.process(subtrace("1" * 32), now=0.0)
        collector.flush(now=10.0)
        # System change: rebuild, then new-shape traffic.
        agent.reconstruct_patterns()
        collector.process(subtrace("2" * 32, name="v2-operation"), now=20.0)
        collector.flush(now=30.0)
        # Both the pre- and post-rebuild traces remain queryable.
        assert backend.query("1" * 32).is_hit
        assert backend.query("2" * 32).is_hit

    def test_edge_case_sampler_follows_new_library(self):
        agent = MintAgent(node="node-0")
        agent.ingest(subtrace("1" * 32))
        agent.reconstruct_patterns()
        assert agent.edge_case_sampler.library is agent.trace_parser.library
