"""Unit tests for the Robust Random Cut Forest."""

import pytest

from repro.baselines.rrcf import RandomCutTree, RobustRandomCutForest


class TestRandomCutTree:
    def test_insert_and_count(self):
        tree = RandomCutTree(seed=1)
        for i in range(10):
            tree.insert(i, [float(i), float(i % 3)])
        assert len(tree) == 10
        assert 5 in tree

    def test_duplicate_index_rejected(self):
        tree = RandomCutTree(seed=1)
        tree.insert(0, [1.0])
        with pytest.raises(KeyError):
            tree.insert(0, [2.0])

    def test_delete_restores_structure(self):
        tree = RandomCutTree(seed=2)
        for i in range(8):
            tree.insert(i, [float(i), 0.0])
        tree.delete(3)
        assert len(tree) == 7
        assert 3 not in tree
        with pytest.raises(KeyError):
            tree.delete(3)

    def test_delete_to_empty(self):
        tree = RandomCutTree(seed=3)
        tree.insert(0, [1.0, 2.0])
        tree.delete(0)
        assert len(tree) == 0

    def test_duplicate_points_supported(self):
        tree = RandomCutTree(seed=4)
        for i in range(5):
            tree.insert(i, [1.0, 1.0])
        assert len(tree) == 5
        assert tree.codisp(2) >= 0.0

    def test_codisp_unknown_index(self):
        tree = RandomCutTree(seed=5)
        tree.insert(0, [0.0])
        with pytest.raises(KeyError):
            tree.codisp(42)

    def test_outlier_has_higher_codisp(self):
        tree = RandomCutTree(seed=6)
        for i in range(60):
            tree.insert(i, [float(i % 5), float(i % 7)])
        tree.insert(999, [500.0, 500.0])
        outlier_score = tree.codisp(999)
        normal_scores = [tree.codisp(i) for i in range(20)]
        assert outlier_score > sum(normal_scores) / len(normal_scores)


class TestForest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RobustRandomCutForest(num_trees=0)
        with pytest.raises(ValueError):
            RobustRandomCutForest(window_size=1)

    def test_window_bounded(self):
        forest = RobustRandomCutForest(num_trees=3, window_size=16, seed=1)
        for i in range(60):
            forest.score([float(i % 4), 1.0])
        assert len(forest) == 16

    def test_outlier_scores_higher_than_inliers(self):
        forest = RobustRandomCutForest(num_trees=10, window_size=128, seed=2)
        inlier_scores = [
            forest.score([float(i % 5), float(i % 3), 1.0]) for i in range(100)
        ]
        outlier_score = forest.score([100.0, -50.0, 99.0])
        baseline = sorted(inlier_scores)[len(inlier_scores) // 2]
        assert outlier_score > baseline
