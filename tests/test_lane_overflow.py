"""In-epoch params-buffer overflow detection on ingest lanes (PR 7 bound).

A sequential run uploads a sampled trace's params on the backend's
mid-epoch ``mark_sampled`` round-trip, freeing buffer space; a lane
defers every mark to the apply barrier.  With a buffer too small for
one epoch's parameters, the lane evicts records the sequential run
would have kept — a silent bit-identity break.  The plane now detects
the eviction delta at the barrier and raises a ``LaneError`` naming
the lane, the epoch and the buffered bytes, *before* replaying the
epoch's reports, instead of diverging quietly.
"""

from __future__ import annotations

import pytest

from repro.agent.config import MintConfig
from repro.concurrent.lanes import LaneError
from repro.framework import MintFramework
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique

NUM_TRACES = 96
WARMUP = 24
#: Big enough to survive warm-up uploads, far too small for an epoch's
#: buffered parameters once sampling marks are deferred to the barrier.
TINY_BUFFER = 2048


@pytest.fixture(scope="module")
def stream(boutique_workload):
    stream, _ = generate_stream(
        boutique_workload, NUM_TRACES, abnormal_rate=0.02, seed=17
    )
    return stream


def drive(framework, stream):
    last_now = 0.0
    try:
        for now, trace in stream:
            framework.process_trace(trace, now)
            last_now = now
        framework.finalize(last_now)
    finally:
        framework.close()
    return framework


class TestLaneOverflowDetection:
    def test_overflow_within_one_epoch_raises_before_replay(self, stream):
        framework = MintFramework(
            config=MintConfig(params_buffer_bytes=TINY_BUFFER),
            auto_warmup_traces=WARMUP,
            deployment=Deployment.single(workers=2, ingest_epoch=64),
        )
        with pytest.raises(LaneError) as excinfo:
            drive(framework, stream)
        message = str(excinfo.value)
        # Deterministic, actionable naming: the lane, the epoch, the
        # buffered bytes and both remedies.
        assert "params buffer overflowed within ingest epoch" in message
        assert "lane " in message and "node " in message
        assert "bytes still buffered" in message
        assert "params_buffer_bytes" in message
        assert "ingest_epoch" in message

    def test_detection_is_deterministic_across_worker_counts(self, stream):
        for workers in (2, 4):
            framework = MintFramework(
                config=MintConfig(params_buffer_bytes=TINY_BUFFER),
                auto_warmup_traces=WARMUP,
                deployment=Deployment.single(workers=workers, ingest_epoch=64),
            )
            with pytest.raises(LaneError):
                drive(framework, stream)

    def test_sequential_run_with_the_same_tiny_buffer_is_legal(self, stream):
        # Eviction in a sequential run is ordinary behaviour (retroactive
        # pulls degrade gracefully) — only lanes must refuse.
        framework = MintFramework(
            config=MintConfig(params_buffer_bytes=TINY_BUFFER),
            auto_warmup_traces=WARMUP,
        )
        drive(framework, stream)
        assert framework.storage_bytes > 0

    def test_roomy_buffer_keeps_lanes_bit_identical(self, stream):
        # The detector must not fire when the buffer fits an epoch.
        reference = drive(MintFramework(auto_warmup_traces=WARMUP), stream)
        parallel = drive(
            MintFramework(
                auto_warmup_traces=WARMUP,
                deployment=Deployment.single(workers=2, ingest_epoch=32),
            ),
            stream,
        )
        assert parallel.storage_bytes == reference.storage_bytes
        assert parallel.network_bytes == reference.network_bytes
