"""Edge cases of the simulation instruments: Meter, LatencyStats,
OverheadLedger and SimClock.

These are the rulers every overhead figure is drawn with, so their
corner behaviour (sparse minutes, gapped series, backwards time) is
pinned explicitly rather than assumed.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.meters import LatencyStats, Meter, OverheadLedger


class TestMeterSeries:
    def test_per_minute_series_with_sparse_gaps(self):
        meter = Meter()
        meter.record(100, now=30.0)     # minute 0
        meter.record(50, now=59.9)      # minute 0 boundary, still bucket 0
        meter.record(200, now=60.0)     # minute 1 exactly
        meter.record(10, now=600.0)     # minute 10, nine empty minutes between
        assert meter.per_minute_series() == [(0, 150), (1, 200), (10, 10)]

    def test_empty_minutes_are_absent_not_zero(self):
        meter = Meter()
        meter.record(7, now=300.0)
        series = meter.per_minute_series()
        assert series == [(5, 7)]
        assert 4 not in dict(series) and 6 not in dict(series)

    def test_mb_per_minute_single_bucket(self):
        meter = Meter()
        meter.record(2 * 1024 * 1024, now=45.0)
        # One active minute: the average is just the total.
        assert meter.mb_per_minute() == pytest.approx(2.0)

    def test_mb_per_minute_spans_gaps_not_just_active_minutes(self):
        meter = Meter()
        meter.record(1024 * 1024, now=0.0)       # minute 0
        meter.record(1024 * 1024, now=540.0)     # minute 9
        # The window is minutes 0..9 inclusive — idle minutes dilute the
        # average; 2 MB over 10 minutes, not over 2.
        assert meter.mb_per_minute() == pytest.approx(0.2)

    def test_mb_per_minute_empty_meter_is_zero(self):
        assert Meter().mb_per_minute() == 0.0

    def test_negative_bytes_rejected_and_state_unchanged(self):
        meter = Meter()
        meter.record(10, now=0.0)
        with pytest.raises(ValueError):
            meter.record(-1, now=0.0)
        assert meter.total_bytes == 10
        assert meter.event_count == 1

    def test_reset_clears_everything(self):
        meter = Meter()
        meter.record(10, now=90.0)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.event_count == 0
        assert meter.per_minute_series() == []


class TestLatencyStats:
    def test_negative_sample_rejected(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record(-0.001)

    def test_percentiles_on_empty_and_singleton(self):
        stats = LatencyStats()
        assert stats.p50 == 0.0 and stats.p99 == 0.0 and stats.mean == 0.0
        stats.record(0.25)
        assert stats.p50 == 0.25 and stats.p99 == 0.25 and stats.mean == 0.25

    def test_percentile_bounds_validation(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.percentile(-1.0)
        with pytest.raises(ValueError):
            stats.percentile(100.5)

    def test_merge_folds_samples(self):
        left, right = LatencyStats(), LatencyStats()
        left.record(0.1)
        right.record(0.3)
        right.record(0.5)
        left.merge(right)
        assert len(left) == 3
        assert left.p50 == 0.3


class TestSimClock:
    def test_advance_to_is_a_noop_on_the_same_timestamp(self):
        clock = SimClock(start=10.0)
        assert clock.advance_to(10.0) == 10.0
        assert clock.now == 10.0

    def test_advance_to_never_moves_backwards(self):
        clock = SimClock(start=10.0)
        assert clock.advance_to(5.0) == 10.0
        assert clock.now == 10.0

    def test_advance_rejects_negative_deltas(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.now == 0.0

    def test_advance_and_advance_to_compose(self):
        clock = SimClock()
        clock.advance(30.0)
        clock.advance_to(20.0)   # backwards jump ignored
        clock.advance_to(45.0)
        assert clock.now == 45.0


class TestOverheadLedger:
    def test_totals_match_the_underlying_meters(self):
        ledger = OverheadLedger()
        ledger.network.record(100, now=0.0)
        ledger.network.record(50, now=61.0)
        ledger.storage.record(30, now=0.0)
        snapshot = ledger.as_dict()
        assert snapshot == {"network_bytes": 150, "storage_bytes": 30}
        assert snapshot["network_bytes"] == ledger.network.total_bytes
        assert snapshot["storage_bytes"] == ledger.storage.total_bytes
        # The dict is a snapshot, not a live view.
        ledger.network.record(1, now=0.0)
        assert snapshot["network_bytes"] == 150

    def test_meters_are_independent_instances(self):
        first, second = OverheadLedger(), OverheadLedger()
        first.network.record(10, now=0.0)
        assert second.network.total_bytes == 0
        assert first.network is not first.storage
