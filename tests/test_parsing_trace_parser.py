"""Unit tests for the trace parser (topology patterns)."""

import pytest

from repro.model.span import SpanKind
from repro.model.trace import SubTrace
from repro.parsing.span_parser import SpanParser
from repro.parsing.trace_parser import TopoPattern, TraceParser, extract_topo_pattern
from tests.conftest import make_chain_trace, make_span


def make_subtrace(trace_id: str, shape: str = "chain") -> SubTrace:
    if shape == "chain":
        trace = make_chain_trace(depth=3, trace_id=trace_id)
        return trace.sub_traces()[0]
    root = make_span(trace_id=trace_id, span_id="0" * 16)
    kids = [
        make_span(
            trace_id=trace_id,
            span_id=f"{i}" * 16,
            parent_id=root.span_id,
            name=f"child-{i}",
            service=f"kid-{i}",
            start_time=float(i),
        )
        for i in (1, 2)
    ]
    return SubTrace(trace_id=trace_id, node="node-0", spans=[root] + kids)


class TestTraceParser:
    def test_same_shape_shares_pattern(self):
        parser = TraceParser(SpanParser())
        a = parser.parse_sub_trace(make_subtrace("1" * 32))
        b = parser.parse_sub_trace(make_subtrace("2" * 32))
        assert a.topo_pattern_id == b.topo_pattern_id
        assert len(parser.library) == 1

    def test_different_shapes_split(self):
        parser = TraceParser(SpanParser())
        a = parser.parse_sub_trace(make_subtrace("1" * 32, "chain"))
        b = parser.parse_sub_trace(make_subtrace("2" * 32, "fan"))
        assert a.topo_pattern_id != b.topo_pattern_id
        assert len(parser.library) == 2

    def test_empty_subtrace_rejected(self):
        parser = TraceParser(SpanParser())
        with pytest.raises(ValueError):
            parser.parse_sub_trace(SubTrace(trace_id="9" * 32, node="n", spans=[]))

    def test_match_counts_accumulate(self):
        parser = TraceParser(SpanParser())
        for i in range(5):
            parser.parse_sub_trace(make_subtrace(f"{i:032x}"))
        (pattern,) = parser.library.patterns()
        assert parser.library.match_count(pattern.pattern_id) == 5
        assert parser.library.total_matches() == 5

    def test_sibling_order_does_not_split_patterns(self):
        parser = TraceParser(SpanParser())
        # Same fan-out, children arriving in different start order.
        sub_a = make_subtrace("1" * 32, "fan")
        sub_b = make_subtrace("2" * 32, "fan")
        sub_b.spans[1], sub_b.spans[2] = sub_b.spans[2], sub_b.spans[1]
        a = parser.parse_sub_trace(sub_a)
        b = parser.parse_sub_trace(sub_b)
        assert a.topo_pattern_id == b.topo_pattern_id


class TestTopoPattern:
    def test_span_pattern_ids_preorder(self):
        parser = TraceParser(SpanParser())
        parsed = parser.parse_sub_trace(make_subtrace("3" * 32, "fan"))
        pattern = parser.library.get(parsed.topo_pattern_id)
        assert pattern.span_count == 3
        assert len(pattern.span_pattern_ids) == 3

    def test_serialisation_round_trip(self):
        parser = TraceParser(SpanParser())
        parsed = parser.parse_sub_trace(make_subtrace("4" * 32, "fan"))
        pattern = parser.library.get(parsed.topo_pattern_id)
        rebuilt = TopoPattern.from_dict(pattern.to_dict())
        assert rebuilt == pattern
        assert rebuilt.pattern_id == pattern.pattern_id

    def test_entry_and_exit_ops(self):
        trace_id = "5" * 32
        root = make_span(trace_id=trace_id, span_id="0" * 16, service="gw", name="GET /")
        client = make_span(
            trace_id=trace_id,
            span_id="1" * 16,
            parent_id=root.span_id,
            service="gw",
            name="call-downstream",
            kind=SpanKind.CLIENT,
            attributes={"peer.service": "backend"},
        )
        sub = SubTrace(trace_id=trace_id, node="node-0", spans=[root, client])
        parsed = {s.span_id: SpanParser().parse(s) for s in sub}
        pattern = extract_topo_pattern(sub, parsed)
        assert ("gw", "GET /") in pattern.entry_ops
        assert ("backend", "call-downstream") in pattern.exit_ops

    def test_params_size_positive(self):
        parser = TraceParser(SpanParser())
        parsed = parser.parse_sub_trace(make_subtrace("6" * 32))
        assert parsed.params_size_bytes() > 0
