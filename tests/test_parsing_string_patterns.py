"""Unit tests for string templates and template extraction."""

import pytest

from repro.parsing.clustering import cluster_strings
from repro.parsing.string_patterns import (
    WILDCARD,
    StringTemplate,
    extract_template,
    template_from_text,
)
from repro.parsing.tokenizer import tokenize


def template_of(values: list[str], threshold: float = 0.5) -> StringTemplate:
    (cluster,) = cluster_strings(values, threshold=threshold)
    return extract_template(cluster)


class TestStringTemplate:
    def test_literal_template_matches_only_itself(self):
        t = StringTemplate(tokens=tuple(tokenize("select 1")))
        assert t.matches("select 1")
        assert not t.matches("select 2")

    def test_wildcard_matches_and_extracts(self):
        t = StringTemplate(tokens=("select", " ", WILDCARD))
        assert t.matches("select anything at all")
        assert t.extract("select foo") == ["foo"]

    def test_reconstruct_inverts_extract(self):
        t = StringTemplate(tokens=("a", "/", WILDCARD, "/", "c"))
        value = "a/middle-part/c"
        assert t.reconstruct(t.extract(value)) == value

    def test_reconstruct_wrong_arity_rejected(self):
        t = StringTemplate(tokens=("a", WILDCARD))
        with pytest.raises(ValueError):
            t.reconstruct(["x", "y"])

    def test_consecutive_wildcards_collapse(self):
        t = StringTemplate(tokens=(WILDCARD, WILDCARD, "x"))
        assert t.wildcard_count == 1

    def test_specificity_counts_literals(self):
        t = StringTemplate(tokens=("a", " ", "b", WILDCARD))
        assert t.literal_token_count == 3
        assert t.wildcard_count == 1

    def test_extract_non_matching_returns_none(self):
        t = StringTemplate(tokens=("fixed",))
        assert t.extract("other") is None


class TestExtractTemplate:
    def test_single_member_is_literal(self):
        t = template_of(["only one value here"])
        assert t.wildcard_count == 0
        assert t.matches("only one value here")

    def test_variable_position_becomes_wildcard(self):
        values = [f"select name from users where id = {i}" for i in (1, 22, 333)]
        t = template_of(values)
        assert t.wildcard_count >= 1
        for value in values:
            assert t.matches(value)
            assert t.reconstruct(t.extract(value)) == value

    def test_template_covers_all_members(self):
        values = [
            "INSERT INTO t (a, b) VALUES (1, 2)",
            "INSERT INTO t (a, b) VALUES (31, 42)",
            "INSERT INTO t (a, b) VALUES (5, 6)",
        ]
        t = template_of(values)
        for value in values:
            assert t.matches(value)

    def test_totally_disjoint_still_covers_members(self):
        values = ["aaa bbb ccc", "xxx yyy zzz"]
        t = template_of(values, threshold=0.0)
        for value in values:
            assert t.matches(value)


class TestTemplateFromText:
    def test_round_trip_simple(self):
        t = StringTemplate(tokens=("select", " ", WILDCARD))
        assert template_from_text(t.text).tokens == t.tokens

    def test_round_trip_embedded_wildcard(self):
        # Wildcard abutting a word with no delimiter.
        t = StringTemplate(tokens=("exec", WILDCARD))
        rebuilt = template_from_text(t.text)
        assert rebuilt.wildcard_count == 1
        assert rebuilt.matches("exec42")

    def test_round_trip_preserves_matching(self):
        values = [f"worker thread pool exec-{i} started ok" for i in (1, 2, 9)]
        t = template_of(values)
        rebuilt = template_from_text(t.text)
        for value in values:
            assert rebuilt.matches(value)
            assert rebuilt.reconstruct(rebuilt.extract(value)) == value
