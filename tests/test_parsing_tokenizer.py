"""Unit tests for string tokenisation."""

from repro.parsing.tokenizer import detokenize, tokenize, word_tokens


class TestTokenize:
    def test_simple_sql(self):
        tokens = tokenize("select * from A")
        assert "select" in tokens
        assert "from" in tokens
        assert "A" in tokens

    def test_round_trip_simple(self):
        text = "select * from A"
        assert detokenize(tokenize(text)) == text

    def test_delimiters_kept_as_tokens(self):
        tokens = tokenize("a/b=c")
        assert tokens == ["a", "/", "b", "=", "c"]

    def test_compound_identifiers_split(self):
        # Underscore and dash split so common stems count towards LCS.
        assert "patch" in tokenize("patch_inventory")
        assert "scheduling" in tokenize("scheduling-1")

    def test_wildcard_survives(self):
        assert tokenize("select * from <*>")[-1] == "<*>"

    def test_whitespace_normalised(self):
        assert tokenize("a   b") == ["a", " ", "b"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestWordTokens:
    def test_delimiters_excluded(self):
        words = word_tokens(tokenize("a/b = c"))
        assert words == ["a", "b", "c"]

    def test_star_is_a_word(self):
        # '*' is deliberately not a delimiter (wildcard round-tripping).
        assert "*" in word_tokens(tokenize("select * from t"))
