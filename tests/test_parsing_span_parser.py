"""Unit tests for the span parser (offline + online stages)."""

import pytest

from repro.model.span import SpanStatus
from repro.parsing.span_parser import (
    DURATION_KEY,
    NUMERIC_MARKER,
    SpanParser,
    SpanPattern,
    approximate_span_view,
    reconstruct_exact_span,
)
from tests.conftest import make_span


def sample_span(i: int, **kwargs):
    kwargs.setdefault("duration", 10.0 + i)
    return make_span(
        span_id=f"{i:016x}",
        trace_id=f"{i:032x}",
        attributes={
            "sql": (
                f"SELECT id, name, price, stock, region FROM products "
                f"WHERE id = '{i}' ORDER BY updated_at DESC LIMIT 1"
            ),
            "rows": i % 7 + 1,
        },
        **kwargs,
    )


class TestSpanParser:
    def test_same_shape_spans_share_pattern(self):
        parser = SpanParser()
        parser.warm_up([sample_span(i) for i in range(10)])
        a = parser.parse(sample_span(100))
        b = parser.parse(sample_span(101))
        assert a.pattern_id == b.pattern_id

    def test_numeric_buckets_not_in_identity(self):
        parser = SpanParser()
        parser.warm_up([sample_span(i) for i in range(6)])
        # Wildly different durations must not split the pattern.
        a = parser.parse(sample_span(101, duration=1.0))
        b = parser.parse(sample_span(102, duration=100000.0))
        assert a.pattern_id == b.pattern_id
        pattern = parser.library.get(a.pattern_id)
        assert (DURATION_KEY, "numeric", NUMERIC_MARKER) in pattern.attributes

    def test_status_is_part_of_identity(self):
        parser = SpanParser()
        ok = parser.parse(sample_span(1))
        err = parser.parse(sample_span(2, status=SpanStatus.ERROR))
        assert ok.pattern_id != err.pattern_id

    def test_reserved_key_rejected(self):
        parser = SpanParser()
        with pytest.raises(ValueError):
            parser.parse(make_span(attributes={"__x__": "v"}))

    def test_exact_reconstruction(self):
        parser = SpanParser()
        parser.warm_up([sample_span(i) for i in range(8)])
        span = sample_span(55)
        parsed = parser.parse(span)
        rebuilt = reconstruct_exact_span(parser.library.get(parsed.pattern_id), parsed)
        assert rebuilt.attributes == span.attributes
        assert rebuilt.duration == pytest.approx(span.duration)
        assert rebuilt.span_id == span.span_id
        assert rebuilt.kind is span.kind

    def test_match_counts(self):
        parser = SpanParser()
        parser.warm_up([sample_span(i) for i in range(6)])
        first = parser.parse(sample_span(201))
        parser.parse(sample_span(202))
        assert parser.library.match_count(first.pattern_id) >= 2

    def test_numeric_ranges_tracked(self):
        parser = SpanParser()
        parsed = parser.parse(sample_span(1, duration=30.0))
        parser.parse(sample_span(2, duration=29.0))
        ranges = parser.library.numeric_ranges(parsed.pattern_id)
        assert DURATION_KEY in ranges
        lower, upper = ranges[DURATION_KEY]
        assert lower < 30.0 <= upper

    def test_bool_attribute_treated_as_string(self):
        parser = SpanParser()
        parsed = parser.parse(make_span(attributes={"flag": True}))
        pattern = parser.library.get(parsed.pattern_id)
        kinds = {key: kind for key, kind, _ in pattern.attributes}
        assert kinds["flag"] == "string"


class TestCompactRecord:
    def test_round_trip(self):
        parser = SpanParser()
        span = sample_span(9)
        parsed = parser.parse(span)
        pattern = parser.library.get(parsed.pattern_id)
        record = parsed.compact_record(pattern)
        from repro.parsing.span_parser import ParsedSpan

        rebuilt = ParsedSpan.from_compact_record(span.trace_id, record, pattern)
        assert rebuilt.params == parsed.params
        assert rebuilt.span_id == parsed.span_id
        assert rebuilt.pattern_id == parsed.pattern_id

    def test_params_record_round_trip(self):
        parser = SpanParser()
        parsed = parser.parse(sample_span(3))
        from repro.parsing.span_parser import ParsedSpan

        rebuilt = ParsedSpan.from_record(parsed.params_record())
        assert rebuilt == parsed


class TestPatternSerialisation:
    def test_to_from_dict(self):
        parser = SpanParser()
        parsed = parser.parse(sample_span(4))
        pattern = parser.library.get(parsed.pattern_id)
        rebuilt = SpanPattern.from_dict(pattern.to_dict())
        assert rebuilt == pattern
        assert rebuilt.pattern_id == pattern.pattern_id

    def test_pattern_dict_includes_ranges(self):
        parser = SpanParser()
        parsed = parser.parse(sample_span(4))
        data = parser.library.pattern_dict(parsed.pattern_id)
        assert "numeric_ranges" in data
        assert DURATION_KEY in data["numeric_ranges"]


class TestApproximateView:
    def test_masks_strings_and_buckets_numerics(self):
        parser = SpanParser()
        parser.warm_up([sample_span(i) for i in range(6)])
        parsed = parser.parse(sample_span(77, duration=30.0))
        pattern = parser.library.get(parsed.pattern_id)
        ranges = parser.library.numeric_ranges(parsed.pattern_id)
        view = approximate_span_view(pattern, ranges)
        assert "<*>" in view["attributes"]["sql"]
        assert view["attributes"]["rows"].startswith("(")
        assert view["duration"].endswith("]")

    def test_without_ranges_shows_marker(self):
        parser = SpanParser()
        parsed = parser.parse(sample_span(1))
        pattern = parser.library.get(parsed.pattern_id)
        view = approximate_span_view(pattern, None)
        assert view["attributes"]["rows"] == NUMERIC_MARKER
