"""Unit tests for the OpenTelemetry-style baselines."""

import pytest

from repro.baselines.otel import OTFull, OTHead, OTTail, is_abnormal_trace
from repro.model.encoding import encoded_size
from repro.model.trace import Trace
from tests.conftest import make_chain_trace, make_span


def tagged_trace(trace_id: str) -> Trace:
    span = make_span(trace_id=trace_id, attributes={"is_abnormal": "true"})
    return Trace(trace_id=trace_id, spans=[span])


class TestOTFull:
    def test_charges_full_size_both_meters(self):
        fw = OTFull()
        trace = make_chain_trace(depth=3)
        fw.process_trace(trace, 0.0)
        size = encoded_size(trace)
        assert fw.network_bytes == size
        assert fw.storage_bytes == size

    def test_query_always_exact_for_seen(self):
        fw = OTFull()
        trace = make_chain_trace(depth=2)
        fw.process_trace(trace, 0.0)
        assert fw.query(trace.trace_id).is_exact
        assert fw.query("f" * 32).status == "miss"


class TestOTHead:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            OTHead(rate=1.2)

    def test_unsampled_costs_nothing(self):
        fw = OTHead(rate=0.0)
        fw.process_trace(make_chain_trace(depth=2), 0.0)
        assert fw.network_bytes == 0
        assert fw.storage_bytes == 0

    def test_sampled_fraction_near_rate(self):
        fw = OTHead(rate=0.1, seed=4)
        for i in range(2000):
            trace = make_chain_trace(depth=1, trace_id=f"{i:032x}")
            fw.process_trace(trace, 0.0)
        assert 120 < len(fw.stored_trace_ids()) < 280

    def test_decision_deterministic(self):
        fw = OTHead(rate=0.5, seed=9)
        assert fw.sampled("a" * 32) == fw.sampled("a" * 32)


class TestOTTail:
    def test_network_charged_for_everything(self):
        fw = OTTail()
        normal = make_chain_trace(depth=2, trace_id="1" * 32)
        abnormal = tagged_trace("2" * 32)
        fw.process_trace(normal, 0.0)
        fw.process_trace(abnormal, 0.0)
        assert fw.network_bytes == encoded_size(normal) + encoded_size(abnormal)

    def test_storage_only_for_matching(self):
        fw = OTTail()
        normal = make_chain_trace(depth=2, trace_id="1" * 32)
        abnormal = tagged_trace("2" * 32)
        fw.process_trace(normal, 0.0)
        fw.process_trace(abnormal, 0.0)
        assert fw.storage_bytes == encoded_size(abnormal)
        assert fw.query("2" * 32).is_exact
        assert fw.query("1" * 32).status == "miss"


class TestPredicate:
    def test_is_abnormal_trace(self):
        assert is_abnormal_trace(tagged_trace("3" * 32))
        assert not is_abnormal_trace(make_chain_trace(depth=1))
