"""The live analyst plane: standing queries, push delivery, storms.

The binding contracts: a subscription's accumulated hit set over a
stream is bit-identical to running its spec as a post-hoc batch query
— on every topology, under every chaos profile, across live reshards
and shard failover; push delivery is idempotent per (subscription,
trace id) whatever the wire duplicates; push traffic lands on the
``push`` meter and never moves the network meter; and the storm
schedule is a pure seeded function with no wall clock in it.
"""

from __future__ import annotations

import pytest

from repro.elastic import SHARD_CHAOS_PROFILES, fit_outages
from repro.framework import MintFramework
from repro.net.chaos import CHAOS_PROFILES, LOSSLESS, fit_partitions
from repro.net.transport import CHAOS_WIRE
from repro.query.spec import QuerySpec
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_onlineboutique
from repro.workloads.queries import QueryWorkload


def _stream(n=120, seed=7):
    return generate_stream(
        build_onlineboutique(), n, abnormal_rate=0.05,
        requests_per_minute=6000.0, seed=seed,
    )[0]


def _drive(framework, stream):
    last = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last = now
    framework.finalize(last)
    return last


def _batch_hits(framework, spec):
    """The post-hoc answer: trace id -> status for every hit."""
    return {
        result.trace_id: str(result.status)
        for result in framework.execute(spec)
        if result.is_hit
    }


@pytest.fixture(scope="module")
def stream():
    return _stream()


# ---------------------------------------------------------------------------
# Standing-query matching: every predicate kind, identical to batch
# ---------------------------------------------------------------------------
class TestStandingQueryMatching:
    def _specs(self, stream):
        """One spec per predicate kind plus a pure batch registration."""
        ids = [trace.trace_id for _, trace in stream]
        services = sorted({s for _, t in stream for s in t.services})
        operation = stream[0][1].spans[0].name
        midpoint = stream[len(stream) // 2][0]
        return {
            "error_only": QuerySpec.where(error_only=True),
            "service": QuerySpec.where(service=services[0]),
            "operation": QuerySpec.where(operation=operation),
            "time_range": QuerySpec.where(
                candidates=ids, time_range=(0.0, midpoint)
            ),
            "batch_ids": QuerySpec.batch(ids[::4]),
        }

    def test_each_predicate_kind_matches_its_batch_query(self, stream):
        framework = MintFramework(deployment=Deployment.single())
        specs = self._specs(stream)
        subs = {name: framework.subscribe(spec) for name, spec in specs.items()}
        _drive(framework, stream)
        for name, spec in specs.items():
            assert subs[name].hit_statuses == _batch_hits(framework, spec), name
        # The panel is not vacuous: the population-wide specs hit.
        assert subs["error_only"].hit_ids
        assert subs["service"].hit_ids
        assert subs["batch_ids"].hit_ids
        framework.close()

    def test_topo_pattern_subscription_matches_its_batch_query(self, stream):
        # The pattern id is discovered from a probe run of the same
        # deterministic stream — ids are content-derived, so the fresh
        # subscribed run sees the identical pattern universe.
        probe = MintFramework(deployment=Deployment.single())
        _drive(probe, stream)
        partial = next(
            r
            for r in probe.query_many(t.trace_id for _, t in stream)
            if r.approximate is not None
        )
        pattern_id = partial.approximate.segments[0].topo_pattern_id
        probe.close()

        spec = QuerySpec.where(
            candidates=[t.trace_id for _, t in stream],
            topo_pattern_id=pattern_id,
        )
        framework = MintFramework(deployment=Deployment.single())
        sub = framework.subscribe(spec)
        _drive(framework, stream)
        assert sub.hit_statuses == _batch_hits(framework, spec)
        assert partial.trace_id in sub.hit_ids
        framework.close()

    def test_subscribe_rejects_non_standing_specs(self):
        framework = MintFramework(deployment=Deployment.single())
        with pytest.raises(ValueError, match="pull_params"):
            framework.subscribe(QuerySpec.where(error_only=True, pull_params=True))
        with pytest.raises(ValueError, match="limit"):
            framework.subscribe(QuerySpec.where(error_only=True, limit=5))
        with pytest.raises(ValueError, match="predicates or target ids"):
            framework.subscribe(QuerySpec())
        framework.close()

    def test_unsubscribe_freezes_the_hit_set(self, stream):
        framework = MintFramework(deployment=Deployment.single())
        sub = framework.subscribe(QuerySpec.where(error_only=True))
        half = len(stream) // 2
        for now, trace in stream[:half]:
            framework.process_trace(trace, now)
        framework.unsubscribe(sub)
        frozen = sub.hit_ids
        _drive(framework, stream[half:])
        assert not sub.active
        assert sub.hit_ids == frozen
        assert framework.live_stats()["active"] == 0
        framework.close()


# ---------------------------------------------------------------------------
# Idempotent push under chaos
# ---------------------------------------------------------------------------
class TestPushUnderChaos:
    @pytest.mark.parametrize(
        "profile", ["lossless", "drop", "duplicate", "delay", "partition"]
    )
    def test_identity_and_idempotence_survive_the_wire(self, stream, profile):
        duration = stream[-1][0]
        chaos = LOSSLESS if profile == "lossless" else CHAOS_PROFILES[profile]
        wire = CHAOS_WIRE.with_chaos(fit_partitions(chaos, duration))
        framework = MintFramework(deployment=Deployment.single(network=wire))
        sub = framework.subscribe(QuerySpec.where(error_only=True))
        batch_sub = framework.subscribe(
            QuerySpec.batch([t.trace_id for _, t in stream][::5])
        )
        _drive(framework, stream)
        assert sub.hit_statuses == _batch_hits(framework, sub.spec)
        assert batch_sub.hit_statuses == _batch_hits(framework, batch_sub.spec)
        # Idempotence: whatever the wire duplicated, each trace was
        # accepted exactly once per subscription.
        for handle in (sub, batch_sub):
            delivered = [note.trace_id for note in handle.hits]
            assert len(delivered) == len(set(delivered))
        framework.close()

    def test_repeated_finalize_pushes_nothing_new(self, stream):
        framework = MintFramework(deployment=Deployment.single(network=CHAOS_WIRE))
        sub = framework.subscribe(QuerySpec.where(error_only=True))
        last = _drive(framework, stream)
        hits = sub.hit_ids
        delivered = framework.live_stats()["delivered"]
        framework.finalize(last)
        assert sub.hit_ids == hits
        assert framework.live_stats()["delivered"] == delivered
        framework.close()


# ---------------------------------------------------------------------------
# Elasticity: subscriptions survive reshard and failover
# ---------------------------------------------------------------------------
class TestSubscriptionsSurviveElasticity:
    def test_live_reshard_preserves_identity(self, stream):
        framework = MintFramework(deployment=Deployment.resharded(2, 4))
        sub = framework.subscribe(QuerySpec.where(error_only=True))
        half = len(stream) // 2
        for now, trace in stream[:half]:
            framework.process_trace(trace, now)
        framework.reshard()
        _drive(framework, stream[half:])
        assert framework.backend.num_shards == 4
        assert sub.hit_statuses == _batch_hits(framework, sub.spec)
        assert sub.hit_ids
        framework.close()

    def test_shard_failover_preserves_identity(self, stream):
        duration = stream[-1][0]
        chaos = fit_outages(SHARD_CHAOS_PROFILES["crash_restart"], duration)
        framework = MintFramework(
            deployment=Deployment.elastic_sharded(2, shard_chaos=chaos)
        )
        sub = framework.subscribe(QuerySpec.where(error_only=True))
        _drive(framework, stream)
        assert sub.hit_statuses == _batch_hits(framework, sub.spec)
        assert sub.hit_ids
        framework.close()


# ---------------------------------------------------------------------------
# Meter separation and observability neutrality
# ---------------------------------------------------------------------------
class TestPushMeterSeparation:
    def test_push_traffic_never_moves_the_network_meter(self, stream):
        def run(subscribe):
            framework = MintFramework(
                deployment=Deployment.single(network=CHAOS_WIRE)
            )
            sub = (
                framework.subscribe(QuerySpec.where(error_only=True))
                if subscribe else None
            )
            _drive(framework, stream)
            facts = (
                framework.network_bytes,
                framework.ledger.network.per_minute_series(),
                framework.push_bytes,
                None if sub is None else sub.hit_ids,
            )
            framework.close()
            return facts

        net_sub, series_sub, push_sub, hits = run(True)
        net_bare, series_bare, push_bare, _ = run(False)
        assert net_sub == net_bare
        assert series_sub == series_bare
        assert push_sub > 0
        assert push_bare == 0
        assert hits

    def test_obs_on_and_obs_off_deliver_identical_hits(self, stream):
        def run(obs):
            framework = MintFramework(
                deployment=Deployment.single(network=CHAOS_WIRE, observability=obs)
            )
            sub = framework.subscribe(QuerySpec.where(error_only=True))
            _drive(framework, stream)
            facts = (sub.hit_statuses, framework.live_stats()["delivered"])
            framework.close()
            return facts

        assert run(True) == run(False)

    def test_push_counters_reach_the_metrics_registry(self, stream):
        framework = MintFramework(deployment=Deployment.single())
        framework.subscribe(QuerySpec.where(error_only=True))
        _drive(framework, stream)
        report = framework.obs_report()
        delivered = framework.live_stats()["delivered"]
        assert delivered > 0
        counters = report["metrics"]["counters"]
        assert counters['mint_push_delivered{plane="live"}'] == delivered
        assert 'mint_transport_push_messages{plane="transport"}' in counters
        assert report["ledger"]["push_bytes"] == framework.push_bytes
        assert report["live"]["delivered"] == delivered
        framework.close()


# ---------------------------------------------------------------------------
# The storm schedule: pure, seeded, monotone
# ---------------------------------------------------------------------------
class TestStormSchedule:
    def test_deterministic_across_instances(self):
        a = QueryWorkload(seed=3).storm_schedule(1000.0, 250, seed=9)
        b = QueryWorkload(seed=99).storm_schedule(1000.0, 250, seed=9)
        assert a == b  # pure in (qps, count, seed) — workload state unused

    def test_seed_and_qps_shape_the_schedule(self):
        base = QueryWorkload().storm_schedule(1000.0, 250, seed=9)
        assert base != QueryWorkload().storm_schedule(1000.0, 250, seed=10)
        slow = QueryWorkload().storm_schedule(100.0, 25, seed=9)
        assert slow[10] > base[10]  # 10x lower rate -> 10x later arrival

    def test_strictly_increasing_one_arrival_per_slot(self):
        schedule = QueryWorkload().storm_schedule(1000.0, 500, seed=1)
        assert len(schedule) == 500
        assert all(b > a for a, b in zip(schedule, schedule[1:]))
        # Each arrival stays inside its own 1/qps slot: sustained rate.
        for i, t in enumerate(schedule):
            assert i / 1000.0 <= t < (i + 1) / 1000.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="qps"):
            QueryWorkload().storm_schedule(0.0, 10)
        with pytest.raises(ValueError, match="count"):
            QueryWorkload().storm_schedule(10.0, -1)
