"""Shard failover: chaos schedules, the supervisor, and convergence.

The binding contracts: chaos profiles are deterministic schedules; the
supervisor parks undeliverable reports in a bounded queue, probes with
exponential backoff, and replays in arrival order; queries during an
outage degrade instead of raising; recoverable chaos reconverges to the
no-chaos answers and a permanent crash stays visibly degraded.
"""

from __future__ import annotations

import math

import pytest

from repro.agent.reports import ParamsReport
from repro.elastic import (
    SHARD_CHAOS_PROFILES,
    AutoscalePolicy,
    ShardChaosProfile,
    ShardOutage,
    ShardSupervisor,
    fit_outages,
)
from repro.sim.elastic import run_failover_experiment
from repro.workloads import build_onlineboutique


class TestShardOutageValidation:
    def test_rejects_negative_shard(self):
        with pytest.raises(ValueError, match="shard index"):
            ShardOutage(shard=-1, start_s=1.0)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="end after it starts"):
            ShardOutage(shard=0, start_s=5.0, end_s=5.0)

    def test_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="mode"):
            ShardOutage(shard=0, start_s=1.0, end_s=2.0, mode="flaky")

    def test_slow_outages_need_a_slowdown_and_an_end(self):
        with pytest.raises(ValueError, match="slowdown_s > 0"):
            ShardOutage(shard=0, start_s=1.0, end_s=2.0, mode="slow")
        with pytest.raises(ValueError, match="must end"):
            ShardOutage(shard=0, start_s=1.0, mode="slow", slowdown_s=1.0)

    def test_default_end_is_the_permanent_crash(self):
        outage = ShardOutage(shard=1, start_s=5.0)
        assert outage.is_permanent
        assert outage.covers(1e12)
        assert not ShardOutage(shard=1, start_s=5.0, end_s=20.0).is_permanent


class TestShardChaosProfile:
    def test_down_and_slowdown_follow_the_schedule(self):
        profile = ShardChaosProfile(
            "mixed",
            (
                ShardOutage(shard=1, start_s=5.0, end_s=20.0),
                ShardOutage(shard=2, start_s=10.0, end_s=30.0, mode="slow",
                            slowdown_s=2.0),
            ),
        )
        assert not profile.down(1, 4.9)
        assert profile.down(1, 5.0)
        assert not profile.down(1, 20.0)  # end is exclusive
        assert profile.slowdown(2, 15.0) == 2.0
        assert profile.slowdown(2, 30.0) == 0.0
        assert profile.down_shards(15.0) == {1}
        assert profile.final_recovery_s() == 30.0

    def test_permanent_crashes_are_excluded_from_recovery(self):
        profile = SHARD_CHAOS_PROFILES["crash"]
        assert profile.final_recovery_s() == 0.0
        assert not profile.is_benign
        assert ShardChaosProfile("calm").is_benign

    def test_fit_outages_rescales_into_the_stream(self):
        fitted = fit_outages(SHARD_CHAOS_PROFILES["crash_restart"], 100.0)
        outage = fitted.outages[0]
        # Proportional map of [5, 20] (span 20) into [20, 50].
        assert (outage.start_s, outage.end_s) == (27.5, 50.0)

    def test_fit_outages_keeps_permanent_crashes_permanent(self):
        fitted = fit_outages(SHARD_CHAOS_PROFILES["crash"], 100.0)
        outage = fitted.outages[0]
        assert math.isinf(outage.end_s)
        assert 0.0 < outage.start_s < 100.0
        benign = ShardChaosProfile("calm")
        assert fit_outages(benign, 100.0) is benign


class TestShardSupervisor:
    def _supervisor(self, profile, clock_box, **kwargs):
        committed: list[str] = []
        supervisor = ShardSupervisor(
            profile=profile,
            commit=lambda report: committed.append(report.trace_id),
            owner_of=lambda node: int(node.rsplit("-", 1)[1]),
            **kwargs,
        )
        supervisor.bind_clock(lambda: clock_box[0])
        return supervisor, committed

    def _report(self, shard=1, trace_id="1" * 32):
        return ParamsReport(node=f"node-{shard}", trace_id=trace_id, records=[])

    def test_validation(self):
        profile = SHARD_CHAOS_PROFILES["crash"]
        with pytest.raises(ValueError, match="redelivery_capacity"):
            ShardSupervisor(profile, lambda r: None, lambda n: 0,
                            redelivery_capacity=0)
        with pytest.raises(ValueError, match="rto_s"):
            ShardSupervisor(profile, lambda r: None, lambda n: 0, rto_s=0.0)
        with pytest.raises(ValueError, match="max_backoff_s"):
            ShardSupervisor(profile, lambda r: None, lambda n: 0,
                            rto_s=2.0, max_backoff_s=1.0)

    def test_healthy_shard_commits_straight_through(self):
        clock = [10.0]
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["crash_restart"], clock
        )
        # Shard 0 is never in the schedule.
        assert not supervisor.intercept(self._report(shard=0))
        assert committed == []  # intercept declines; the caller commits
        assert supervisor.parked_reports == 0

    def test_down_shard_times_out_and_parks(self):
        clock = [6.0]  # inside the [5, 20) crash window
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["crash_restart"], clock
        )
        assert supervisor.intercept(self._report())
        assert supervisor.stats.timeouts == 1
        assert supervisor.stats.parked == 1
        assert supervisor.parked_reports == 1
        assert committed == []
        assert supervisor.down_shards() == {1}

    def test_replay_preserves_arrival_order(self):
        clock = [6.0]
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["crash_restart"], clock, rto_s=0.5
        )
        for i in range(3):
            supervisor.intercept(self._report(trace_id=f"{i:032x}"))
        clock[0] = 25.0  # past the outage and every backoff probe
        supervisor.pump()
        assert committed == [f"{i:032x}" for i in range(3)]
        assert supervisor.parked_reports == 0
        assert supervisor.stats.replayed == 3
        assert supervisor.stats.recoveries == 1

    def test_probes_back_off_exponentially(self):
        clock = [6.0]
        supervisor, _ = self._supervisor(
            SHARD_CHAOS_PROFILES["crash_restart"], clock,
            rto_s=1.0, max_backoff_s=8.0,
        )
        supervisor.intercept(self._report())
        # Pump continuously: probes may only fire at 7, 9, 13 ... (1, 2,
        # 4s of backoff), never every tick.
        for t in [6.5, 7.0, 7.5, 8.0, 9.0, 10.0, 13.0]:
            clock[0] = t
            supervisor.pump()
        assert supervisor.stats.probes == 3

    def test_fifo_behind_an_undrained_backlog(self):
        # A report for a shard with a queued backlog parks behind it
        # even if the shard looks healthy at this instant: per-shard
        # commit order is arrival order, always.
        clock = [6.0]
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["slow_shard"], clock
        )
        supervisor.intercept(self._report(trace_id="a" * 32))  # due 8.0
        clock[0] = 19.9  # still inside the slow window
        assert supervisor.intercept(self._report(trace_id="b" * 32))
        clock[0] = 30.0
        supervisor.pump()
        assert committed == ["a" * 32, "b" * 32]

    def test_bounded_queue_sheds_oldest_and_counts(self):
        clock = [6.0]
        supervisor, _ = self._supervisor(
            SHARD_CHAOS_PROFILES["crash"], clock, redelivery_capacity=2
        )
        for i in range(3):
            supervisor.intercept(self._report(trace_id=f"{i:032x}"))
        assert supervisor.parked_reports == 2
        assert supervisor.stats.dropped == 1
        assert supervisor.stats.max_parked == 2

    def test_settle_replays_everything_recoverable(self):
        clock = [6.0]
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["crash_restart"], clock
        )
        supervisor.intercept(self._report())
        supervisor.settle()  # no clock advance needed: settle jumps past
        assert committed and supervisor.parked_reports == 0

    def test_settle_leaves_permanent_crashes_parked(self):
        clock = [6.0]
        supervisor, committed = self._supervisor(
            SHARD_CHAOS_PROFILES["crash"], clock
        )
        supervisor.intercept(self._report())
        supervisor.settle()
        assert committed == []
        assert supervisor.parked_reports == 1


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            AutoscalePolicy(min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="factor"):
            AutoscalePolicy(factor=1)
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalePolicy(scale_up_depth=4, scale_down_depth=4)

    def test_scale_up_down_and_hold(self):
        policy = AutoscalePolicy(
            scale_up_depth=8, scale_down_depth=2, min_shards=1, max_shards=8
        )
        assert policy.target(2, [0, 9]) == 4
        assert policy.target(4, [1, 1, 0, 0]) == 2
        assert policy.target(2, [5, 5]) is None  # inside the hysteresis band
        assert policy.target(8, [99]) is None  # already at the ceiling
        assert policy.target(1, [0]) is None  # already at the floor
        assert policy.target(2, []) is None  # no signal, no move


class TestFailoverConvergence:
    def test_crash_restart_converges_to_the_no_chaos_answers(self):
        result = run_failover_experiment(
            build_onlineboutique(),
            profile="crash_restart",
            num_traces=120,
            auto_warmup_traces=40,
        )
        assert result.converged, result.violations
        assert result.probed_mid_outage
        assert result.supervisor["parked"] > 0
        assert result.supervisor["replayed"] == (
            result.supervisor["parked"] - result.supervisor["dropped"]
        )
        assert not result.permanently_degraded

    def test_slow_shard_converges_without_losing_commits(self):
        result = run_failover_experiment(
            build_onlineboutique(),
            profile="slow_shard",
            num_traces=120,
            auto_warmup_traces=40,
        )
        assert result.converged, result.violations
        assert result.supervisor["parked"] > 0
        assert result.supervisor["dropped"] == 0

    def test_permanent_crash_degrades_but_never_raises(self):
        result = run_failover_experiment(
            build_onlineboutique(),
            profile="crash",
            num_traces=120,
            auto_warmup_traces=40,
        )
        assert result.converged, result.violations
        assert result.probed_mid_outage
        assert result.permanently_degraded
