"""The simulated network plane: scheduler, chaos, reliability, and the
NetTransport's contracts.

The binding contracts (ISSUE 4): under the lossless default the plane
is bit-identical to ``LocalTransport``; under chaos with retries it
converges to the lossless answer with overhead confined to the
retransmit meter; and per-link delivery order is FIFO whatever the
wire does.
"""

from __future__ import annotations

import pytest

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.reports import BloomReport, ParamsReport
from repro.backend.backend import MintBackend
from repro.baselines import MintFramework
from repro.model.trace import SubTrace
from repro.net import (
    CHAOS_PROFILES,
    LOSSLESS,
    ChaosProfile,
    EventScheduler,
    NetTransport,
    NetworkDescriptor,
    PartitionWindow,
    ReliableLink,
    fit_partitions,
)
from repro.net.chaos import ChaosEngine
from repro.sim.clock import SimClock
from repro.sim.meters import OverheadLedger
from repro.transport import Deployment, LocalTransport, Transport
from tests.conftest import make_chain_trace, make_span


class TestEventScheduler:
    def test_runs_in_time_order_with_fifo_ties(self):
        scheduler = EventScheduler()
        order: list[str] = []
        scheduler.at(2.0, lambda: order.append("late"))
        scheduler.at(1.0, lambda: order.append("early-first"))
        scheduler.at(1.0, lambda: order.append("early-second"))
        scheduler.run_until(5.0)
        assert order == ["early-first", "early-second", "late"]
        assert scheduler.clock.now == 5.0

    def test_callback_observes_its_own_due_time(self):
        scheduler = EventScheduler()
        seen: list[float] = []
        scheduler.at(3.0, lambda: seen.append(scheduler.clock.now))
        scheduler.run_until(10.0)
        assert seen == [3.0]

    def test_cancelled_events_do_not_fire(self):
        scheduler = EventScheduler()
        fired: list[str] = []
        event = scheduler.at(1.0, lambda: fired.append("cancelled"))
        scheduler.at(2.0, lambda: fired.append("kept"))
        event.cancel()
        assert scheduler.pending == 1
        assert scheduler.next_time() == 2.0
        scheduler.run_all()
        assert fired == ["kept"]

    def test_past_scheduling_clamps_to_now(self):
        scheduler = EventScheduler(SimClock(start=5.0))
        fired: list[float] = []
        scheduler.at(1.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until(5.0)
        assert fired == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().after(-1.0, lambda: None)

    def test_run_all_backstop_raises_on_runaway(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.after(1.0, reschedule)

        scheduler.after(1.0, reschedule)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            scheduler.run_all(max_events=50)


class TestChaos:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ChaosProfile("bad", drop_rate=1.0)
        with pytest.raises(ValueError):
            ChaosProfile("bad", duplicate_rate=1.5)
        with pytest.raises(ValueError):
            ChaosProfile("bad", delay_jitter_s=-0.1)
        with pytest.raises(ValueError):
            PartitionWindow(start_s=2.0, end_s=2.0)

    def test_lossless_profile(self):
        assert LOSSLESS.is_lossless
        assert not CHAOS_PROFILES["drop"].is_lossless
        engine = ChaosEngine(LOSSLESS, seed=1)
        assert not engine.drops("node-0", 10.0)
        assert not engine.duplicates()
        assert engine.extra_delay() == 0.0

    def test_partition_windows_are_deterministic_and_scoped(self):
        profile = ChaosProfile(
            "split",
            partitions=(PartitionWindow(10.0, 20.0, nodes=("node-a",)),),
        )
        engine = ChaosEngine(profile, seed=3)
        assert engine.drops("node-a", 15.0)
        assert not engine.drops("node-a", 20.0)  # end is exclusive
        assert not engine.drops("node-b", 15.0)

    def test_engine_is_deterministic_per_seed(self):
        profile = CHAOS_PROFILES["drop"]
        draws = []
        for _ in range(2):
            engine = ChaosEngine(profile, seed=9)
            draws.append([engine.drops("n", 0.0) for _ in range(50)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_fit_partitions_rescales_into_stream(self):
        profile = CHAOS_PROFILES["partition"]
        fitted = fit_partitions(profile, duration_s=100.0)
        window = fitted.partitions[0]
        # Proportional map of [5, 20] (span 20) into [20, 50].
        assert (window.start_s, window.end_s) == (27.5, 50.0)
        assert fit_partitions(CHAOS_PROFILES["drop"], 100.0) is CHAOS_PROFILES["drop"]

    def test_fit_partitions_clamps_windows_straddling_the_stream_end(self):
        # A window that starts inside the lifetime but extends past it
        # is the outage the stream actually experiences: clamp it to
        # end at the stream's end instead of proportionally dragging
        # its start toward zero on the irrelevantly large end time.
        profile = ChaosProfile(
            "long-tail", partitions=(PartitionWindow(30.0, 500.0),)
        )
        fitted = fit_partitions(profile, duration_s=100.0)
        assert (fitted.partitions[0].start_s, fitted.partitions[0].end_s) == (
            30.0,
            100.0,
        )

    def test_fit_partitions_clamp_keeps_inside_windows_verbatim(self):
        profile = ChaosProfile(
            "mixed-tail",
            partitions=(
                PartitionWindow(10.0, 20.0, nodes=("node-a",)),
                PartitionWindow(30.0, 500.0),
                PartitionWindow(200.0, 300.0),  # fully past the stream
            ),
        )
        fitted = fit_partitions(profile, duration_s=100.0)
        assert len(fitted.partitions) == 2  # the never-started window drops
        inside, clamped = fitted.partitions
        assert (inside.start_s, inside.end_s, inside.nodes) == (
            10.0,
            20.0,
            ("node-a",),
        )
        assert (clamped.start_s, clamped.end_s) == (30.0, 100.0)

    def test_fit_partitions_preserves_multi_window_timing(self):
        profile = ChaosProfile(
            "two-outages",
            partitions=(
                PartitionWindow(5.0, 10.0, nodes=("node-a",)),
                PartitionWindow(50.0, 60.0),
            ),
        )
        fitted = fit_partitions(profile, duration_s=100.0)
        first, second = fitted.partitions
        # Disjoint windows stay disjoint, in order, nodes preserved:
        # span 60 maps into [20, 50].
        assert first.start_s < first.end_s < second.start_s < second.end_s
        assert (first.start_s, first.end_s) == (22.5, 25.0)
        assert (second.start_s, second.end_s) == (45.0, 50.0)
        assert first.nodes == ("node-a",) and second.nodes is None


class TestReliableLink:
    def _link(self, wire_log, delivered, **kwargs):
        scheduler = EventScheduler()
        link = ReliableLink(
            "node-0",
            scheduler,
            transmit=lambda batch, retx: wire_log.append((batch, retx)),
            deliver=delivered.append,
            **kwargs,
        )
        return scheduler, link

    def _reports(self, n):
        return tuple(
            ParamsReport(node="node-0", trace_id=f"{i:032x}") for i in range(n)
        )

    def test_in_order_delivery_despite_reordered_arrivals(self):
        wire, delivered = [], []
        _, link = self._link(wire, delivered)
        batches = [link.send((report,), 10) for report in self._reports(3)]
        link.on_arrival(batches[2])
        assert delivered == []  # parked behind the gap
        assert link.awaiting_delivery == 1
        link.on_arrival(batches[0])
        link.on_arrival(batches[1])
        assert [b.seq for b in delivered] == [0, 1, 2]
        assert link.in_flight == 0

    def test_retransmits_until_acked(self):
        wire, delivered = [], []
        scheduler, link = self._link(wire, delivered, rto_s=1.0)
        batch = link.send(self._reports(1), 10)
        scheduler.run_until(3.5)  # two timeouts: retransmits at 1.0, 3.0
        assert [retx for _, retx in wire] == [False, True, True]
        assert link.retransmits == 2
        link.on_arrival(batch)
        scheduler.run_all()
        assert [b.seq for b in delivered] == [0]
        assert link.in_flight == 0

    def test_duplicate_arrivals_are_dropped_and_counted(self):
        wire, delivered = [], []
        _, link = self._link(wire, delivered)
        batch = link.send(self._reports(1), 10)
        link.on_arrival(batch)
        link.on_arrival(batch)
        assert len(delivered) == 1
        assert link.duplicate_arrivals == 1

    def test_ack_cancels_the_retransmit_timer(self):
        wire, delivered = [], []
        scheduler, link = self._link(wire, delivered, rto_s=1.0)
        batch = link.send(self._reports(1), 10)
        link.on_arrival(batch)
        scheduler.run_all()
        assert [retx for _, retx in wire] == [False]


class TestNetworkDescriptor:
    def test_default_is_the_instantaneous_lossless_wire(self):
        descriptor = NetworkDescriptor()
        assert descriptor == NetworkDescriptor.lossless()
        assert descriptor.is_instantaneous
        assert descriptor.describe() == "lossless-net"

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkDescriptor(latency_s=-1.0)
        with pytest.raises(ValueError):
            NetworkDescriptor(max_batch_reports=0)
        with pytest.raises(ValueError):
            NetworkDescriptor(queue_capacity=0)
        with pytest.raises(ValueError):
            NetworkDescriptor(rto_s=0.0)
        with pytest.raises(ValueError):
            NetworkDescriptor(rto_s=2.0, max_backoff_s=1.0)

    def test_with_chaos_and_describe(self):
        wire = NetworkDescriptor.batched().with_chaos(CHAOS_PROFILES["drop"], seed=4)
        assert not wire.is_instantaneous
        assert "chaos=drop" in wire.describe()
        assert "batch<=256" in wire.describe()
        # Descriptors stay hashable values (they ride frozen Deployments).
        assert hash(wire) == hash(NetworkDescriptor.batched().with_chaos(
            CHAOS_PROFILES["drop"], seed=4
        ))

    def test_deployment_grows_a_network_field(self):
        assert Deployment.single().network is None
        wire = NetworkDescriptor.lossless()
        deployment = Deployment.sharded(2, network=wire)
        assert deployment.network == wire
        assert deployment.describe() == "2-shard+lossless-net"

    def test_build_transport_picks_the_wire(self):
        ledger = OverheadLedger()
        local = Deployment.single().build_transport(MintBackend(), ledger)
        assert type(local) is LocalTransport
        net = Deployment.single(network=NetworkDescriptor.lossless()).build_transport(
            MintBackend(), OverheadLedger()
        )
        assert isinstance(net, NetTransport)
        assert isinstance(net, Transport)


class TestBackendReceiveDedup:
    def _bloom(self):
        # Payload sized for the backend's default 4096-byte buffer.
        return BloomReport(
            node="node-0", topo_pattern_id="t" * 16, payload=b"\x01" * 4096, inserted=3
        )

    def test_duplicate_message_ids_do_not_perturb_storage(self):
        backend = MintBackend()
        backend.receive(self._bloom(), message_id=("node-0", 0, 0))
        once = backend.storage_bytes()
        backend.receive(self._bloom(), message_id=("node-0", 0, 0))
        assert backend.storage_bytes() == once
        assert len(backend.storage.blooms) == 1

    def test_without_ids_the_exactly_once_caller_is_unchecked(self):
        backend = MintBackend()
        backend.receive(self._bloom())
        backend.receive(self._bloom())
        assert len(backend.storage.blooms) == 2

    def test_type_check_still_precedes_dedup(self):
        backend = MintBackend()
        with pytest.raises(TypeError, match="unknown report type"):
            backend.receive("junk", message_id=("x", 0, 0))

    def test_dedup_state_is_bounded_per_channel(self):
        # High-water marks, not a set of every id ever seen: dedup
        # memory stays O(channels) over arbitrarily long runs.
        backend = MintBackend()
        for seq in range(50):
            backend.receive(self._bloom(), message_id=("node-0", seq, 0))
        backend.receive(self._bloom(), message_id=("node-1", 0, 0))
        assert len(backend._delivered_watermarks) == 2
        # A straggler at or below the watermark is dropped.
        stored = len(backend.storage.blooms)
        backend.receive(self._bloom(), message_id=("node-0", 10, 0))
        assert len(backend.storage.blooms) == stored

    def test_out_of_order_ids_below_the_watermark_are_idempotent(self):
        # A retransmitted batch can resurface arbitrarily old sequence
        # numbers in any order; everything at or below the channel's
        # high-water mark must be ignored without perturbing storage or
        # the watermark itself.
        backend = MintBackend()
        for seq in range(6):
            backend.receive(self._bloom(), message_id=("node-0", seq, 0))
        stored = len(backend.storage.blooms)
        nbytes = backend.storage_bytes()
        watermark = backend._delivered_watermarks["node-0"]
        for seq in (3, 0, 5, 1, 4, 2):
            backend.receive(self._bloom(), message_id=("node-0", seq, 0))
        assert len(backend.storage.blooms) == stored
        assert backend.storage_bytes() == nbytes
        assert backend._delivered_watermarks["node-0"] == watermark
        # The next fresh sequence number still lands.
        backend.receive(self._bloom(), message_id=("node-0", 6, 0))
        assert len(backend.storage.blooms) == stored + 1

    def test_watermarks_are_scoped_per_channel(self):
        # Another channel for the same node (the migration links use a
        # prefixed channel name) keeps its own watermark: node-0's high
        # water must not suppress fresh deliveries elsewhere.
        backend = MintBackend()
        for seq in range(5):
            backend.receive(self._bloom(), message_id=("node-0", seq, 0))
        stored = len(backend.storage.blooms)
        backend.receive(self._bloom(), message_id=("migrate::node-0", 0, 0))
        assert len(backend.storage.blooms) == stored + 1


class TestNetTransport:
    def _report(self, node="node-0", trace_id="1" * 32):
        return ParamsReport(node=node, trace_id=trace_id, records=[])

    def _transport(self, clock_box=None, **net_kwargs):
        backend = MintBackend()
        ledger = OverheadLedger()
        clock_box = clock_box if clock_box is not None else [0.0]
        transport = NetTransport(
            backend,
            ledger,
            clock=lambda: clock_box[0],
            network=NetworkDescriptor(**net_kwargs),
        )
        return backend, ledger, transport, clock_box

    def test_lossless_default_delivers_inside_the_call(self):
        backend, ledger, transport, clock = self._transport()
        clock[0] = 120.0
        report = self._report()
        transport.deliver(report)
        assert "1" * 32 in backend.storage.params
        assert ledger.network.per_minute_series() == [(2, report.size_bytes())]
        assert transport.retransmit.total_bytes == 0
        assert transport.queued_reports == 0 and transport.in_flight_batches == 0

    def test_claims_notify_meter_like_local_transport(self):
        backend, _, transport, _ = self._transport()
        assert backend.notify_meter == transport.notify

    def test_size_triggered_batching_preserves_fifo(self):
        backend, _, transport, _ = self._transport(max_batch_reports=3)
        for i in range(3):
            transport.deliver(self._report(trace_id=f"{i:032x}"))
            if i < 2:
                assert transport.queued_reports == i + 1
        assert transport.queued_reports == 0
        assert list(backend.storage.params) == [f"{i:032x}" for i in range(3)]
        stats = transport.link_stats["node-0"]
        assert stats.sent_batches == 1 and stats.sent_reports == 3

    def test_age_triggered_flush_fires_on_later_advance(self):
        backend, _, transport, clock = self._transport(
            max_batch_reports=100, max_batch_age_s=2.0
        )
        transport.deliver(self._report())
        assert transport.queued_reports == 1
        clock[0] = 1.0
        transport.sync_storage()
        assert transport.queued_reports == 1  # not old enough yet
        clock[0] = 2.5
        transport.sync_storage()
        assert transport.queued_reports == 0
        assert "1" * 32 in backend.storage.params

    def test_backpressure_forces_a_flush_on_a_full_queue(self):
        backend, _, transport, _ = self._transport(
            max_batch_reports=100, queue_capacity=4
        )
        for i in range(4):
            transport.deliver(self._report(trace_id=f"{i:032x}"))
        assert transport.queued_reports == 0
        assert transport.link_stats["node-0"].backpressure_flushes == 1
        assert len(backend.storage.params) == 4

    def test_send_window_bounds_in_flight_and_resumes_on_ack(self):
        backend, _, transport, _ = self._transport(
            max_in_flight_batches=2, latency_s=0.1, rto_s=1.0
        )
        for i in range(6):
            transport.deliver(self._report(trace_id=f"{i:032x}"))
        # Only the window's worth is on the wire; the backlog is held
        # in the queue, bounding unacked batches and their timers.
        assert transport.in_flight_batches == 2
        assert transport.queued_reports == 4
        transport.drain()  # acks free slots; deferred flushes resume
        assert transport.queued_reports == 0
        assert list(backend.storage.params) == [f"{i:032x}" for i in range(6)]

    def test_rto_must_exceed_latency(self):
        with pytest.raises(ValueError, match="rto_s must exceed latency_s"):
            NetworkDescriptor(latency_s=0.6, rto_s=0.5)

    def test_network_meter_is_charged_at_enqueue_even_when_batching(self):
        _, ledger, transport, clock = self._transport(
            max_batch_reports=100, max_batch_age_s=120.0
        )
        clock[0] = 30.0
        report = self._report()
        transport.deliver(report)
        # Still queued, but the wire bytes are already charged in the
        # enqueue minute — exactly when LocalTransport would charge.
        assert transport.queued_reports == 1
        assert ledger.network.per_minute_series() == [(0, report.size_bytes())]

    def test_drop_chaos_retries_converge_and_charge_retransmit_only(self):
        backend, ledger, transport, _ = self._transport(
            rto_s=0.5, chaos=CHAOS_PROFILES["drop"], seed=11
        )
        reports = [self._report(trace_id=f"{i:032x}") for i in range(40)]
        for report in reports:
            transport.deliver(report)
        transport.drain()
        assert len(backend.storage.params) == 40
        assert list(backend.storage.params) == [r.trace_id for r in reports]
        assert ledger.network.total_bytes == sum(r.size_bytes() for r in reports)
        stats = transport.link_stats["node-0"]
        assert stats.dropped > 0 and stats.retransmits > 0
        assert transport.retransmit.total_bytes > 0

    def test_partition_defers_delivery_until_the_window_lifts(self):
        profile = ChaosProfile("split", partitions=(PartitionWindow(0.0, 10.0),))
        backend, _, transport, clock = self._transport(
            rto_s=1.0, chaos=profile, seed=1
        )
        transport.deliver(self._report())
        clock[0] = 5.0
        transport.sync_storage()
        assert "1" * 32 not in backend.storage.params  # still partitioned
        transport.drain()  # retries walk past the window's end
        assert "1" * 32 in backend.storage.params
        assert transport._sim.now >= 10.0

    def test_duplicate_chaos_never_perturbs_storage(self):
        always_dup = ChaosProfile("dup-all", duplicate_rate=1.0)
        backend, _, transport, _ = self._transport(chaos=always_dup, seed=2)
        for i in range(10):
            transport.deliver(self._report(trace_id=f"{i:032x}"))
        transport.drain()
        assert len(backend.storage.params) == 10
        stats = transport.link_stats["node-0"]
        assert stats.duplicated == 10
        assert transport.retransmit.total_bytes > 0

    def test_per_link_isolation_and_stats(self):
        backend, _, transport, _ = self._transport(max_batch_reports=2)
        transport.deliver(self._report(node="node-a", trace_id="a" * 32))
        transport.deliver(self._report(node="node-b", trace_id="b" * 32))
        # Neither link reached its batch size; both still queued.
        assert transport.queued_reports == 2
        transport.drain()
        assert set(transport.link_stats) == {"node-a", "node-b"}
        summary = transport.stats_summary()
        assert summary["links"] == 2
        assert summary["totals"]["delivered_reports"] == 2

    def test_retroactive_pull_flushes_a_batching_wire(self):
        # The pull re-queries storage immediately after collectors
        # upload; on a batching wire those uploads are only queued, so
        # the plane's flush_transport hook (claimed by NetTransport)
        # must force them through or the upgrade-to-exact contract
        # breaks.
        config = MintConfig(edge_case_base_rate=0.0)
        backend = MintBackend()
        transport = NetTransport(
            backend,
            OverheadLedger(),
            network=NetworkDescriptor(
                max_batch_reports=100, max_batch_age_s=60.0, latency_s=0.01
            ),
        )
        assert backend.flush_transport == transport.drain
        agent = MintAgent(node="node-0", config=config)
        collector = MintCollector(agent, transport, config=config)
        backend.register_collector(collector)
        for i in range(3, 9):
            sub = SubTrace(
                trace_id=f"{i:032x}",
                node="node-0",
                spans=[make_span(trace_id=f"{i:032x}")],
            )
            collector.process(sub, now=float(i))
        collector.flush(now=100.0)
        transport.drain()
        target = f"{6:032x}"
        assert backend.query(target).status == "partial"
        assert backend.query(target, pull_params=True).status == "exact"
        assert transport.queued_reports == 0

    def test_collector_accepts_a_net_transport(self):
        backend, ledger, transport, _ = self._transport()
        collector = MintCollector(MintAgent(node="node-0"), transport)
        backend.register_collector(collector)
        trace = make_chain_trace(depth=2, trace_id="5" * 32, nodes=("node-0",))
        for sub in trace.sub_traces():
            collector.process(sub, 0.0)
        collector.flush(100.0)
        assert ledger.network.total_bytes > 0


class TestFrameworkOverTheNetworkPlane:
    def _drive(self, framework, num_traces: int = 40):
        for i in range(num_traces):
            framework.process_trace(
                make_chain_trace(depth=3, trace_id=f"{i:032x}"), float(i)
            )
        framework.finalize(float(num_traces))
        return framework

    def _signature(self, framework, num_traces: int = 40):
        return [framework.query(f"{i:032x}").status for i in range(num_traces)]

    def test_lossless_net_is_bit_identical_to_local(self):
        reference = self._drive(MintFramework(auto_warmup_traces=10))
        for deployment in (
            Deployment.single(network=NetworkDescriptor.lossless()),
            Deployment.sharded(2, network=NetworkDescriptor.lossless()),
        ):
            framework = self._drive(
                MintFramework(deployment=deployment, auto_warmup_traces=10)
            )
            assert framework.network_bytes == reference.network_bytes
            assert framework.storage_bytes == reference.storage_bytes
            assert (
                framework.ledger.network.per_minute_series()
                == reference.ledger.network.per_minute_series()
            )
            assert (
                framework.ledger.storage.per_minute_series()
                == reference.ledger.storage.per_minute_series()
            )
            assert self._signature(framework) == self._signature(reference)
            assert framework.retransmit_bytes == 0

    def test_chaos_with_retries_converges_to_the_lossless_answer(self):
        reference = self._drive(MintFramework(auto_warmup_traces=10))
        wire = NetworkDescriptor(
            max_batch_reports=4, max_batch_age_s=0.5, rto_s=0.3
        )
        for name in ("drop", "duplicate", "delay"):
            framework = self._drive(
                MintFramework(
                    deployment=Deployment.single(
                        network=wire.with_chaos(CHAOS_PROFILES[name], seed=5)
                    ),
                    auto_warmup_traces=10,
                )
            )
            assert framework.network_bytes == reference.network_bytes, name
            assert framework.storage_bytes == reference.storage_bytes, name
            assert self._signature(framework) == self._signature(reference), name

    def test_sharded_ledgers_reconcile_over_the_net_plane(self):
        framework = self._drive(
            MintFramework(
                deployment=Deployment.sharded(
                    2, network=NetworkDescriptor.lossless()
                ),
                auto_warmup_traces=10,
            )
        )
        rows = framework.shard_meter_rows()
        assert sum(row.network_bytes for row in rows) == framework.network_bytes

    def test_net_stats_surface_on_the_framework(self):
        framework = self._drive(
            MintFramework(
                deployment=Deployment.single(network=NetworkDescriptor.lossless()),
                auto_warmup_traces=10,
            )
        )
        stats = framework.net_stats()
        assert stats is not None and stats["in_flight_batches"] == 0
        assert MintFramework(auto_warmup_traces=5).net_stats() is None
