"""Unit tests for the Mint agent and collector."""

import pytest

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport
from repro.model.trace import SubTrace
from tests.conftest import make_span


def local_subtrace(trace_id: str, abnormal: bool = False) -> SubTrace:
    # The status word varies between values, so it parses into a
    # wildcard parameter — where the symptom sampler looks.
    status = "timeout" if abnormal else "ok"
    attrs = {
        "msg": f"request handler finished processing with status {status} today"
    }
    return SubTrace(
        trace_id=trace_id,
        node="node-0",
        spans=[make_span(trace_id=trace_id, attributes=attrs)],
    )


class TestMintConfig:
    def test_defaults_match_paper(self):
        config = MintConfig()
        assert config.similarity_threshold == 0.8
        assert config.alpha == 0.5
        assert config.bloom_buffer_bytes == 4096
        assert config.bloom_fpp == 0.01
        assert config.params_buffer_bytes == 4 * 1024 * 1024
        assert config.pattern_report_interval_s == 60.0
        assert config.warmup_sample_size == 5000

    def test_validation(self):
        with pytest.raises(ValueError):
            MintConfig(similarity_threshold=2.0)
        with pytest.raises(ValueError):
            MintConfig(alpha=0.0)
        with pytest.raises(ValueError):
            MintConfig(bloom_buffer_bytes=0)


class TestMintAgent:
    def test_ingest_wrong_node_rejected(self):
        agent = MintAgent(node="node-1")
        with pytest.raises(ValueError):
            agent.ingest(local_subtrace("1" * 32))

    def test_ingest_populates_libraries_and_buffer(self):
        agent = MintAgent(node="node-0")
        result = agent.ingest(local_subtrace("1" * 32))
        assert result.topo_pattern_id in agent.trace_parser.library
        assert "1" * 32 in agent.params_buffer
        assert len(agent.span_parser.library) >= 1

    def test_symptom_word_marks_sampled(self):
        agent = MintAgent(node="node-0")
        # A normal value first, so the parser learns the wildcard slot.
        agent.ingest(local_subtrace("1" * 32))
        result = agent.ingest(local_subtrace("2" * 32, abnormal=True))
        assert result.sampled
        assert "symptom" in result.fired_samplers

    def test_first_pattern_occurrence_marks_sampled(self):
        agent = MintAgent(node="node-0")
        result = agent.ingest(local_subtrace("3" * 32))
        # Edge-case sampler always samples a brand-new execution path.
        assert "edge-case" in result.fired_samplers

    def test_warm_up_uses_sample_cap(self):
        config = MintConfig(warmup_sample_size=3)
        agent = MintAgent(node="node-0", config=config)
        spans = [make_span(span_id=f"{i:016x}") for i in range(10)]
        agent.warm_up(spans)
        assert agent.is_warmed_up


class CollectingTransport:
    def __init__(self):
        self.reports = []

    def __call__(self, report):
        self.reports.append(report)

    def of_type(self, cls):
        return [r for r in self.reports if isinstance(r, cls)]


class TestMintCollector:
    def test_pattern_report_sent_once_per_new_pattern(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, transport)
        collector.process(local_subtrace("1" * 32), now=0.0)
        first = len(transport.of_type(PatternLibraryReport))
        assert first >= 1
        # Same shape again within the report interval: nothing new.
        collector.process(local_subtrace("2" * 32), now=1.0)
        assert len(transport.of_type(PatternLibraryReport)) == first

    def test_pattern_report_interval_respected(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, transport)
        collector.process(local_subtrace("1" * 32), now=0.0)
        # New span shape -> new pattern, but interval hasn't elapsed.
        sub = SubTrace(
            trace_id="2" * 32,
            node="node-0",
            spans=[make_span(trace_id="2" * 32, name="other-op")],
        )
        collector.process(sub, now=1.0)
        count_before = len(transport.of_type(PatternLibraryReport))
        collector.tick(now=120.0)
        assert len(transport.of_type(PatternLibraryReport)) == count_before + 1

    def test_sampled_trace_uploads_params(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, transport)
        collector.process(local_subtrace("1" * 32, abnormal=True), now=0.0)
        params = transport.of_type(ParamsReport)
        assert len(params) == 1
        assert params[0].trace_id == "1" * 32
        # Uploaded block is freed from the buffer.
        assert "1" * 32 not in agent.params_buffer

    def test_mark_sampled_pulls_buffered_params(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0", config=MintConfig(edge_case_base_rate=0.0))
        collector = MintCollector(agent, transport)
        # Feed several normal traces so nothing is auto-sampled...
        for i in range(4, 10):
            collector.process(local_subtrace(f"{i:032x}"), now=float(i))
        before = len(transport.of_type(ParamsReport))
        # ...then the backend marks one sampled retroactively (the first
        # two occurrences of a new path are edge-case sampled by design,
        # so target a later trace).
        target = f"{7:032x}"
        assert collector.request_params(target)
        reports = transport.of_type(ParamsReport)
        assert len(reports) == before + 1
        assert reports[-1].trace_id == target

    def test_flush_drains_blooms(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, transport)
        collector.process(local_subtrace("1" * 32), now=0.0)
        collector.flush(now=100.0)
        assert len(transport.of_type(BloomReport)) >= 1

    def test_report_sizes_positive(self):
        transport = CollectingTransport()
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, transport)
        collector.process(local_subtrace("1" * 32, abnormal=True), now=0.0)
        collector.flush(now=100.0)
        for report in transport.reports:
            assert report.size_bytes() > 0
