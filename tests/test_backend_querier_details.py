"""Focused tests for querier internals: stitching and FP verification."""

from repro.backend.querier import (
    ApproximateSegment,
    _drop_unconnected_false_positives,
    _stitch_segments,
)


def seg(name: str, entries: list, exits: list) -> ApproximateSegment:
    return ApproximateSegment(
        topo_pattern_id=name,
        nodes_reporting=["n"],
        spans=[],
        entry_ops=[tuple(e) for e in entries],
        exit_ops=[tuple(x) for x in exits],
    )


class TestStitching:
    def test_upstream_before_downstream(self):
        upstream = seg("up", [("gw", "GET /")], [("backend", "do-work")])
        downstream = seg("down", [("backend", "do-work")], [])
        ordered = _stitch_segments([downstream, upstream])
        assert [s.topo_pattern_id for s in ordered] == ["up", "down"]

    def test_chain_of_three(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("c", "op-c")])
        c = seg("c", [("c", "op-c")], [])
        ordered = _stitch_segments([c, b, a])
        assert [s.topo_pattern_id for s in ordered] == ["a", "b", "c"]

    def test_unmatched_segments_kept_at_end(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        island = seg("island", [("x", "op-x")], [])
        ordered = _stitch_segments([island, b, a])
        ids = [s.topo_pattern_id for s in ordered]
        assert ids.index("a") < ids.index("b")
        assert "island" in ids

    def test_single_segment_untouched(self):
        only = seg("only", [("a", "op")], [])
        assert _stitch_segments([only]) == [only]

    def test_cycle_does_not_hang(self):
        a = seg("a", [("a", "op-a")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("a", "op-a")])
        ordered = _stitch_segments([a, b])
        assert len(ordered) == 2


class TestStitchingEdgeCases:
    def test_empty_input(self):
        assert _stitch_segments([]) == []

    def test_diamond_fan_out_parents_first(self):
        # root feeds two middles which both feed the sink; every parent
        # must precede its children, with deterministic order among
        # ready siblings (index order).
        root = seg("root", [("gw", "GET /")], [("l", "op-l"), ("r", "op-r")])
        left = seg("left", [("l", "op-l")], [("sink", "op-s")])
        right = seg("right", [("r", "op-r")], [("sink", "op-s")])
        sink = seg("sink", [("sink", "op-s")], [])
        ordered = _stitch_segments([sink, right, left, root])
        ids = [s.topo_pattern_id for s in ordered]
        assert ids.index("root") < ids.index("left")
        assert ids.index("root") < ids.index("right")
        assert ids.index("left") < ids.index("sink")
        assert ids.index("right") < ids.index("sink")

    def test_duplicate_exit_ops_add_one_edge(self):
        # The same (service, op) appearing twice among A's exits must
        # not double-count B's indegree (which would strand B).
        a = seg("a", [("a", "op")], [("b", "op-b"), ("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        ordered = _stitch_segments([b, a])
        assert [s.topo_pattern_id for s in ordered] == ["a", "b"]

    def test_self_loop_ignored(self):
        # A segment whose exit names its own entry gains no self-edge.
        loop = seg("loop", [("svc", "op")], [("svc", "op")])
        tail = seg("tail", [("t", "op-t")], [])
        ordered = _stitch_segments([loop, tail])
        assert {s.topo_pattern_id for s in ordered} == {"loop", "tail"}

    def test_shared_entry_op_fans_to_all_matches(self):
        # One exit op matched by two downstream segments orders both
        # after the upstream.
        up = seg("up", [("gw", "GET /")], [("w", "work")])
        d1 = seg("d1", [("w", "work")], [])
        d2 = seg("d2", [("w", "work")], [])
        ordered = _stitch_segments([d2, d1, up])
        ids = [s.topo_pattern_id for s in ordered]
        assert ids.index("up") < ids.index("d1")
        assert ids.index("up") < ids.index("d2")

    def test_all_cyclic_segments_still_emitted_once(self):
        # Fully cyclic input leaves no zero-indegree start; the
        # leftover sweep must emit every segment exactly once.
        a = seg("a", [("a", "op-a")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("c", "op-c")])
        c = seg("c", [("c", "op-c")], [("a", "op-a")])
        ordered = _stitch_segments([a, b, c])
        assert sorted(s.topo_pattern_id for s in ordered) == ["a", "b", "c"]

    def test_independent_segments_keep_relative_order(self):
        segments = [seg(f"s{i}", [(f"svc{i}", "op")], []) for i in range(4)]
        ordered = _stitch_segments(list(segments))
        assert [s.topo_pattern_id for s in ordered] == ["s0", "s1", "s2", "s3"]


class TestFalsePositiveVerification:
    def test_disconnected_extra_dropped(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        fp = seg("fp", [("zzz", "unrelated")], [])
        kept = _drop_unconnected_false_positives([a, b, fp])
        assert {s.topo_pattern_id for s in kept} == {"a", "b"}

    def test_nothing_dropped_without_connections(self):
        # No pair connects: cannot verify, keep everything (no-miss wins).
        a = seg("a", [("a", "op")], [])
        b = seg("b", [("b", "op")], [])
        kept = _drop_unconnected_false_positives([a, b])
        assert len(kept) == 2

    def test_single_segment_kept(self):
        only = seg("only", [("a", "op")], [])
        assert _drop_unconnected_false_positives([only]) == [only]

    def test_fully_connected_kept(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("c", "op-c")])
        c = seg("c", [("c", "op-c")], [])
        kept = _drop_unconnected_false_positives([a, b, c])
        assert len(kept) == 3

    def test_empty_input(self):
        assert _drop_unconnected_false_positives([]) == []

    def test_two_disconnected_islands_both_kept(self):
        # Two connected pairs with no link between them: all four are
        # "connected to something", so nothing is dropped.
        a1 = seg("a1", [("a", "op")], [("b", "op-b")])
        a2 = seg("a2", [("b", "op-b")], [])
        b1 = seg("b1", [("x", "op-x")], [("y", "op-y")])
        b2 = seg("b2", [("y", "op-y")], [])
        kept = _drop_unconnected_false_positives([a1, a2, b1, b2])
        assert len(kept) == 4

    def test_multiple_false_positives_dropped_together(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        fp1 = seg("fp1", [("q", "op-q")], [])
        fp2 = seg("fp2", [("r", "op-r")], [])
        kept = _drop_unconnected_false_positives([fp1, a, fp2, b])
        assert {s.topo_pattern_id for s in kept} == {"a", "b"}

    def test_self_loop_alone_does_not_verify(self):
        # A segment matching only itself (exit == own entry) is not a
        # connection: with no *pair* connected, everything is kept.
        loop = seg("loop", [("svc", "op")], [("svc", "op")])
        other = seg("other", [("o", "op-o")], [])
        kept = _drop_unconnected_false_positives([loop, other])
        assert len(kept) == 2

    def test_direction_of_connection_is_irrelevant(self):
        # Connection is symmetric: an upstream with no entries of its
        # own still counts as connected through its exit edge.
        up = seg("up", [], [("down", "op-d")])
        down = seg("down", [("down", "op-d")], [])
        fp = seg("fp", [("zz", "op-z")], [])
        kept = _drop_unconnected_false_positives([up, down, fp])
        assert {s.topo_pattern_id for s in kept} == {"up", "down"}
