"""Focused tests for querier internals: stitching and FP verification."""

from repro.backend.querier import (
    ApproximateSegment,
    _drop_unconnected_false_positives,
    _stitch_segments,
)


def seg(name: str, entries: list, exits: list) -> ApproximateSegment:
    return ApproximateSegment(
        topo_pattern_id=name,
        nodes_reporting=["n"],
        spans=[],
        entry_ops=[tuple(e) for e in entries],
        exit_ops=[tuple(x) for x in exits],
    )


class TestStitching:
    def test_upstream_before_downstream(self):
        upstream = seg("up", [("gw", "GET /")], [("backend", "do-work")])
        downstream = seg("down", [("backend", "do-work")], [])
        ordered = _stitch_segments([downstream, upstream])
        assert [s.topo_pattern_id for s in ordered] == ["up", "down"]

    def test_chain_of_three(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("c", "op-c")])
        c = seg("c", [("c", "op-c")], [])
        ordered = _stitch_segments([c, b, a])
        assert [s.topo_pattern_id for s in ordered] == ["a", "b", "c"]

    def test_unmatched_segments_kept_at_end(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        island = seg("island", [("x", "op-x")], [])
        ordered = _stitch_segments([island, b, a])
        ids = [s.topo_pattern_id for s in ordered]
        assert ids.index("a") < ids.index("b")
        assert "island" in ids

    def test_single_segment_untouched(self):
        only = seg("only", [("a", "op")], [])
        assert _stitch_segments([only]) == [only]

    def test_cycle_does_not_hang(self):
        a = seg("a", [("a", "op-a")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("a", "op-a")])
        ordered = _stitch_segments([a, b])
        assert len(ordered) == 2


class TestFalsePositiveVerification:
    def test_disconnected_extra_dropped(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [])
        fp = seg("fp", [("zzz", "unrelated")], [])
        kept = _drop_unconnected_false_positives([a, b, fp])
        assert {s.topo_pattern_id for s in kept} == {"a", "b"}

    def test_nothing_dropped_without_connections(self):
        # No pair connects: cannot verify, keep everything (no-miss wins).
        a = seg("a", [("a", "op")], [])
        b = seg("b", [("b", "op")], [])
        kept = _drop_unconnected_false_positives([a, b])
        assert len(kept) == 2

    def test_single_segment_kept(self):
        only = seg("only", [("a", "op")], [])
        assert _drop_unconnected_false_positives([only]) == [only]

    def test_fully_connected_kept(self):
        a = seg("a", [("a", "op")], [("b", "op-b")])
        b = seg("b", [("b", "op-b")], [("c", "op-c")])
        c = seg("c", [("c", "op-c")], [])
        kept = _drop_unconnected_false_positives([a, b, c])
        assert len(kept) == 3
