"""Unit tests for fault injection and the query workload model."""

import pytest

from repro.model.span import SpanStatus
from repro.workloads import (
    FaultInjector,
    FaultSpec,
    FaultType,
    QueryWorkload,
    TraceRecord,
    WorkloadDriver,
    build_onlineboutique,
)


@pytest.fixture(scope="module")
def checkout_trace():
    wl = build_onlineboutique()
    driver = WorkloadDriver(wl, seed=30)
    for _, trace in driver.traces(50):
        if "paymentservice" in trace.services:
            return trace
    raise AssertionError("no checkout trace generated")


class TestFaultInjector:
    def test_untouched_service_returns_original(self, checkout_trace):
        injector = FaultInjector(seed=1)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.NETWORK_DELAY, "no-such-svc")
        )
        assert out is checkout_trace

    def test_cpu_exhaustion_inflates_target_and_ancestors(self, checkout_trace):
        injector = FaultInjector(seed=2)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.CPU_EXHAUSTION, "paymentservice")
        )
        before = {s.span_id: s.duration for s in checkout_trace.spans}
        target = [s for s in out.spans if s.service == "paymentservice"]
        assert all(s.duration > before[s.span_id] for s in target)
        root = out.root
        assert root.duration > before[root.span_id]

    def test_error_return_sets_status_and_code(self, checkout_trace):
        injector = FaultInjector(seed=3)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.ERROR_RETURN, "paymentservice")
        )
        target = [s for s in out.spans if s.service == "paymentservice"]
        assert all(s.status is SpanStatus.ERROR for s in target)
        assert all(
            s.attributes.get("http.status_code") in (500, 502, 503) for s in target
        )

    def test_code_exception_attaches_message(self, checkout_trace):
        injector = FaultInjector(seed=4)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.CODE_EXCEPTION, "paymentservice")
        )
        target = [s for s in out.spans if s.service == "paymentservice"]
        assert all("exception.message" in s.attributes for s in target)

    def test_abnormal_tag_on_root(self, checkout_trace):
        injector = FaultInjector(seed=5)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.MEMORY_EXHAUSTION, "paymentservice")
        )
        assert out.root.attributes.get("is_abnormal") == "true"

    def test_tagging_can_be_disabled(self, checkout_trace):
        injector = FaultInjector(seed=6, tag_abnormal=False)
        out = injector.inject(
            checkout_trace, FaultSpec(FaultType.NETWORK_DELAY, "paymentservice")
        )
        assert "is_abnormal" not in out.root.attributes

    def test_original_not_mutated(self, checkout_trace):
        durations = [s.duration for s in checkout_trace.spans]
        FaultInjector(seed=7).inject(
            checkout_trace, FaultSpec(FaultType.CPU_EXHAUSTION, "paymentservice")
        )
        assert [s.duration for s in checkout_trace.spans] == durations


class TestQueryWorkload:
    def _records(self, n: int = 200, abnormal_every: int = 10):
        return [
            TraceRecord(
                trace_id=f"{i:032x}",
                timestamp=float(i),
                is_abnormal=i % abnormal_every == 0,
            )
            for i in range(n)
        ]

    def test_bias_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(abnormal_bias=1.5)

    def test_sample_count(self):
        qw = QueryWorkload(seed=1)
        queries = qw.sample_queries(self._records(), 50)
        assert len(queries) == 50

    def test_queries_include_normal_traces(self):
        """The core phenomenon: analysts also query unremarkable traces."""
        records = self._records()
        abnormal_ids = {r.trace_id for r in records if r.is_abnormal}
        qw = QueryWorkload(abnormal_bias=0.45, seed=2)
        queries = qw.sample_queries(records, 300)
        normal_queries = [q for q in queries if q not in abnormal_ids]
        assert len(normal_queries) > 100

    def test_abnormal_bias_visible(self):
        records = self._records()
        abnormal_ids = {r.trace_id for r in records if r.is_abnormal}
        qw = QueryWorkload(abnormal_bias=0.9, seed=3)
        queries = qw.sample_queries(records, 300)
        abnormal_fraction = sum(q in abnormal_ids for q in queries) / 300
        # 10% of traces are abnormal but ~90% of queries target them.
        assert abnormal_fraction > 0.6

    def test_incident_window_queries(self):
        records = self._records()
        qw = QueryWorkload(seed=4)
        queries = qw.incident_window_queries(records, 50.0, 60.0, 40)
        by_id = {r.trace_id: r for r in records}
        assert all(50.0 <= by_id[q].timestamp < 60.0 for q in queries)

    def test_empty_population(self):
        qw = QueryWorkload(seed=5)
        assert qw.sample_queries([], 10) == []
