"""Unit tests for the backend: storage engine, querier, coordination."""

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.backend.backend import MintBackend
from repro.model.trace import SubTrace
from tests.conftest import make_chain_trace, make_span


def wire_single_node(config: MintConfig | None = None):
    """One agent + collector wired straight into a backend."""
    backend = MintBackend()
    agent = MintAgent(node="node-0", config=config)
    collector = MintCollector(agent, backend.receive, config=config)
    backend.register_collector(collector)
    return backend, collector


def simple_subtrace(trace_id: str, abnormal: bool = False) -> SubTrace:
    attrs = {"msg": "downstream timeout detected"} if abnormal else {}
    return SubTrace(
        trace_id=trace_id,
        node="node-0",
        spans=[make_span(trace_id=trace_id, attributes=attrs)],
    )


class TestStorageAccounting:
    def test_storage_grows_with_reports(self):
        backend, collector = wire_single_node()
        assert backend.storage_bytes() == 0
        collector.process(simple_subtrace("1" * 32), now=0.0)
        collector.flush(now=100.0)
        assert backend.storage_bytes() > 0
        assert backend.storage.pattern_bytes > 0
        assert backend.storage.bloom_bytes > 0

    def test_duplicate_patterns_cost_nothing(self):
        backend, collector = wire_single_node()
        collector.process(simple_subtrace("1" * 32), now=0.0)
        collector.flush(now=100.0)
        cost = backend.storage.pattern_bytes
        # Re-reporting the same patterns (forced via a second collector)
        # must not grow pattern storage.
        agent2 = MintAgent(node="node-0")
        collector2 = MintCollector(agent2, backend.receive)
        collector2.process(simple_subtrace("2" * 32), now=0.0)
        collector2.flush(now=100.0)
        assert backend.storage.pattern_bytes == cost

    def test_params_deduped_per_span(self):
        backend, collector = wire_single_node()
        collector.process(simple_subtrace("1" * 32, abnormal=True), now=0.0)
        size = backend.storage.params_bytes
        # Marking again must not double-store.
        collector.mark_sampled("1" * 32)
        assert backend.storage.params_bytes == size


class TestQueryStatuses:
    def test_sampled_trace_query_exact(self):
        backend, collector = wire_single_node()
        collector.process(simple_subtrace("1" * 32, abnormal=True), now=0.0)
        collector.flush(now=100.0)
        result = backend.query("1" * 32)
        assert result.status == "exact"
        assert result.trace is not None
        assert result.trace.spans[0].attributes["msg"] == "downstream timeout detected"

    def test_unsampled_trace_query_partial(self):
        config = MintConfig(edge_case_base_rate=0.0)
        backend, collector = wire_single_node(config)
        # First occurrence is edge-case sampled; use later ones.
        for i in range(1, 6):
            collector.process(simple_subtrace(f"{i:032x}"), now=float(i))
        collector.flush(now=100.0)
        result = backend.query(f"{4:032x}")
        assert result.status == "partial"
        approx = result.approximate
        assert approx is not None
        assert approx.span_count >= 1
        assert approx.segments[0].spans[0]["service"] == "catalog"

    def test_unknown_trace_query_miss(self):
        backend, collector = wire_single_node()
        collector.process(simple_subtrace("1" * 32), now=0.0)
        collector.flush(now=100.0)
        # A trace id that was never ingested is (almost surely) a miss.
        result = backend.query("e" * 32)
        assert result.status in ("miss", "partial")  # bloom fp possible
        assert result.status == "miss" or result.trace is None


class TestCrossAgentCoordination:
    def test_notify_pulls_params_from_other_nodes(self):
        backend = MintBackend()
        collectors = {}
        for node in ("node-0", "node-1"):
            agent = MintAgent(
                node=node, config=MintConfig(edge_case_base_rate=0.0)
            )
            collector = MintCollector(agent, backend.receive)
            backend.register_collector(collector)
            collectors[node] = collector
        trace = make_chain_trace(
            depth=4, trace_id="a1" * 16, nodes=("node-0", "node-1")
        )
        for sub in trace.sub_traces():
            collectors[sub.node].process(sub, now=0.0)
        # Suppose node-0 decides to sample: all nodes must upload.
        backend.notify_sampled(trace.trace_id, origin_node="node-0")
        collectors["node-0"].mark_sampled(trace.trace_id)
        result = backend.query(trace.trace_id)
        assert result.status == "exact"
        assert len(result.trace.spans) == 4

    def test_notify_idempotent(self):
        backend, collector = wire_single_node()
        collector.process(simple_subtrace("1" * 32), now=0.0)
        backend.notify_sampled("1" * 32)
        size = backend.storage.params_bytes
        backend.notify_sampled("1" * 32)
        assert backend.storage.params_bytes == size

    def test_notify_meter_charged(self):
        charges = []
        backend = MintBackend(notify_meter=lambda node, b: charges.append((node, b)))
        agent = MintAgent(node="node-0")
        collector = MintCollector(agent, backend.receive)
        backend.register_collector(collector)
        backend.notify_sampled("1" * 32, origin_node="other-node")
        assert charges and charges[0][0] == "node-0"

    def test_notify_meter_charges_each_non_origin_collector_once(self):
        charges = []
        backend = MintBackend(notify_meter=lambda node, b: charges.append((node, b)))
        nodes = [f"node-{i}" for i in range(4)]
        for node in nodes:
            backend.register_collector(MintCollector(MintAgent(node=node), backend.receive))
        backend.notify_sampled("1" * 32, origin_node="node-1")
        # One fixed-size control message per collector minus the origin.
        assert sorted(node for node, _ in charges) == ["node-0", "node-2", "node-3"]
        assert {nbytes for _, nbytes in charges} == {64}

    def test_notify_dedup_with_multiple_collectors(self):
        charges = []
        backend = MintBackend(notify_meter=lambda node, b: charges.append((node, b)))
        for node in ("node-0", "node-1", "node-2"):
            backend.register_collector(MintCollector(MintAgent(node=node), backend.receive))
        backend.notify_sampled("1" * 32, origin_node="node-0")
        first = list(charges)
        assert len(first) == 2
        # A repeat — same or different origin — must not re-charge or
        # re-notify: _notified_trace_ids dedups per trace id.
        backend.notify_sampled("1" * 32, origin_node="node-2")
        backend.notify_sampled("1" * 32)
        assert charges == first
        assert "1" * 32 in backend.storage.sampled_trace_ids

    def test_notify_marks_every_collector_sampled(self):
        backend = MintBackend()
        collectors = [
            MintCollector(MintAgent(node=f"node-{i}"), backend.receive)
            for i in range(3)
        ]
        for collector in collectors:
            backend.register_collector(collector)
        backend.notify_sampled("1" * 32, origin_node="node-0")
        # Non-origin collectors learned the decision; the origin's own
        # collector tracks it via its local sampling path instead.
        assert "1" * 32 not in collectors[0].sampled_trace_ids
        for collector in collectors[1:]:
            assert "1" * 32 in collector.sampled_trace_ids


class TestStitching:
    def test_cross_node_approximate_trace_ordered(self):
        from repro.workloads import build_onlineboutique, WorkloadDriver
        from repro.baselines import MintFramework

        mint = MintFramework(
            config=MintConfig(edge_case_base_rate=0.0), auto_warmup_traces=5
        )
        driver = WorkloadDriver(build_onlineboutique(), seed=3)
        traces = [t for _, t in driver.traces(40)]
        for i, trace in enumerate(traces):
            mint.process_trace(trace, float(i))
        mint.finalize(100.0)
        # Find an unsampled multi-node trace and check the approximate
        # reconstruction covers its services.
        for trace in traces[10:]:
            result = mint.query_full(trace.trace_id)
            if result.status != "partial":
                continue
            approx = result.approximate
            assert approx.span_count > 0
            assert trace.services & approx.services
            break
        else:  # pragma: no cover
            raise AssertionError("no partial trace found")
