"""Unit tests for the simulation substrate and analysis helpers."""

import pytest

from repro.analysis import (
    hit_breakdown,
    inter_span_commonality,
    inter_trace_commonality,
    miss_rate,
    render_table,
    top1_accuracy,
)
from repro.sim.clock import SimClock
from repro.sim.meters import Meter, OverheadLedger
from tests.conftest import make_chain_trace


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now == 5.0

    def test_no_backwards(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.advance_to(5.0) == 10.0
        assert clock.advance_to(20.0) == 20.0


class TestMeter:
    def test_totals(self):
        meter = Meter()
        meter.record(100, now=0.0)
        meter.record(50, now=61.0)
        assert meter.total_bytes == 150
        assert meter.event_count == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Meter().record(-1)

    def test_per_minute_series(self):
        meter = Meter()
        meter.record(10, now=0.0)
        meter.record(20, now=30.0)
        meter.record(30, now=90.0)
        assert meter.per_minute_series() == [(0, 30), (1, 30)]

    def test_mb_per_minute(self):
        meter = Meter()
        meter.record(2 * 1024 * 1024, now=0.0)
        meter.record(2 * 1024 * 1024, now=61.0)
        assert meter.mb_per_minute() == pytest.approx(2.0)

    def test_reset(self):
        meter = Meter()
        meter.record(5)
        meter.reset()
        assert meter.total_bytes == 0

    def test_ledger_snapshot(self):
        ledger = OverheadLedger()
        ledger.network.record(10)
        ledger.storage.record(20)
        assert ledger.as_dict() == {"network_bytes": 10, "storage_bytes": 20}


class TestCommonality:
    def test_identical_traces_full_commonality(self):
        traces = [make_chain_trace(depth=3, trace_id=f"{i:032x}") for i in range(10)]
        stats = inter_trace_commonality(traces)
        assert stats.proportion == 1.0
        assert stats.total_items == 10

    def test_mixed_corpus_partial_commonality(self):
        same = [make_chain_trace(depth=3, trace_id=f"{i:032x}") for i in range(5)]
        different = [
            make_chain_trace(depth=d, trace_id=f"{d + 100:032x}") for d in (1, 2, 4, 5)
        ]
        stats = inter_trace_commonality(same + different)
        assert 0.0 < stats.proportion < 1.0

    def test_inter_span_commonality_counts_spans(self):
        traces = [make_chain_trace(depth=3, trace_id=f"{i:032x}") for i in range(4)]
        stats = inter_span_commonality(traces)
        assert stats.total_items == 12
        assert stats.proportion > 0.0

    def test_empty_corpus(self):
        assert inter_trace_commonality([]).proportion == 0.0


class TestMetrics:
    def test_hit_breakdown(self):
        out = hit_breakdown(["exact", "partial", "partial", "miss"])
        assert out == {"exact": 1, "partial": 2, "miss": 1}

    def test_miss_rate(self):
        assert miss_rate(["miss", "exact", "miss", "partial"]) == 0.5
        assert miss_rate([]) == 0.0

    def test_top1_accuracy(self):
        assert top1_accuracy(["a", "b", None], ["a", "x", "c"]) == pytest.approx(1 / 3)
        assert top1_accuracy([], []) == 0.0


class TestReporting:
    def test_render_table_aligned(self):
        table = render_table(
            ["name", "value"], [["mint", 1.0], ["baseline", 20.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        table = render_table(["v"], [[0.123456]])
        assert "0.1235" in table
