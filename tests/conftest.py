"""Shared fixtures: small deterministic traces, workloads and streams."""

from __future__ import annotations

import pytest

from repro.model.ids import IdGenerator
from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import Trace
from repro.workloads.generator import WorkloadDriver
from repro.workloads.onlineboutique import build_onlineboutique


def make_span(
    trace_id: str = "a" * 32,
    span_id: str = "1" * 16,
    parent_id: str | None = None,
    name: str = "GET /items",
    service: str = "catalog",
    node: str = "node-0",
    kind: SpanKind = SpanKind.SERVER,
    status: SpanStatus = SpanStatus.OK,
    start_time: float = 0.0,
    duration: float = 10.0,
    attributes: dict | None = None,
) -> Span:
    """A span with sensible defaults for unit tests."""
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        service=service,
        kind=kind,
        status=status,
        start_time=start_time,
        duration=duration,
        node=node,
        attributes=attributes or {},
    )


def make_chain_trace(
    depth: int = 3,
    trace_id: str = "b" * 32,
    nodes: tuple[str, ...] = ("node-0",),
    base_attrs: dict | None = None,
) -> Trace:
    """A linear call chain trace across the given nodes (round-robin)."""
    ids = IdGenerator(seed=hash(trace_id) & 0xFFFF)
    spans: list[Span] = []
    parent: str | None = None
    for level in range(depth):
        span_id = ids.span_id()
        spans.append(
            make_span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent,
                name=f"op-{level}",
                service=f"svc-{level}",
                node=nodes[level % len(nodes)],
                start_time=float(level),
                duration=float(10 * (depth - level)),
                attributes=dict(base_attrs or {}),
            )
        )
        parent = span_id
    return Trace(trace_id=trace_id, spans=spans)


@pytest.fixture(scope="session")
def boutique_workload():
    """The OnlineBoutique workload (session-scoped; construction is pure)."""
    return build_onlineboutique()


@pytest.fixture(scope="session")
def boutique_traces(boutique_workload):
    """A small deterministic OnlineBoutique trace corpus."""
    driver = WorkloadDriver(boutique_workload, seed=42, requests_per_minute=6000)
    return [trace for _, trace in driver.traces(120)]
