"""Quickstart: trace an e-commerce workload with Mint and query it.

Runs OnlineBoutique traffic through a Mint deployment (one agent per
node, a backend built from a ``Deployment`` topology descriptor), then
demonstrates the headline property: every trace is queryable — sampled
traces exactly, the rest approximately — at a few percent of full
tracing's cost.

The ``Deployment`` is the only knob between a laptop run and a
horizontally scaled one: swap ``Deployment.single()`` for
``Deployment.sharded(4)`` and the same code runs over four backend
shards with identical query results and byte tables (the topology
invariance contract).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Deployment, MintFramework, OTFull
from repro.workloads import WorkloadDriver, build_onlineboutique

NUM_TRACES = 1500


def main() -> None:
    workload = build_onlineboutique()
    driver = WorkloadDriver(workload, seed=1, requests_per_minute=6000)

    # The paper's system; try deployment=Deployment.sharded(4).
    mint = MintFramework(deployment=Deployment.single())
    full = OTFull()                  # the no-reduction reference

    print(f"Tracing {NUM_TRACES} requests across {len(workload.nodes)} nodes...")
    traces = []
    last_now = 0.0
    for now, trace in driver.traces(NUM_TRACES):
        mint.process_trace(trace, now)
        full.process_trace(trace, now)
        traces.append(trace)
        last_now = now
    mint.finalize(last_now)

    print("\n--- overhead ---")
    print(f"OT-Full network: {full.network_bytes / 1e6:8.2f} MB   "
          f"storage: {full.storage_bytes / 1e6:8.2f} MB")
    print(f"Mint    network: {mint.network_bytes / 1e6:8.2f} MB   "
          f"storage: {mint.storage_bytes / 1e6:8.2f} MB")
    print(f"Mint costs {100 * mint.network_bytes / full.network_bytes:.1f}% of "
          f"the network and {100 * mint.storage_bytes / full.storage_bytes:.1f}% "
          f"of the storage.")

    print("\n--- queryability: every trace answers ---")
    # One batched sweep through the query plane: the cursor streams
    # results (nothing is materialised) and folds the status counts.
    outcomes = mint.query_many(t.trace_id for t in traces).statuses()
    print(f"exact hits:   {outcomes['exact']}")
    print(f"partial hits: {outcomes['partial']}")
    print(f"misses:       {outcomes['miss']}  <- Mint never loses a trace")

    # Show one exact and one approximate query result (query returns
    # the full payload: reconstructed spans or the approximate trace).
    exact_id = sorted(mint.stored_trace_ids())[0]
    result = mint.query(exact_id)
    print(f"\n--- exact trace {exact_id[:12]}... "
          f"({len(result.trace.spans)} spans, fully reconstructed) ---")
    for span in result.trace.spans[:4]:
        attrs = {k: str(v)[:40] for k, v in list(span.attributes.items())[:2]}
        print(f"  {span.service:<24} {span.name:<44} {span.duration:7.2f} ms {attrs}")

    partial_id = next(
        t.trace_id for t in traces if t.trace_id not in mint.stored_trace_ids()
    )
    result = mint.query(partial_id)
    print(f"\n--- approximate trace {partial_id[:12]}... "
          f"(variables masked, numerics bucket-mapped) ---")
    for segment in result.approximate.segments[:2]:
        for view in segment.spans[:3]:
            shown = {k: v[:38] for k, v in list(view["attributes"].items())[:2]}
            print(f"  {view['service']:<24} {view['name']:<44} "
                  f"duration {view['duration']} {shown}")


if __name__ == "__main__":
    main()
