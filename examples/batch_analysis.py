"""Batch trace analysis over approximate traces (paper UC 2).

Production analysts aggregate across *many* traces: latency scatter,
topology aggregation, per-service error rates.  Under sampling only a
few thousand spans survive per window; with Mint, unsampled traces
contribute approximate spans (execution paths + bucket-mapped
durations), multiplying the analysable population.

This example runs Mint over a *sharded* deployment
(``Deployment.sharded(2)``) to show that batch analysis is topology
blind: the merged view answers exactly like a single backend would,
so the analysis code never knows the collection plane is two boxes.

Run:  python examples/batch_analysis.py
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro import Deployment, MintFramework, OTHead
from repro.workloads import WorkloadDriver, build_onlineboutique

NUM_TRACES = 1200


def main() -> None:
    workload = build_onlineboutique()
    driver = WorkloadDriver(workload, seed=21, requests_per_minute=6000)

    mint = MintFramework(deployment=Deployment.sharded(2))
    head = OTHead(rate=0.05)

    traces = []
    last_now = 0.0
    for now, trace in driver.traces(NUM_TRACES):
        mint.process_trace(trace, now)
        head.process_trace(trace, now)
        traces.append(trace)
        last_now = now
    mint.finalize(last_now)

    # --- population available for batch analysis -----------------------
    head_spans = sum(
        len(t.spans) for t in traces if t.trace_id in head.stored_trace_ids()
    )
    mint_spans = 0
    mint_paths: Counter = Counter()
    service_durations: dict[str, list[str]] = defaultdict(list)
    for trace in traces:
        result = mint.query_full(trace.trace_id)
        if result.status == "exact":
            mint_spans += len(result.trace.spans)
            path = " -> ".join(sorted(result.trace.services))
            mint_paths[path] += 1
        elif result.status == "partial":
            approx = result.approximate
            mint_spans += approx.span_count
            mint_paths[" -> ".join(sorted(approx.services))] += 1
            for segment in approx.segments:
                for view in segment.spans:
                    if view["duration"]:
                        service_durations[view["service"]].append(view["duration"])

    print("--- spans available for batch analysis ---")
    print(f"OT-Head (5%): {head_spans:>8} spans")
    print(f"Mint:         {mint_spans:>8} spans "
          f"({mint_spans / max(1, head_spans):.1f}x more)")

    print("\n--- top execution paths (topology aggregation, Mint) ---")
    for path, count in mint_paths.most_common(3):
        print(f"  {count:>5} traces: {path[:100]}")

    print("\n--- per-service duration buckets (from approximate traces) ---")
    for service in sorted(service_durations)[:6]:
        buckets = Counter(service_durations[service])
        top = ", ".join(f"{b} x{c}" for b, c in buckets.most_common(2))
        print(f"  {service:<26} {top}")


if __name__ == "__main__":
    main()
