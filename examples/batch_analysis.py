"""Batch trace analysis over approximate traces (paper UC 2).

Production analysts aggregate across *many* traces: latency scatter,
topology aggregation, per-service error rates.  Under sampling only a
few thousand spans survive per window; with Mint, unsampled traces
contribute approximate spans (execution paths + bucket-mapped
durations), multiplying the analysable population.

This example runs Mint over a *sharded, parallel* deployment
(``Deployment.sharded(2, workers=EXAMPLE_WORKERS)``) to show that
batch analysis is topology blind twice over: the merged view answers
exactly like a single backend would, so the analysis code never knows
the collection plane is two boxes — nor that ingest ran on concurrent
worker lanes (worker-count invariance makes every number below
bit-identical at any ``workers`` setting, 0 included).  The whole
window flows through one ``query_many`` cursor — a batched
shard-fanout plan streaming results one at a time — into the Trace
Explorer's :class:`BatchAnalysis`.

Run:  python examples/batch_analysis.py
"""

from __future__ import annotations

from repro import Deployment, MintFramework, OTHead
from repro.backend.explorer import BatchAnalysis
from repro.workloads import WorkloadDriver, build_onlineboutique

NUM_TRACES = 1200
EXAMPLE_WORKERS = 2  # any value (0 = sequential) prints identical numbers


def main() -> None:
    workload = build_onlineboutique()
    driver = WorkloadDriver(workload, seed=21, requests_per_minute=6000)

    mint = MintFramework(
        deployment=Deployment.sharded(2, workers=EXAMPLE_WORKERS)
    )
    head = OTHead(rate=0.05)

    traces = []
    last_now = 0.0
    for now, trace in driver.traces(NUM_TRACES):
        mint.process_trace(trace, now)
        head.process_trace(trace, now)
        traces.append(trace)
        last_now = now
    mint.finalize(last_now)

    # --- population available for batch analysis -----------------------
    # The whole window through one batched cursor (UC 2's pipeline):
    # results stream one at a time into the Trace Explorer aggregates.
    head_spans = sum(
        len(t.spans) for t in traces if t.trace_id in head.stored_trace_ids()
    )
    analysis = BatchAnalysis.from_cursor(mint.query_many(t.trace_id for t in traces))

    print("--- spans available for batch analysis ---")
    print(f"OT-Head (5%): {head_spans:>8} spans")
    print(f"Mint:         {analysis.spans_available:>8} spans "
          f"({analysis.spans_available / max(1, head_spans):.1f}x more; "
          f"{analysis.exact_traces} exact + {analysis.partial_traces} "
          "approximate traces)")

    print("\n--- top execution paths (topology aggregation, Mint) ---")
    for path, count in analysis.top_paths[:3]:
        print(f"  {count:>5} traces: {path[:100]}")

    print("\n--- per-service duration buckets (exact + approximate spans) ---")
    for service in sorted(analysis.service_duration_buckets)[:6]:
        buckets = analysis.service_duration_buckets[service]
        top = ", ".join(f"{b} x{c}" for b, c in buckets.most_common(2))
        print(f"  {service:<26} {top}")

    mint.close()


if __name__ == "__main__":
    main()
