"""Trace compression: Mint's two-level parsing vs log compressors.

Compresses a trace corpus with LogZip, LogReducer, CLP (log-style
template compression applied to serialised spans) and Mint's
commonality+variability parsing, including the two ablations from the
paper's Table 4 — then verifies Mint's compression is lossless by
decompressing and diffing.

The same corpus is finally streamed through a deployed
``MintFramework(deployment=Deployment.single())`` — the public
Deployment API — to show the live pipeline's wire/storage bytes land
in the same regime the offline compressor predicts: the dictionary
becomes the pattern store, the residuals become sampled parameters.

Run:  python examples/trace_compression.py
"""

from __future__ import annotations

import os

from repro import Deployment, MintFramework
from repro.compression import CLPCompressor, LogReducerCompressor, LogZipCompressor, MintCompressor
from repro.model.encoding import encoded_size
from repro.workloads import WorkloadDriver, build_dataset

NUM_TRACES = int(os.environ.get("EXAMPLE_TRACES", "250"))


def main() -> None:
    workload = build_dataset("B")
    driver = WorkloadDriver(workload, seed=12)
    stream = list(driver.traces(NUM_TRACES))
    traces = [trace for _, trace in stream]
    spans = sum(len(t.spans) for t in traces)
    print(f"Corpus: {len(traces)} traces, {spans} spans (Dataset B shape)\n")

    compressors = [
        LogZipCompressor(),
        LogReducerCompressor(),
        CLPCompressor(),
        MintCompressor("no_span"),
        MintCompressor("no_trace"),
        MintCompressor("full"),
    ]
    print(f"{'compressor':<14}{'ratio':>8}{'dict KB':>10}{'residual KB':>13}")
    full_result = None
    for compressor in compressors:
        result = compressor.compress(traces)
        if compressor.name == "Mint":
            full_result = result
        print(
            f"{result.compressor:<14}{result.ratio:>8.2f}"
            f"{result.details.get('dictionary_bytes', 0) / 1024:>10.1f}"
            f"{result.details.get('residual_bytes', 0) / 1024:>13.1f}"
        )

    print("\nVerifying losslessness of Mint's compression...")
    rebuilt = {t.trace_id: t for t in MintCompressor.decompress_full(full_result)}
    for trace in traces:
        twin = rebuilt[trace.trace_id]
        original = {
            s.span_id: (s.parent_id, s.name, s.service, s.attributes)
            for s in trace.spans
        }
        restored = {
            s.span_id: (s.parent_id, s.name, s.service, s.attributes)
            for s in twin.spans
        }
        assert original == restored, trace.trace_id
    print(f"All {len(traces)} traces reconstruct exactly: topology, names, "
          "attributes and durations.")
    print(
        f"\nPattern dictionary: {full_result.details['span_patterns']} span "
        f"patterns + {full_result.details['topo_patterns']} topology patterns "
        f"describe all {spans} spans."
    )

    # The same corpus through the *deployed* pipeline (Deployment API):
    # agents parse online, the transport meters every wire byte, and the
    # backend persists patterns + Bloom filters + sampled parameters.
    mint = MintFramework(deployment=Deployment.single())
    last_now = 0.0
    for now, trace in stream:
        mint.process_trace(trace, now)
        last_now = now
    mint.finalize(last_now)
    raw = sum(encoded_size(trace) for trace in traces)
    print("\n--- the same corpus through the deployed pipeline ---")
    print(f"raw span bytes:   {raw / 1024:>9.1f} KB")
    print(f"wire (network):   {mint.network_bytes / 1024:>9.1f} KB "
          f"({100 * mint.network_bytes / raw:.1f}% of raw)")
    print(f"backend storage:  {mint.storage_bytes / 1024:>9.1f} KB "
          f"({100 * mint.storage_bytes / raw:.1f}% of raw)")


if __name__ == "__main__":
    main()
