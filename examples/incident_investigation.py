"""Incident investigation: retroactive queries + root cause analysis.

Reproduces the paper's motivating scenario (Section 2.2.2): a fault
occurs, and days later analysts query specific trace ids that no
sampling rule could have predicted.  Under '1 or 0' sampling those
queries miss; under Mint every one answers, and the retained data
drives root cause analysis to the faulty service.

This run deploys Mint through the public Deployment API — over the
*simulated network plane* with drop chaos injected, because incidents
rarely leave the network alone either: reports are batched, lost
copies are retransmitted until acknowledged, and the answers below are
identical to a lossless run (the convergence contract), with the
damage visible only on the retransmit meter.

Run:  python examples/incident_investigation.py
"""

from __future__ import annotations

import os
import random

from repro import Deployment, MintFramework, OTHead
from repro.net import CHAOS_PROFILES, CHAOS_WIRE
from repro.rca import MicroRank, TraceAnomaly, TraceRCA, views_from_traces
from repro.sim.experiment import FrameworkRun, rca_views_for_framework
from repro.workloads import (
    FaultInjector,
    FaultSpec,
    FaultType,
    TraceRecord,
    WorkloadDriver,
    build_trainticket,
    incident_window_spec,
)

NUM_TRACES = int(os.environ.get("EXAMPLE_TRACES", "1200"))
FAULTY_SERVICE = "ts-seat-service"


def main() -> None:
    workload = build_trainticket()
    driver = WorkloadDriver(workload, seed=8, requests_per_minute=9000)
    injector = FaultInjector(seed=9)
    rng = random.Random(10)

    # The standard harness wire with 15% drop chaos; retries converge.
    wire = CHAOS_WIRE.with_chaos(CHAOS_PROFILES["drop"], seed=8)
    mint = MintFramework(deployment=Deployment.single(network=wire))
    head = OTHead(rate=0.05)

    print(f"Simulating an incident: exception storm on {FAULTY_SERVICE}...")
    traces = []
    records = []          # the analysts' request log (ids + timestamps)
    last_now = 0.0
    for i, (now, trace) in enumerate(driver.traces(NUM_TRACES)):
        # Mid-run, the fault starts affecting ~1 in 10 touching requests.
        if i > NUM_TRACES // 3 and FAULTY_SERVICE in trace.services and rng.random() < 0.4:
            trace = injector.inject(
                trace, FaultSpec(FaultType.CODE_EXCEPTION, FAULTY_SERVICE)
            )
        mint.process_trace(trace, now)
        head.process_trace(trace, now)
        traces.append(trace)
        records.append(TraceRecord(trace_id=trace.trace_id, timestamp=now,
                                   is_abnormal=False))
        last_now = now
    mint.finalize(last_now)

    stats = mint.net_stats()
    totals = stats["totals"] if stats else {}
    print(f"\nThe wire dropped {totals.get('dropped', 0)} transmissions; "
          f"{totals.get('retransmits', 0)} retransmissions "
          f"({mint.retransmit_bytes / 1e3:.1f} KB on the retransmit meter) "
          "restored delivery.")

    # Days later, analysts query specific trace ids from the incident
    # window — ids nobody could have predicted at sampling time.
    lo, hi = int(NUM_TRACES * 0.42), int(NUM_TRACES * 0.58)
    window = [t.trace_id for t in traces[lo:hi]]
    queried = rng.sample(window, min(30, len(window)))
    print(f"\n--- retroactive queries ({len(queried)} ids from the incident window) ---")
    for name, framework in (("OT-Head(5%)", head), ("Mint", mint)):
        hits = sum(1 for result in framework.query_many(queried) if result.is_hit)
        print(f"{name:<12} answered {hits}/{len(queried)} queries")

    # The same investigation, declaratively: one predicate query for
    # "all error traces for the suspect service in the incident window"
    # — candidates come from the request log, the service and error
    # predicates are pushed down to the shard plans, and results
    # stream back one reconstruction at a time.
    window_start, window_end = records[lo].timestamp, records[hi].timestamp
    spec = incident_window_spec(
        records, window_start, window_end,
        service=FAULTY_SERVICE, error_only=True,
    )
    print(f"\n--- predicate query: {spec.describe()} ---")
    for name, framework in (("OT-Head(5%)", head), ("Mint", mint)):
        cursor = framework.execute(spec)
        matched = sum(1 for _ in cursor)
        print(f"{name:<12} {matched:>4} error traces for {FAULTY_SERVICE} "
              f"in the window (of {len(spec.trace_ids)} candidate requests)")

    # Root cause analysis over what each framework retained.
    print("\n--- root cause analysis (top-3 suspects) ---")
    mint_views = rca_views_for_framework(
        FrameworkRun("Mint", 0, 0, 0.0, framework=mint), traces
    )
    head_views = views_from_traces(
        t for t in traces if t.trace_id in head.stored_trace_ids()
    )
    for method in (MicroRank(), TraceRCA(), TraceAnomaly()):
        mint_top = [svc for svc, _ in method.rank(mint_views)[:3]]
        head_top = [svc for svc, _ in method.rank(head_views)[:3]]
        mint_hit = "HIT " if mint_top and mint_top[0] == FAULTY_SERVICE else "miss"
        head_hit = "HIT " if head_top and head_top[0] == FAULTY_SERVICE else "miss"
        print(f"{method.name:<13} with Mint data:    {mint_hit} {mint_top}")
        print(f"{'':<13} with OT-Head data: {head_hit} {head_top}")

    print(f"\nGround truth: {FAULTY_SERVICE}")


if __name__ == "__main__":
    main()
