"""Packaging for the Mint reproduction.

Kept as a plain ``setup.py`` (no pyproject build-system table) so
editable installs work on both modern pip (PEP 517 with the default
setuptools backend) and minimal environments without ``wheel``
(``pip install -e . --no-use-pep517``).  CI's install-based job runs
``pip install -e .`` and then the test suite with no ``PYTHONPATH``
hack.
"""

from setuptools import find_packages, setup

setup(
    name="mint-repro",
    version="0.3.0",
    description=(
        "Reproduction of Mint: cost-effective distributed tracing with "
        "pattern-based commonality/variability analysis"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # Runtime is stdlib-only by design; test/benchmark extras document
    # what CI installs on top.
    install_requires=[],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "lint": ["ruff"],
        # The cold tier's preferred codec.  Optional by contract: every
        # cold-tier code path (and the whole test suite) runs on the
        # stdlib zlib fallback codec when zstandard is absent.
        "cold": ["zstandard>=0.18"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "License :: OSI Approved :: MIT License",
        "Topic :: System :: Distributed Computing",
        "Topic :: System :: Monitoring",
    ],
)
