"""Legacy setup shim: this environment lacks the `wheel` package, so
PEP 660 editable installs fail; `pip install -e . --no-use-pep517`
(or plain `pip install -e .` on modern toolchains) uses this file."""

from setuptools import setup

setup()
