"""Fig. 2 — storage and network overhead of full tracing on 5 services.

Paper: five Alibaba services spend an average of 7,639 GB/day on trace
storage and up to 102 MB/min of reporting bandwidth under full tracing.
Here: the five sub-services run under OT-Full; we report the measured
MB/min of each and the projected GB/day at a production request rate.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import render_table
from repro.baselines import OTFull
from repro.sim.experiment import generate_stream
from repro.workloads import SUBSERVICE_SPECS, build_subservice

TRACES_PER_SERVICE = 400
PRODUCTION_REQ_PER_MIN = 80_000  # projection rate for the GB/day column


def run() -> list[list]:
    rows = []
    for name in SUBSERVICE_SPECS:
        workload = build_subservice(name)
        stream, _ = generate_stream(
            workload, TRACES_PER_SERVICE, abnormal_rate=0.0, seed=2
        )
        framework = OTFull()
        for now, trace in stream:
            framework.process_trace(trace, now)
        minutes = max(stream[-1][0] / 60.0, 1e-9)
        mb_per_min = framework.network_bytes / (1024 * 1024) / minutes
        bytes_per_trace = framework.storage_bytes / len(stream)
        gb_per_day = (
            bytes_per_trace * PRODUCTION_REQ_PER_MIN * 60 * 24 / (1024**3)
        )
        rows.append([name, round(mb_per_min, 1), round(gb_per_day, 1)])
    return rows


@pytest.mark.benchmark(group="fig02")
def test_fig02_tracing_overhead(benchmark):
    rows = once(benchmark, run)
    emit(
        "fig02_tracing_overhead",
        render_table(
            ["service", "bandwidth MB/min", "projected storage GB/day"],
            rows,
            title="Fig. 2 — overhead of full tracing (OT-Full) on 5 services",
        ),
    )
    # Shape: full tracing is costly everywhere — tens of MB/min of
    # reporting bandwidth and hundreds of GB/day at production rates.
    for _, mb_per_min, gb_per_day in rows:
        assert mb_per_min > 1.0
        assert gb_per_day > 50.0
