"""Fig. 12 — daily query hit numbers over a monitoring period.

Paper: over 14 days of Alibaba query logs, Mint answers *every* query
at least partially (Mint-Partial reaches the Total line every day) and
answers more queries exactly than any baseline; the '1 or 0' baselines
leave a large gap to the Total line.

Here: a scaled multi-day run with the biased-but-unpredictable query
model; the same seven series are reported per day.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.agent.samplers import TailSampler
from repro.analysis import render_table
from repro.baselines import Hindsight, MintFramework, OTHead, OTTail, Sieve
from repro.sim.experiment import generate_stream
from repro.workloads import QueryWorkload, TraceRecord, build_onlineboutique

DAYS = 6
TRACES_PER_DAY = 300
QUERIES_PER_DAY = 100


def run() -> list[list]:
    workload = build_onlineboutique()
    frameworks = {
        "OT-Head": OTHead(rate=0.05),
        "OT-Tail": OTTail(),
        "Sieve": Sieve(budget_rate=0.05),
        "Hindsight": Hindsight(),
        "Mint": MintFramework(auto_warmup_traces=50, extra_sampler_factories=[TailSampler]),
    }
    rows = []
    for day in range(DAYS):
        stream, targets = generate_stream(
            workload, TRACES_PER_DAY, abnormal_rate=0.05, seed=100 + day
        )
        records = []
        last_now = 0.0
        for now, trace in stream:
            for framework in frameworks.values():
                framework.process_trace(trace, now + day * 86400)
            records.append(
                TraceRecord(
                    trace_id=trace.trace_id,
                    timestamp=now,
                    is_abnormal=trace.trace_id in targets,
                )
            )
            last_now = now
        frameworks["Mint"].finalize(last_now + day * 86400)
        queries = QueryWorkload(abnormal_bias=0.6, seed=900 + day).sample_queries(
            records, QUERIES_PER_DAY
        )
        row = [day + 1, len(queries)]
        for name, framework in frameworks.items():
            hits = sum(1 for q in queries if framework.query(q).is_exact)
            row.append(hits)
        mint = frameworks["Mint"]
        partial_or_better = sum(1 for q in queries if mint.query(q).is_hit)
        row.append(partial_or_better)
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig12")
def test_fig12_query_hits(benchmark):
    rows = once(benchmark, run)
    emit(
        "fig12_query_hits",
        render_table(
            ["day", "Total", "OT-Head", "OT-Tail", "Sieve", "Hindsight",
             "Mint-Exact", "Mint-Partial"],
            rows,
            title="Fig. 12 — daily query hit numbers",
        ),
    )
    for row in rows:
        day, total, head, tail, sieve, hindsight, mint_exact, mint_partial = row
        # Mint answers every query at least partially.
        assert mint_partial == total
        # Mint answers at least as many queries exactly as any baseline.
        assert mint_exact >= max(head, tail, sieve, hindsight)
        # The '1 or 0' baselines leave a visible gap to the Total line.
        assert max(head, tail, sieve, hindsight) < total
