"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (as a text
table of the same rows/series) at laptop scale.  Results are printed
and also written to ``benchmarks/results/`` so they survive pytest's
output capture.

Scale note: the paper's corpora run to millions of traces on production
clusters; these benches use deterministic scaled-down streams.  The
assertions check the *shape* claims (who wins, by roughly what factor,
where the crossovers are), not absolute numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, func):
    """Run a heavy end-to-end experiment exactly once under timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
