"""Table 5 — pattern extraction on five Alibaba Cloud sub-services.

Paper: 79k-147k raw traces per sub-service collapse to 7-14 span-level
patterns and 3-8 trace-level patterns; the raw-to-pattern compression
ratio runs to four or five figures.

Here: the same five sub-services (S1-S5) at scaled trace counts run
through the Span Parser and Trace Parser; pattern counts must stay in
the paper's dozens-at-most band regardless of corpus size.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import render_table
from repro.baselines import MintFramework
from repro.workloads import SUBSERVICE_SPECS, WorkloadDriver, build_subservice

SCALED_TRACES = 600


def run() -> list[list]:
    rows = []
    for name, spec in SUBSERVICE_SPECS.items():
        workload = build_subservice(name)
        driver = WorkloadDriver(workload, seed=51)
        mint = MintFramework(auto_warmup_traces=60)
        last = 0.0
        for now, trace in driver.traces(SCALED_TRACES):
            mint.process_trace(trace, now)
            last = now
        mint.finalize(last)
        span_patterns = len(mint.backend.storage.span_patterns)
        topo_patterns = len(mint.backend.storage.topo_patterns)
        rows.append(
            [
                name,
                spec.raw_trace_number,
                SCALED_TRACES,
                span_patterns,
                topo_patterns,
                round(SCALED_TRACES / max(1, topo_patterns), 1),
            ]
        )
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_pattern_extraction(benchmark):
    rows = once(benchmark, run)
    emit(
        "table5_patterns",
        render_table(
            ["sub-service", "paper traces", "scaled traces",
             "span patterns", "topo patterns", "traces per topo pattern"],
            rows,
            title="Table 5 — pattern extraction per sub-service",
        ),
    )
    for _, _, traces, span_patterns, topo_patterns, _ in rows:
        # Pattern counts are dozens at most, not proportional to traces.
        assert span_patterns < 80, rows
        assert topo_patterns < 40, rows
        # Aggregation is massive: hundreds of traces per pattern.
        assert traces / topo_patterns > 15
