"""Fig. 14 — tracing overhead during 14 load tests.

Paper: three replicas of a production system (no tracing, OT-Head at
10 %, Mint at the same rate) take 14 load tests with varying QPS and
API mixes.  Ingress traffic is identical across replicas; Mint's egress
grows only 2.88 % over no-tracing vs OT-Head's 19.35 %; Mint's CPU and
memory overheads are small.

Here: the same 14 (QPS, API-count) tests drive three simulated
replicas; egress, CPU (measured wall-clock of the tracing pipeline) and
resident tracing memory are reported per test.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.agent.samplers import HeadSampler
from repro.analysis import render_table
from repro.baselines import MintFramework, OTHead
from repro.sim.loadtest import FIG14_LOAD_TESTS, run_load_test
from repro.workloads import build_trainticket

HEAD_RATE = 0.10


def mint_factory():
    # Same sampling rate as the OT-Head replica, per the paper's setup.
    return MintFramework(
        auto_warmup_traces=30,
        extra_sampler_factories=[lambda: HeadSampler(rate=HEAD_RATE, seed=5)],
    )


def run() -> list[list]:
    workload = build_trainticket()
    rows = []
    for spec in FIG14_LOAD_TESTS:
        none = run_load_test(spec, workload, None, "No-Tracing")
        head = run_load_test(
            spec, workload, lambda: OTHead(rate=HEAD_RATE), "OT-Head"
        )
        mint = run_load_test(spec, workload, mint_factory, "Mint")
        rows.append(
            [
                spec.name,
                spec.qps,
                spec.api_count,
                round(none.ingress_bytes / 1024, 0),
                round(head.egress_bytes / 1024, 0),
                round(mint.egress_bytes / 1024, 0),
                round(head.cpu_seconds, 3),
                round(mint.cpu_seconds, 3),
                round(mint.memory_bytes / 1024, 0),
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_load_tests(benchmark):
    rows = once(benchmark, run)
    emit(
        "fig14_load_tests",
        render_table(
            ["test", "QPS", "APIs", "ingress KB", "egress KB (OT-Head)",
             "egress KB (Mint)", "CPU s (OT-Head)", "CPU s (Mint)",
             "Mint tracing mem KB"],
            rows,
            title="Fig. 14 — 14 load tests, three replicas",
        ),
    )
    for row in rows:
        _, qps, apis, ingress, head_egress, mint_egress, _, _, mint_mem = row
        # Mint's egress stays well below OT-Head's (paper: 2.88 % vs
        # 19.35 % bandwidth increase over no tracing).
        assert mint_egress < head_egress, row
        # Egress is a small fraction of the ingress traffic for Mint.
        assert mint_egress < ingress * 0.30, row
        # Resident tracing state stays bounded (pattern libraries
        # converge; buffers are fixed-size).
        assert mint_mem < 6 * 1024, row
    # Ingress scales with QPS across tests (sanity of the sweep).
    ingress_by_qps = {}
    for row in rows:
        ingress_by_qps.setdefault(row[1], []).append(row[3])
    if 200 in ingress_by_qps and 1000 in ingress_by_qps:
        assert max(ingress_by_qps[1000]) > max(ingress_by_qps[200])
