"""Ingest throughput + latency measurement for the Mint agent.

One measurement = one workload streamed through per-node
:class:`MintAgent` instances (the paper's hot path: parse, mount,
buffer, sample), instrumented two ways:

* **throughput** — the whole measured stream is grouped per node and
  pushed through :meth:`MintAgent.ingest_many`; spans/sec and
  sub-traces/sec come from one wall-clock interval around the batch.
* **latency** — a second pass over fresh agents ingests trace by trace
  (the request-serving shape) and records per-trace wall latency into a
  :class:`LatencyStats` for exact p50/p99.

The first ``warmup_traces`` of the stream warm the attribute parsers
and pattern libraries before any timing starts, so the measured window
is the steady state the paper cares about: warm patterns, cold bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.agent.agent import MintAgent
from repro.agent.config import MintConfig
from repro.model.trace import SubTrace, Trace
from repro.sim.experiment import generate_stream
from repro.sim.meters import LatencyStats
from repro.workloads import build_dataset, build_onlineboutique, build_trainticket
from repro.workloads.specs import Workload

# The three workloads the paper evaluates end to end.  Alibaba uses
# dataset A of Fig. 13 (the largest topology mix of the six).
WORKLOAD_BUILDERS: dict[str, Callable[[], Workload]] = {
    "onlineboutique": build_onlineboutique,
    "trainticket": build_trainticket,
    "alibaba": lambda: build_dataset("A"),
}

DEFAULT_TRACES = 400
DEFAULT_WARMUP_TRACES = 120
# Per-workload stream scale: the measured window must sit in the warm
# steady state, so warm-up scales with the workload's vocabulary.
# TrainTicket's 45 services take several hundred traces before its
# attribute vocabularies converge; the 10-service workloads are warm
# far sooner.
WORKLOAD_SCALE: dict[str, tuple[int, int]] = {
    "onlineboutique": (400, 120),
    "trainticket": (800, 400),
    "alibaba": (400, 120),
}
# Best-of-N throughput repeats: one batch interval is tens of
# milliseconds, so a single sample is at the mercy of scheduler noise.
THROUGHPUT_REPEATS = 5


@dataclass
class IngestMeasurement:
    """One workload's numbers, in the units BENCH_ingest.json records."""

    workload: str
    traces: int
    sub_traces: int
    spans: int
    elapsed_seconds: float
    spans_per_sec: float
    sub_traces_per_sec: float
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "traces": self.traces,
            "sub_traces": self.sub_traces,
            "spans": self.spans,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "spans_per_sec": round(self.spans_per_sec, 1),
            "sub_traces_per_sec": round(self.sub_traces_per_sec, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
        }


def build_traces(
    workload_name: str, num_traces: int = DEFAULT_TRACES, seed: int = 11
) -> list[Trace]:
    """Deterministic trace stream for one named workload."""
    workload = WORKLOAD_BUILDERS[workload_name]()
    stream, _ = generate_stream(workload, num_traces, abnormal_rate=0.02, seed=seed)
    return [trace for _, trace in stream]


def _agents_for(traces: list[Trace], config: MintConfig) -> dict[str, MintAgent]:
    nodes = {span.node for trace in traces for span in trace.spans}
    return {node: MintAgent(node=node, config=config) for node in sorted(nodes)}


def _warm_up(agents: dict[str, MintAgent], traces: list[Trace]) -> None:
    per_node: dict[str, list] = {}
    for trace in traces:
        for span in trace.spans:
            per_node.setdefault(span.node, []).append(span)
    for node, spans in per_node.items():
        agents[node].warm_up(spans)
    # One untimed ingest pass over the warm-up traces populates the
    # pattern libraries and value caches: the measured window then
    # exercises the warm-pattern fast paths, not first-sight learning.
    for trace in traces:
        for sub_trace in trace.sub_traces():
            agents[sub_trace.node].ingest(sub_trace)


def _prepare(
    traces: list[Trace], warmup_traces: int
) -> tuple[list[Trace], list[Trace], dict[str, list[SubTrace]], int, int]:
    if warmup_traces >= len(traces):
        raise ValueError("warmup_traces must leave a measured window")
    warmup, measured = traces[:warmup_traces], traces[warmup_traces:]
    batches: dict[str, list[SubTrace]] = {}
    span_count = 0
    sub_trace_count = 0
    for trace in measured:
        for sub_trace in trace.sub_traces():
            batches.setdefault(sub_trace.node, []).append(sub_trace)
            sub_trace_count += 1
            span_count += len(sub_trace.spans)
    return warmup, measured, batches, span_count, sub_trace_count


def _throughput_once(
    traces: list[Trace],
    warmup: list[Trace],
    batches: dict[str, list[SubTrace]],
    config: MintConfig,
) -> float:
    """One fresh-agent warm-up plus one timed batch interval."""
    agents = _agents_for(traces, config)
    _warm_up(agents, warmup)
    started = time.perf_counter()
    for node, batch in batches.items():
        agents[node].ingest_many(batch)
    return time.perf_counter() - started


def _latency_stats(
    traces: list[Trace],
    warmup: list[Trace],
    measured: list[Trace],
    config: MintConfig,
    name: str,
) -> LatencyStats:
    agents = _agents_for(traces, config)
    _warm_up(agents, warmup)
    stats = LatencyStats(name=name)
    for trace in measured:
        t0 = time.perf_counter()
        for sub_trace in trace.sub_traces():
            agents[sub_trace.node].ingest(sub_trace)
        stats.record(time.perf_counter() - t0)
    return stats


def _measurement(
    workload_name: str,
    measured: list[Trace],
    span_count: int,
    sub_trace_count: int,
    elapsed: float,
    stats: LatencyStats,
) -> IngestMeasurement:
    return IngestMeasurement(
        workload=workload_name,
        traces=len(measured),
        sub_traces=sub_trace_count,
        spans=span_count,
        elapsed_seconds=elapsed,
        spans_per_sec=span_count / elapsed if elapsed > 0 else 0.0,
        sub_traces_per_sec=sub_trace_count / elapsed if elapsed > 0 else 0.0,
        p50_ms=stats.p50 * 1000.0,
        p99_ms=stats.p99 * 1000.0,
        mean_ms=stats.mean * 1000.0,
    )


def measure_ingest(
    workload_name: str,
    traces: list[Trace] | None = None,
    num_traces: int = DEFAULT_TRACES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    config: MintConfig | None = None,
    seed: int = 11,
) -> IngestMeasurement:
    """Measure warm-pattern ingest for one workload.

    Builds fresh agents, warms them on the stream's head, then times the
    tail — batched for throughput (best-of-N fresh-agent repeats, the
    minimum interval being the least-noise estimate), per-trace for
    latency percentiles.
    """
    config = config or MintConfig()
    traces = traces if traces is not None else build_traces(workload_name, num_traces, seed)
    warmup, measured, batches, span_count, sub_trace_count = _prepare(
        traces, warmup_traces
    )
    elapsed = float("inf")
    for _ in range(THROUGHPUT_REPEATS):
        elapsed = min(elapsed, _throughput_once(traces, warmup, batches, config))
    stats = _latency_stats(traces, warmup, measured, config, f"{workload_name}-ingest")
    return _measurement(
        workload_name, measured, span_count, sub_trace_count, elapsed, stats
    )


def measure_ingest_pair(
    workload_name: str,
    baseline_mode,
    traces: list[Trace] | None = None,
    num_traces: int = DEFAULT_TRACES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    config: MintConfig | None = None,
    seed: int = 11,
) -> tuple[IngestMeasurement, IngestMeasurement]:
    """Measure fast and baseline implementations interleaved.

    ``baseline_mode`` is a context manager (``seed_reference.seed_mode``)
    that swaps the seed hot paths in.  Fast and baseline repeats
    alternate so slow host-level drift (noisy-neighbour VMs, thermal
    throttling) hits both sides equally instead of biasing whichever
    happened to run second.
    """
    config = config or MintConfig()
    traces = traces if traces is not None else build_traces(workload_name, num_traces, seed)
    warmup, measured, batches, span_count, sub_trace_count = _prepare(
        traces, warmup_traces
    )
    fast_elapsed = float("inf")
    base_elapsed = float("inf")
    for _ in range(THROUGHPUT_REPEATS):
        fast_elapsed = min(fast_elapsed, _throughput_once(traces, warmup, batches, config))
        with baseline_mode():
            base_elapsed = min(
                base_elapsed, _throughput_once(traces, warmup, batches, config)
            )
    fast_stats = _latency_stats(
        traces, warmup, measured, config, f"{workload_name}-ingest"
    )
    with baseline_mode():
        base_stats = _latency_stats(
            traces, warmup, measured, config, f"{workload_name}-ingest-seed"
        )
    return (
        _measurement(
            workload_name, measured, span_count, sub_trace_count, fast_elapsed, fast_stats
        ),
        _measurement(
            workload_name, measured, span_count, sub_trace_count, base_elapsed, base_stats
        ),
    )
