#!/usr/bin/env python
"""Concurrent ingest benchmark entry point.

Sweeps the parallel ingest plane over (topology, lane mode, worker
count) cells on deterministic streams, verifies **worker-count
invariance** (every parallel run's byte tables, per-minute meter
series, per-shard ledgers, query signatures and stored-trace sets must
be bit-identical to the same topology's single-threaded run), records
the **scaling curve** (warm-ingest spans/sec and speedup per worker
count, both lane modes), and writes a machine-readable
``BENCH_concurrent.json`` next to this file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_concurrent_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_concurrent_bench.py --check   # invariance + scaling gate
    PYTHONPATH=src python benchmarks/perf/run_concurrent_bench.py --check --traces 150 \
        --workers 1 2 4 --repeats 1   # CI smoke shape

``--check`` exits non-zero when any parallel run diverges from its
sequential reference, when the single-worker thread lane costs more
than ``--max-overhead`` wall-clock vs sequential, or — **only when the
machine can physically show it** (``cpu_count >= --min-cores``) — when
process lanes at >= 4 workers fail to reach ``--min-speedup`` over one
worker.  On smaller runners the speedup is recorded, not gated: a
2-vCPU shared runner cannot exhibit 4-way parallelism, and a gate that
ignores that would only test the scheduler (the same philosophy as the
loose wall-clock bounds in the other CI benches).  The report always
records ``cpu_count`` so every archived number carries its context.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from concurrent_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_INGEST_EPOCH,
    DEFAULT_MODES,
    DEFAULT_SHARDS,
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    DEFAULT_WORKER_COUNTS,
    WORKLOAD_BUILDERS,
    available_cores,
    build_stream,
    measure_concurrent,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_concurrent.json"
)


def run(args) -> dict:
    """Measure every cell and assemble the report."""
    report: dict = {
        "benchmark": "concurrent",
        "units": {
            "spans_per_sec": "spans through the full pipeline per wall-clock "
            "second (warm-up + ingest + finalize, parallel lanes included)",
            "speedup": "same-topology sequential elapsed / parallel elapsed "
            "(1.0 = parity; > 1 = the lanes helped)",
        },
        "config": {
            "traces": args.traces,
            "warmup_traces": args.warmup_traces,
            "worker_counts": list(args.workers),
            "modes": list(args.modes),
            "shards": args.shards,
            "ingest_epoch": args.ingest_epoch,
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": available_cores(),
            "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
        },
        "workloads": {},
        "invariance": {},
    }
    topologies = (0, args.shards) if args.shards > 0 else (0,)
    for name in args.workloads:
        stream = build_stream(name, args.traces)
        measurements, verdicts = measure_concurrent(
            name,
            stream,
            topologies=topologies,
            worker_counts=tuple(args.workers),
            modes=tuple(args.modes),
            warmup_traces=args.warmup_traces,
            ingest_epoch=args.ingest_epoch,
            repeats=args.repeats,
        )
        report["workloads"][name] = [m.as_dict() for m in measurements]
        report["invariance"][name] = [
            {
                "topology": v.topology,
                "mode": v.mode,
                "workers": v.workers,
                "identical": v.identical,
                "violations": list(v.violations),
            }
            for v in verdicts
        ]
        for m in measurements:
            if m.workers == 0:
                print(
                    f"{name:14s} {m.topology:9s} sequential: "
                    f"{m.spans_per_sec:>9.0f} spans/s"
                )
            else:
                print(
                    f"{name:14s} {m.topology:9s} {m.mode:7s} x{m.workers}: "
                    f"{m.spans_per_sec:>9.0f} spans/s ({m.speedup:.2f}x)"
                )
    return report


def gate(report: dict, args) -> list[str]:
    """The --check verdicts over one assembled report."""
    failures: list[str] = []
    for name, verdicts in report["invariance"].items():
        for verdict in verdicts:
            if not verdict["identical"]:
                failures.append(
                    f"{name} {verdict['topology']}/{verdict['mode']}"
                    f"/x{verdict['workers']}: "
                    + "; ".join(verdict["violations"])
                )
    cores = report["config"]["cpu_count"]
    gate_speedup = cores >= args.min_cores
    for name, cells in report["workloads"].items():
        for cell in cells:
            if cell["mode"] == "thread" and cell["workers"] == 1:
                if cell["speedup"] < 1.0 / args.max_overhead:
                    failures.append(
                        f"{name} {cell['topology']}: one thread lane runs "
                        f"{1.0 / cell['speedup']:.2f}x slower than sequential "
                        f"(allowed {args.max_overhead:.2f}x)"
                    )
            if (
                gate_speedup
                and cell["mode"] == "process"
                and cell["workers"] >= 4
                and cell["speedup"] < args.min_speedup
            ):
                failures.append(
                    f"{name} {cell['topology']}: process lanes x"
                    f"{cell['workers']} reached only {cell['speedup']:.2f}x "
                    f"(need {args.min_speedup:.2f}x on {cores} cores)"
                )
    if not gate_speedup:
        print(
            f"note: {cores} usable core(s) < {args.min_cores}; scaling "
            "recorded but not gated (invariance is always gated)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=["trainticket"],
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--modes",
        nargs="+",
        default=list(DEFAULT_MODES),
        choices=["thread", "process"],
        help="lane modes to sweep",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=DEFAULT_SHARDS,
        help="shard count of the sharded topology (0 = single backend only)",
    )
    parser.add_argument("--ingest-epoch", type=int, default=DEFAULT_INGEST_EPOCH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on invariance violations, excessive single-"
        "worker overhead, or (given enough cores) insufficient speedup",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=1.8,
        help="allowed wall-clock ratio of one thread lane vs sequential",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required process-lane speedup at >= 4 workers (when gated)",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="usable cores below which the speedup gate is report-only",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(args)
    failures = gate(report, args) if args.check else []

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
