"""Sharded collection-plane scaling measurement.

One measurement = one workload's deterministic stream pushed through
the *full* Mint pipeline (agents, collectors, transports, backend) at a
given shard count, wall-clocked end to end.  The single-backend
:class:`~repro.framework.MintFramework` run over the
same stream is the reference: spans/sec ratios give the merge layer's
overhead (or benefit), and the reference's query outcomes + byte
tables give the invariance oracle every sharded run is checked
against.

Unlike ``ingest_bench`` (agent hot path only), this measures the
collection plane the sharding PR actually changes: report routing,
cross-shard pattern merge, the OR'd Bloom pre-screen and notification
broadcast all sit on the measured path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.metrics import hit_breakdown
from repro.framework import MintFramework
from repro.model.trace import Trace
from repro.query.result import QueryStatus
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads import build_dataset, build_onlineboutique, build_trainticket
from repro.workloads.specs import Workload

WORKLOAD_BUILDERS: dict[str, Any] = {
    "onlineboutique": build_onlineboutique,
    "trainticket": build_trainticket,
    "alibaba": lambda: build_dataset("A"),
}

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_TRACES = 400
DEFAULT_WARMUP_TRACES = 100
# Best-of-N wall-clock repeats, for the same reason as ingest_bench:
# one stream interval is small enough for scheduler noise to matter.
REPEATS = 3


@dataclass
class ShardedMeasurement:
    """One (workload, shard count) cell of BENCH_sharded.json."""

    workload: str
    num_shards: int
    traces: int
    spans: int
    elapsed_seconds: float
    spans_per_sec: float
    network_bytes: int
    storage_bytes: int
    shard_storage_bytes: list[int]
    shard_network_bytes: list[int]
    replicated_pattern_bytes: int
    hits: dict[str, int]

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "num_shards": self.num_shards,
            "traces": self.traces,
            "spans": self.spans,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "spans_per_sec": round(self.spans_per_sec, 1),
            "network_bytes": self.network_bytes,
            "storage_bytes": self.storage_bytes,
            "shard_storage_bytes": list(self.shard_storage_bytes),
            "shard_network_bytes": list(self.shard_network_bytes),
            "replicated_pattern_bytes": self.replicated_pattern_bytes,
            "hits": dict(self.hits),
        }


@dataclass
class InvarianceReport:
    """Outcome of checking one sharded run against the reference."""

    workload: str
    num_shards: int
    identical: bool
    violations: list[str] = field(default_factory=list)


def build_stream(
    workload_name: str, num_traces: int, seed: int = 17
) -> list[tuple[float, Trace]]:
    """Deterministic (timestamp, trace) stream for one workload."""
    workload: Workload = WORKLOAD_BUILDERS[workload_name]()
    stream, _ = generate_stream(workload, num_traces, abnormal_rate=0.02, seed=seed)
    return stream


def _drive(framework, stream) -> float:
    started = time.perf_counter()
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return time.perf_counter() - started


def query_signature(framework, stream) -> list[tuple[str, str]]:
    """(trace id, status detail) for every trace — the invariance
    oracle, and the single query sweep the hit counts derive from.

    Statuses alone understate equivalence, so exact hits also fold in
    the reconstructed span count and partial hits the segment shape.
    """
    signature: list[tuple[str, str]] = []
    for result in framework.query_many(trace.trace_id for _, trace in stream):
        detail = str(result.status)
        if result.status is QueryStatus.EXACT and result.trace is not None:
            detail += f":{len(result.trace.spans)}"
        elif result.status is QueryStatus.PARTIAL and result.approximate is not None:
            detail += ":" + ",".join(
                f"{seg.topo_pattern_id}/{seg.span_count}"
                for seg in result.approximate.segments
            )
        signature.append((result.trace_id, detail))
    return signature


def _hits_from_signature(signature: list[tuple[str, str]]) -> dict[str, int]:
    """Fold a query signature into Fig. 12-style hit counts."""
    return hit_breakdown(detail.split(":", 1)[0] for _, detail in signature)


def measure_sharded(
    workload_name: str,
    stream: list[tuple[float, Trace]],
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    repeats: int = REPEATS,
) -> tuple[dict[int, ShardedMeasurement], ShardedMeasurement, list[InvarianceReport]]:
    """Measure every shard count plus the single-backend reference.

    Returns (per-shard-count measurements, reference measurement,
    invariance reports).  Every run sees the identical stream; elapsed
    is best-of-``repeats`` with a fresh framework per repeat.
    """
    span_count = sum(len(trace.spans) for _, trace in stream)

    def reference_factory():
        return MintFramework(auto_warmup_traces=warmup_traces)

    ref_elapsed, ref_framework = best_of(reference_factory, stream, repeats)
    ref_signature = query_signature(ref_framework, stream)
    reference = _measurement(
        workload_name, 0, span_count, ref_elapsed, ref_framework,
        _hits_from_signature(ref_signature), len(stream),
    )
    ref_tables = byte_tables(ref_framework)

    measurements: dict[int, ShardedMeasurement] = {}
    reports: list[InvarianceReport] = []
    for count in shard_counts:
        def factory(count=count):
            return MintFramework(
                deployment=Deployment.sharded(count),
                auto_warmup_traces=warmup_traces,
            )

        elapsed, framework = best_of(factory, stream, repeats)
        signature = query_signature(framework, stream)
        measurements[count] = _measurement(
            workload_name, count, span_count, elapsed, framework,
            _hits_from_signature(signature), len(stream),
        )
        violations: list[str] = []
        if signature != ref_signature:
            violations.append("query results diverge from single backend")
        tables = byte_tables(framework)
        for key, value in tables.items():
            if value != ref_tables[key]:
                violations.append(
                    f"{key}: sharded {value} != reference {ref_tables[key]}"
                )
        reports.append(
            InvarianceReport(
                workload=workload_name,
                num_shards=count,
                identical=not violations,
                violations=violations,
            )
        )
    return measurements, reference, reports


def best_of(factory, stream, repeats: int):
    """Fresh-framework repeats; keep the fastest run's framework."""
    best_elapsed = float("inf")
    best_framework = None
    for _ in range(max(1, repeats)):
        framework = factory()
        elapsed = _drive(framework, stream)
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            best_framework = framework
    return best_elapsed, best_framework


def byte_tables(framework) -> dict[str, int]:
    storage = framework.backend.storage
    return {
        "network_bytes": framework.network_bytes,
        "storage_bytes": framework.storage_bytes,
        "pattern_bytes": storage.pattern_bytes,
        "bloom_bytes": storage.bloom_bytes,
        "params_bytes": storage.params_bytes,
    }


def _measurement(
    workload_name: str,
    num_shards: int,
    span_count: int,
    elapsed: float,
    framework,
    hits: dict[str, int],
    trace_count: int,
) -> ShardedMeasurement:
    if framework.deployment.is_sharded:
        rows = framework.shard_meter_rows()
        shard_storage = [row.storage_bytes for row in rows]
        shard_network = [row.network_bytes for row in rows]
        replicated = framework.backend.merged.replicated_pattern_bytes()
    else:
        shard_storage = [framework.storage_bytes]
        shard_network = [framework.network_bytes]
        replicated = 0
    return ShardedMeasurement(
        workload=workload_name,
        num_shards=num_shards,
        traces=trace_count,
        spans=span_count,
        elapsed_seconds=elapsed,
        spans_per_sec=span_count / elapsed if elapsed > 0 else 0.0,
        network_bytes=framework.network_bytes,
        storage_bytes=framework.storage_bytes,
        shard_storage_bytes=shard_storage,
        shard_network_bytes=shard_network,
        replicated_pattern_bytes=replicated,
        hits=hits,
    )
