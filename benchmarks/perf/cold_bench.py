"""Cold-tier measurement: seal transparency and the storage-ratio table.

One cell = one (workload, deployment) pair.  The deterministic stream
is ingested twice — once into a never-sealed reference, once into a
twin that compacts mid-stream and again after finalize (so its store
holds sealed segments from both halves plus a hot tail) — and the
Fig. 12-style query stream is answered by both:

* **transparency** — every point lookup and one ``query_many`` cursor
  over the sealed twin must be *bit-identical* to the reference:
  same status, same reconstructed spans, same approximate segments;
  and the logical byte tables (fig02/fig11) must not move by a byte.
  Compression is confined to the physical side of the storage split.
* **ratio** — after a final full-seal pass, the end-to-end storage
  ratio ``corpus raw bytes / physical storage bytes`` is tabled
  against the log-compressor baselines (CLP, LogZip, LogReducer) over
  the same corpus, alongside the compaction throughput and the
  trained-dictionary vs plain-codec sealed sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from query_bench import DEFAULT_WARMUP_TRACES, byte_tables, result_signature

from repro.cold import ColdPolicy, CompactionStats
from repro.cold.blocks import PARAMS_KIND, encode_params_payload
from repro.compression import (
    CLPCompressor,
    LogReducerCompressor,
    LogZipCompressor,
    corpus_raw_bytes,
)
from repro.framework import MintFramework
from repro.model.trace import Trace
from repro.transport import Deployment

DEFAULT_WORKLOADS = ("onlineboutique", "trainticket", "alibaba")
DEFAULT_DEPLOYMENTS = ("single", "sharded-4")
#: Hot tail kept through the query sweep so lookups straddle segments.
KEEP_HOT = 8


def cold_deployments() -> dict[str, Deployment]:
    return {
        "single": Deployment.single(),
        "sharded-2": Deployment.sharded(2),
        "sharded-4": Deployment.sharded(4),
    }


def drive_sealed(
    deployment: Deployment,
    stream: list[tuple[float, Trace]],
    warmup_traces: int,
) -> tuple[MintFramework, list[CompactionStats]]:
    """Ingest with a mid-stream compaction plus a straddling tail seal."""
    framework = MintFramework(
        deployment=deployment, auto_warmup_traces=warmup_traces
    )
    parts: list[CompactionStats] = []
    midpoint = len(stream) // 2
    last_now = 0.0
    for index, (now, trace) in enumerate(stream):
        if index == midpoint:
            parts.extend(framework.compact(ColdPolicy()))
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    parts.extend(
        framework.compact(
            ColdPolicy(keep_hot_traces=KEEP_HOT, keep_hot_blooms=KEEP_HOT)
        )
    )
    return framework, parts


def drive_plain(
    deployment: Deployment,
    stream: list[tuple[float, Trace]],
    warmup_traces: int,
) -> MintFramework:
    framework = MintFramework(
        deployment=deployment, auto_warmup_traces=warmup_traces
    )
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework


@dataclass
class ColdMeasurement:
    """One (workload, deployment) cell of BENCH_cold.json."""

    workload: str
    deployment: str
    queries: int
    identical: bool
    logical_bytes: int
    physical_bytes: int
    savings_bytes: int
    end_to_end_ratio: float
    sealed_ratio: float
    throughput_mb_s: float
    compaction: dict[str, Any]
    cold: dict[str, Any]
    violations: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "deployment": self.deployment,
            "queries": self.queries,
            "identical": self.identical,
            "logical_bytes": self.logical_bytes,
            "physical_bytes": self.physical_bytes,
            "savings_bytes": self.savings_bytes,
            "end_to_end_ratio": round(self.end_to_end_ratio, 3),
            "sealed_ratio": round(self.sealed_ratio, 3),
            "throughput_mb_s": round(self.throughput_mb_s, 3),
            "compaction": dict(self.compaction),
            "cold": dict(self.cold),
            "violations": list(self.violations),
        }


def measure_deployment(
    workload_name: str,
    deployment_name: str,
    deployment_factory,
    stream: list[tuple[float, Trace]],
    queries: list[str],
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
) -> tuple[ColdMeasurement, MintFramework, dict[str, int], dict[str, int]]:
    """One transparency + ratio cell.

    Returns the cell, the (fully sealed) framework, and the logical
    byte tables of the reference and the sealed twin.
    """
    violations: list[str] = []
    reference = drive_plain(deployment_factory(), stream, warmup_traces)
    sealed, parts = drive_sealed(deployment_factory(), stream, warmup_traces)

    # --- transparency: point lookups across seal boundaries ---
    for trace_id in queries:
        want = result_signature(reference.query(trace_id))
        got = result_signature(sealed.query(trace_id))
        if got != want:
            violations.append(
                f"point lookup diverges across a seal boundary for "
                f"trace {trace_id}"
            )
            break

    # --- transparency: one batch cursor over the whole stream ---
    want_batch = [result_signature(r) for r in reference.query_many(queries).all()]
    got_batch = [result_signature(r) for r in sealed.query_many(queries).all()]
    if got_batch != want_batch:
        violations.append("query_many diverges across seal boundaries")

    # --- transparency: the logical rulers must not move ---
    reference_tables = byte_tables(reference)
    sealed_tables = byte_tables(sealed)
    if sealed_tables != reference_tables:
        violations.append(
            f"logical byte tables moved under sealing "
            f"({sealed_tables} != {reference_tables})"
        )

    # --- ratio: final full seal, then the storage split ---
    parts.extend(sealed.compact(ColdPolicy()))
    merged = CompactionStats.merge([p for p in parts if p.blocks])
    logical = sealed.storage_bytes
    physical = sealed.physical_storage_bytes
    raw = corpus_raw_bytes([trace for _, trace in stream])
    cold = sealed.cold_stats()

    measurement = ColdMeasurement(
        workload=workload_name,
        deployment=deployment_name,
        queries=len(queries),
        identical=not violations,
        logical_bytes=logical,
        physical_bytes=physical,
        savings_bytes=logical - physical,
        end_to_end_ratio=raw / physical if physical else 0.0,
        sealed_ratio=merged.ratio,
        throughput_mb_s=merged.throughput_mb_s,
        compaction=merged.as_dict(),
        cold=cold,
        violations=violations,
    )
    return measurement, sealed, reference_tables, sealed_tables


def trained_vs_plain(framework: MintFramework) -> dict[str, Any]:
    """Sealed params bytes with the trained dictionary vs without.

    Decodes every sealed params block, recompresses its canonical
    payload with the same codec but no dictionary, and compares totals
    (the trained side carries the dictionary itself, for honesty).
    """
    trained = plain = dict_bytes = 0
    for engine in framework.backend.storage_engines():
        tier = engine.cold
        ids = tier.block_ids(PARAMS_KIND)
        if not ids:
            continue
        dict_bytes += tier.dict_bytes
        for block_id in ids:
            block = tier.block(block_id)
            raw = encode_params_payload(tier.decode(block_id))
            trained += len(block.payload)
            plain += len(tier.codec.compress(raw))
    return {
        "trained_bytes": trained + dict_bytes,
        "plain_bytes": plain,
        "dict_bytes": dict_bytes,
        "improvement": round(plain / (trained + dict_bytes), 3)
        if trained + dict_bytes
        else 0.0,
    }


def baseline_ratios(stream: list[tuple[float, Trace]]) -> dict[str, Any]:
    """CLP/LogZip/LogReducer over the same corpus (Table 4 style)."""
    traces = [trace for _, trace in stream]
    out: dict[str, Any] = {"raw_bytes": corpus_raw_bytes(traces)}
    for compressor in (CLPCompressor(), LogZipCompressor(), LogReducerCompressor()):
        started = time.perf_counter()
        result = compressor.compress(traces)
        out[compressor.name] = {
            "compressed_bytes": result.compressed_bytes,
            "ratio": round(result.ratio, 3),
            "elapsed_seconds": round(time.perf_counter() - started, 6),
        }
    return out
