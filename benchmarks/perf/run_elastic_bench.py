#!/usr/bin/env python
"""Elastic deployment benchmark entry point.

Drives the deterministic workload streams through the elastic plane and
writes a machine-readable ``BENCH_elastic.json`` next to this file —
the same shape discipline as ``BENCH_net.json`` — enforcing the plane's
three correctness gates:

* **(a) reshard identity** — a live ``from_n -> to_n`` migration (grow,
  shrink, and grow over the lossy simulated wire) ends bit-identical to
  a fresh deployment born at the destination shard count: byte tables,
  full query signatures, stored-trace sets and host placement, with
  every migrated byte confined to the separate ``migration`` meter;
* **(b) failover convergence** — every shard-chaos profile demonstrably
  fires (timeouts, parked reports, a mid-outage query probe), queries
  degrade instead of raising, recoverable profiles replay and match the
  no-chaos answers, and a permanent crash stays degraded with its
  undeliverable reports still parked;
* **(c) autoscale under chaos** — a Fig. 14 load shape with a mid-run
  outage must push the parked-queue depth over the autoscaler's
  threshold, trigger a live reshard, and still converge to the
  no-chaos baseline's answers.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_elastic_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_elastic_bench.py --check   # all three gates
    PYTHONPATH=src python benchmarks/perf/run_elastic_bench.py --check --traces 150 \
        --warmup-traces 50 --workloads onlineboutique --autoscale-scale 0.05  # CI smoke

``--check`` exits non-zero when any gate fails — including when a cell
looks green but the chaos evidence (parked reports, timeouts, the
mid-outage probe) shows the fault injector never actually fired.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from elastic_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_PROFILES,
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    measure_autoscale,
    measure_failover,
    measure_reshard,
)
from sharded_bench import WORKLOAD_BUILDERS  # noqa: E402  (path bootstrap above)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_elastic.json"
)


def run(
    num_traces: int,
    warmup_traces: int,
    workloads: list[str],
    profiles: tuple[str, ...],
    autoscale_scale: float,
    seed: int,
) -> dict:
    """Measure every reshard, failover and autoscale cell; assemble the report."""
    report: dict = {
        "benchmark": "elastic",
        "units": {
            "migration_bytes": "reshard traffic charged on the separate "
            "migration meter only (never the network meter or shard ledgers)",
            "peak_depth": "maximum per-shard pending-report depth the "
            "autoscaler observed (send queues + supervisor parked queues)",
        },
        "config": {
            "traces": num_traces,
            "warmup_traces": warmup_traces,
            "profiles": list(profiles),
            "autoscale_scale": autoscale_scale,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "reshard": {},
        "failover": {},
        "autoscale": {},
        "gates": {},
    }
    for name in workloads:
        reshard = measure_reshard(
            name, num_traces=num_traces, warmup_traces=warmup_traces, seed=seed
        )
        report["reshard"][name] = {cell.label: cell.as_dict() for cell in reshard}
        line = f"{name:16s} reshard:"
        for cell in reshard:
            verdict = "ok" if cell.identical else "FAIL"
            line += f"  {cell.label}={verdict} ({cell.migration_bytes}B moved)"
        print(line)

        failover = measure_failover(
            name,
            num_traces=num_traces,
            warmup_traces=warmup_traces,
            seed=seed,
            profiles=profiles,
        )
        report["failover"][name] = {cell.profile: cell.as_dict() for cell in failover}
        line = f"{name:16s} failover:"
        for cell in failover:
            verdict = "ok" if cell.converged and cell.chaos_fired else "FAIL"
            line += (
                f"  {cell.profile}={verdict} "
                f"(parked {cell.supervisor.get('parked', 0)})"
            )
        print(line)

        autoscale = measure_autoscale(name, scale=autoscale_scale, seed=seed + 4)
        report["autoscale"][name] = autoscale.as_dict()
        verdict = "ok" if autoscale.converged and autoscale.scaled else "FAIL"
        print(
            f"{name:16s} autoscale:  {autoscale.test}={verdict} "
            f"({autoscale.start_shards}->{autoscale.final_shards} shards, "
            f"peak depth {autoscale.peak_depth})"
        )

    report["gates"]["reshard_identity"] = all(
        cell["identical"]
        for by_label in report["reshard"].values()
        for cell in by_label.values()
    )
    report["gates"]["failover_convergence"] = all(
        cell["converged"] and cell["chaos_fired"]
        for by_profile in report["failover"].values()
        for cell in by_profile.values()
    )
    report["gates"]["autoscale_fired"] = all(
        cell["converged"] and cell["scaled"]
        for cell in report["autoscale"].values()
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_BUILDERS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--profiles",
        nargs="+",
        default=list(DEFAULT_PROFILES),
        choices=list(DEFAULT_PROFILES),
    )
    parser.add_argument(
        "--autoscale-scale",
        type=float,
        default=0.05,
        help="fraction of the Fig. 14 load shape's full trace volume to drive",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 when reshard identity, failover convergence or "
        "the autoscale trigger fails (or chaos evidence shows the fault "
        "injector never fired)",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        tuple(args.profiles),
        args.autoscale_scale,
        args.seed,
    )

    failures: list[str] = []
    if args.check:
        for name, by_label in report["reshard"].items():
            for label, cell in by_label.items():
                if not cell["identical"]:
                    failures.append(f"{name} reshard-{label}: {'; '.join(cell['violations'])}")
        for name, by_profile in report["failover"].items():
            for profile, cell in by_profile.items():
                if not (cell["converged"] and cell["chaos_fired"]):
                    failures.append(
                        f"{name} failover-{profile}: {'; '.join(cell['violations'])}"
                    )
        for name, cell in report["autoscale"].items():
            if not (cell["converged"] and cell["scaled"]):
                failures.append(f"{name} autoscale: {'; '.join(cell['violations'])}")

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
