"""Concurrent ingest-plane measurement.

One measurement = one workload's deterministic stream pushed through a
parallel deployment (worker lanes + single-writer apply barrier) at a
given (topology, lane mode, worker count), wall-clocked end to end.
The same topology at ``workers=0`` — the classic single-threaded loop —
is the reference: spans/sec ratios give the scaling curve, and the
reference's fingerprint (byte tables, meter series, shard ledgers,
query signature, stored-trace set; see
:mod:`repro.concurrent.verify`) is the oracle every parallel run must
match bit for bit.

Scaling context matters and is recorded rather than assumed: thread
lanes only scale on free-threaded builds (the GIL serialises parsing
otherwise), process lanes scale with physical cores, and the gate in
``run_concurrent_bench.py`` adapts to ``cpu_count`` the same way the
CI wall-clock bounds elsewhere stay loose for shared runners.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

from repro.concurrent.verify import compare_fingerprints, fingerprint
from repro.framework import MintFramework
from repro.transport import Deployment

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from sharded_bench import (  # noqa: E402  (path bootstrap above)
    WORKLOAD_BUILDERS,
    build_stream,
)

__all__ = [
    "WORKLOAD_BUILDERS",
    "build_stream",
    "ConcurrentMeasurement",
    "InvarianceVerdict",
    "available_cores",
    "measure_concurrent",
]

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_MODES = ("thread", "process")
DEFAULT_TRACES = 400
DEFAULT_WARMUP_TRACES = 100
DEFAULT_SHARDS = 4
DEFAULT_INGEST_EPOCH = 32
REPEATS = 3


def available_cores() -> int:
    """Usable CPU cores (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ConcurrentMeasurement:
    """One (workload, topology, mode, workers) cell of BENCH_concurrent."""

    workload: str
    topology: str
    mode: str
    workers: int
    traces: int
    spans: int
    elapsed_seconds: float
    spans_per_sec: float
    speedup: float  # vs the same topology's sequential reference

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "topology": self.topology,
            "mode": self.mode,
            "workers": self.workers,
            "traces": self.traces,
            "spans": self.spans,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "spans_per_sec": round(self.spans_per_sec, 1),
            "speedup": round(self.speedup, 3),
        }


@dataclass
class InvarianceVerdict:
    """Bit-identity verdict for one parallel run vs its reference."""

    workload: str
    topology: str
    mode: str
    workers: int
    identical: bool
    violations: list[str] = field(default_factory=list)


def _drive(framework: MintFramework, stream) -> float:
    import time

    started = time.perf_counter()
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return time.perf_counter() - started


def _best_of(factory, stream, repeats: int):
    """Fresh-framework repeats, keeping (and not yet closing) the fastest."""
    best_elapsed = float("inf")
    best_framework = None
    for _ in range(max(1, repeats)):
        framework = factory()
        elapsed = _drive(framework, stream)
        if elapsed < best_elapsed:
            if best_framework is not None:
                best_framework.close()
            best_elapsed, best_framework = elapsed, framework
        else:
            framework.close()
    return best_elapsed, best_framework


def _deployment(num_shards: int, workers: int, mode: str, epoch: int) -> Deployment:
    if num_shards > 0:
        return Deployment.sharded(
            num_shards, workers=workers, worker_mode=mode, ingest_epoch=epoch
        )
    return Deployment.single(workers=workers, worker_mode=mode, ingest_epoch=epoch)


def measure_concurrent(
    workload_name: str,
    stream,
    topologies: tuple[int, ...] = (0, DEFAULT_SHARDS),
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    modes: tuple[str, ...] = DEFAULT_MODES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    ingest_epoch: int = DEFAULT_INGEST_EPOCH,
    repeats: int = REPEATS,
) -> tuple[list[ConcurrentMeasurement], list[InvarianceVerdict]]:
    """Sweep every (topology, mode, workers) cell over one stream.

    ``topologies`` lists shard counts (0 = the single backend).  Each
    topology contributes its own sequential reference (``workers=0``),
    so verdicts isolate exactly what the concurrent plane changes.
    """
    span_count = sum(len(trace.spans) for _, trace in stream)
    measurements: list[ConcurrentMeasurement] = []
    verdicts: list[InvarianceVerdict] = []
    for num_shards in topologies:
        topology = "single" if num_shards == 0 else f"sharded{num_shards}"

        def reference_factory(num_shards=num_shards):
            return MintFramework(
                auto_warmup_traces=warmup_traces,
                deployment=_deployment(num_shards, 0, "thread", ingest_epoch),
            )

        ref_elapsed, reference = _best_of(reference_factory, stream, repeats)
        ref_print = fingerprint(reference, stream)
        measurements.append(
            ConcurrentMeasurement(
                workload=workload_name,
                topology=topology,
                mode="sequential",
                workers=0,
                traces=len(stream),
                spans=span_count,
                elapsed_seconds=ref_elapsed,
                spans_per_sec=span_count / ref_elapsed if ref_elapsed > 0 else 0.0,
                speedup=1.0,
            )
        )
        reference.close()

        for mode in modes:
            for workers in worker_counts:

                def factory(num_shards=num_shards, mode=mode, workers=workers):
                    return MintFramework(
                        auto_warmup_traces=warmup_traces,
                        deployment=_deployment(
                            num_shards, workers, mode, ingest_epoch
                        ),
                    )

                elapsed, framework = _best_of(factory, stream, repeats)
                violations = compare_fingerprints(
                    ref_print,
                    fingerprint(framework, stream),
                    label=f"{topology}/{mode}/workers={workers}",
                )
                framework.close()
                measurements.append(
                    ConcurrentMeasurement(
                        workload=workload_name,
                        topology=topology,
                        mode=mode,
                        workers=workers,
                        traces=len(stream),
                        spans=span_count,
                        elapsed_seconds=elapsed,
                        spans_per_sec=span_count / elapsed if elapsed > 0 else 0.0,
                        speedup=ref_elapsed / elapsed if elapsed > 0 else 0.0,
                    )
                )
                verdicts.append(
                    InvarianceVerdict(
                        workload=workload_name,
                        topology=topology,
                        mode=mode,
                        workers=workers,
                        identical=not violations,
                        violations=violations,
                    )
                )
    return measurements, verdicts
