"""Live-plane measurement: subscription identity, meter separation, storms.

Three claims the live analyst plane makes, each measured end to end:

* **identity** — a standing query accumulates, over the stream,
  exactly the hit set its spec yields as a post-hoc batch query.  A
  panel of subscriptions (error predicate, service predicate, explicit
  batch ids, a time window) rides the identical deterministic stream
  on every topology — single, sharded, and behind a lossy wire — and
  each accumulated hit set (ids *and* delivered statuses) must match
  the batch answer bit for bit.
* **separation** — push traffic is confined to the ``push`` meter.
  The same stream is driven with and without subscriptions; the
  fig02/fig11 byte tables, the per-minute network series and the full
  query signature must be bit-identical between the two runs, while
  the subscribed run's push meter is the only thing that moved.
* **storm** — the plane holds up under analyst load: the
  :mod:`repro.sim.storm` harness fires a seeded ≥1000-QPS query storm
  mid-ingest (wire latency included in every reported percentile) and
  must leave the run's fingerprint bit-identical to a quiet control.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from sharded_bench import WORKLOAD_BUILDERS, build_stream, byte_tables, query_signature

from repro.framework import MintFramework
from repro.net.chaos import CHAOS_PROFILES
from repro.net.transport import CHAOS_WIRE
from repro.query.spec import QuerySpec
from repro.sim.storm import run_storm
from repro.transport import Deployment

__all__ = [
    "DEFAULT_STORM_QPS",
    "DEFAULT_STORM_TRACES",
    "DEFAULT_TOPOLOGY_NAMES",
    "DEFAULT_TRACES",
    "LiveIdentityCell",
    "WORKLOAD_BUILDERS",
    "build_live_stream",
    "identity_sweep",
    "live_topologies",
    "run_storm_pair",
    "subscription_specs",
]

DEFAULT_TRACES = 400
DEFAULT_STORM_TRACES = 600
DEFAULT_STORM_QPS = 1000.0
#: The identity sweep's topologies: the acceptance gate's three —
#: single in-process, sharded, and single behind a *lossy* wire (drop
#: chaos), so the reliable push links are on the measured path.
DEFAULT_TOPOLOGY_NAMES = ("single", "sharded-2", "net-lossy")


def live_topologies() -> dict[str, Any]:
    """Deployment factories for the identity sweep."""
    return {
        "single": lambda: Deployment.single(),
        "sharded-2": lambda: Deployment.sharded(2),
        "net-lossy": lambda: Deployment.single(
            network=CHAOS_WIRE.with_chaos(CHAOS_PROFILES["drop"])
        ),
    }


def subscription_specs(stream) -> dict[str, QuerySpec]:
    """The standing-query panel, derived from the stream itself.

    Four spec shapes cover the registration grammar: a pure predicate
    over the whole sampled population (``error``), a predicate that
    actually filters (``service`` — the stream's most common service),
    an explicit id subscription (``batch`` — every third trace), and a
    windowed predicate over explicit candidates (``window`` — the
    stream's first half, the shape whose eager evaluation the plane
    must defer on asynchronous topologies).
    """
    ids = [trace.trace_id for _, trace in stream]
    services: Counter[str] = Counter()
    for _, trace in stream:
        services.update(trace.services)
    top_service = max(sorted(services), key=lambda svc: services[svc])
    half_time = stream[len(stream) // 2][0] if stream else 0.0
    return {
        "error": QuerySpec.where(error_only=True),
        "service": QuerySpec.where(service=top_service),
        "batch": QuerySpec.batch(ids[::3]),
        "window": QuerySpec.where(candidates=ids, time_range=(0.0, half_time)),
    }


@dataclass
class LiveIdentityCell:
    """One topology's subscription-vs-batch and separation comparison."""

    topology: str
    identical: bool
    violations: list[str] = field(default_factory=list)
    subscriptions: list[dict[str, Any]] = field(default_factory=list)
    push_bytes: int = 0
    pushes_streamed: int = 0
    pushes_settled: int = 0
    duplicates: int = 0
    dropped: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "topology": self.topology,
            "identical": self.identical,
            "violations": list(self.violations),
            "subscriptions": list(self.subscriptions),
            "push_bytes": self.push_bytes,
            "pushes_streamed": self.pushes_streamed,
            "pushes_settled": self.pushes_settled,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
        }


def _drive(factory, stream, specs) -> tuple[MintFramework, list]:
    framework = MintFramework(deployment=factory())
    subs = [framework.subscribe(spec) for spec in specs]
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework, subs


def _meter_series(framework: MintFramework) -> list[tuple[int, int]]:
    return list(framework.ledger.network.per_minute_series())


def identity_cell(name: str, factory, stream) -> LiveIdentityCell:
    """Drive one topology with and without the subscription panel.

    The subscribed run yields the accumulated hit sets (compared, ids
    and statuses both, against the same specs run post hoc); the bare
    run is the separation control — every byte table the paper's
    figures read must be identical between the two.
    """
    specs = subscription_specs(stream)
    subscribed, subs = _drive(factory, stream, specs.values())
    bare = MintFramework(deployment=factory())
    last_now = 0.0
    for now, trace in stream:
        bare.process_trace(trace, now)
        last_now = now
    bare.finalize(last_now)

    violations: list[str] = []
    rows: list[dict[str, Any]] = []
    for (label, spec), sub in zip(specs.items(), subs):
        posthoc = {
            result.trace_id: str(result.status)
            for result in subscribed.execute(spec)
            if result.is_hit
        }
        accumulated = sub.hit_statuses
        if accumulated != posthoc:
            extra = sorted(set(accumulated) - set(posthoc))
            missing = sorted(set(posthoc) - set(accumulated))
            violations.append(
                f"{label}: accumulated {len(accumulated)} hits != batch "
                f"{len(posthoc)} (extra {extra[:3]}, missing {missing[:3]})"
            )
        rows.append(
            {
                "label": label,
                "spec": spec.describe(),
                "hits": len(accumulated),
                "batch_hits": len(posthoc),
                "identical": accumulated == posthoc,
            }
        )

    tables_sub, tables_bare = byte_tables(subscribed), byte_tables(bare)
    for key, value in tables_sub.items():
        if value != tables_bare[key]:
            violations.append(
                f"{key}: subscribed {value} != bare {tables_bare[key]}"
            )
    if _meter_series(subscribed) != _meter_series(bare):
        violations.append("per-minute network series moved under subscriptions")
    if query_signature(subscribed, stream) != query_signature(bare, stream):
        violations.append("query signatures diverge under subscriptions")
    if subscribed.push_bytes <= 0:
        violations.append("push meter never charged despite delivered pushes")
    if bare.push_bytes != 0:
        violations.append(f"bare run charged {bare.push_bytes} push bytes")

    stats = subscribed.live_stats()
    cell = LiveIdentityCell(
        topology=name,
        identical=not violations,
        violations=violations,
        subscriptions=rows,
        push_bytes=subscribed.push_bytes,
        pushes_streamed=stats["pushes_streamed"],
        pushes_settled=stats["pushes_settled"],
        duplicates=stats["duplicates"],
        dropped=stats["dropped"],
    )
    subscribed.close()
    bare.close()
    return cell


def identity_sweep(stream, topology_names=DEFAULT_TOPOLOGY_NAMES):
    """The full subscription-identity sweep over the gate topologies."""
    factories = live_topologies()
    return [identity_cell(name, factories[name], stream) for name in topology_names]


def run_storm_pair(
    workload_name: str,
    num_traces: int = DEFAULT_STORM_TRACES,
    storm_qps: float = DEFAULT_STORM_QPS,
    seed: int = 23,
) -> dict[str, Any]:
    """One storm run plus its quiet control; convergence folded in."""
    storm = run_storm(
        workload_name=workload_name,
        num_traces=num_traces,
        storm_qps=storm_qps,
        seed=seed,
    )
    quiet = run_storm(
        workload_name=workload_name,
        num_traces=num_traces,
        storm_qps=0.0,
        seed=seed,
        subscribe_errors=False,
    )
    converged = storm.fingerprint == quiet.fingerprint
    report = storm.as_dict()
    # The full fingerprints stay out of the report (per-minute series
    # are bulky); the gate needs only the verdict.
    report.pop("fingerprint", None)
    report["converged"] = converged
    return report


def build_live_stream(workload_name: str, num_traces: int, seed: int = 17):
    """The identity stream (same generator as the sharded/obs benches,
    so live numbers are comparable to those suites')."""
    return build_stream(workload_name, num_traces, seed=seed)
