"""Elastic deployment measurement: reshard identity, failover, autoscale.

Three measurements back the gates of ``run_elastic_bench.py --check``:

* **Reshard bit-identity** — a live ``from_n -> to_n`` migration (one
  host per ingested trace, ingest never pausing) must leave the
  deployment bit-identical to a fresh ``Deployment.sharded(to_n)`` run
  over the same stream: byte tables, full query signatures,
  stored-trace sets and host placement — with every migrated byte
  confined to the separate ``migration`` meter.  Measured for a grow, a
  shrink, and a grow over the lossy simulated network wire.

* **Failover convergence** — under every shard-chaos profile, queries
  fired in the middle of the outage degrade (never raise, never answer
  better than healthy), and the chaos demonstrably fired (timeouts
  observed, reports parked).  Recoverable profiles (crash-restart,
  slow-shard) must replay their parked queues and reconverge to the
  no-chaos answers; the permanent crash must stay degraded while
  keeping its undeliverable reports parked rather than losing them.

* **Autoscale-under-chaos** — a Fig. 14 load shape with a mid-run
  shard outage: the parked-queue depth must trigger the queue-depth
  autoscaler, the resulting live reshard must complete, and the run
  must still converge to the no-chaos baseline's answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from sharded_bench import WORKLOAD_BUILDERS

from repro.elastic.chaos import SHARD_CHAOS_PROFILES
from repro.net.chaos import CHAOS_PROFILES
from repro.net.transport import CHAOS_WIRE, NetworkDescriptor
from repro.sim.elastic import (
    run_elastic_load_test,
    run_failover_experiment,
    run_reshard_experiment,
)
from repro.sim.loadtest import FIG14_LOAD_TESTS
from repro.workloads.specs import Workload

DEFAULT_TRACES = 300
DEFAULT_WARMUP_TRACES = 50
DEFAULT_PROFILES = tuple(sorted(SHARD_CHAOS_PROFILES))

# (label, from_shards, to_shards, wire): the standard reshard cells —
# a grow, a shrink, and a grow over the lossy batched wire.
RESHARD_CELLS: tuple[tuple[str, int, int, NetworkDescriptor | None], ...] = (
    ("grow-2to4", 2, 4, None),
    ("shrink-4to2", 4, 2, None),
    ("grow-2to4-drop-wire", 2, 4, CHAOS_WIRE.with_chaos(CHAOS_PROFILES["drop"], seed=5)),
)

# The network wire commits reports up to a batch age after enqueue, so
# outage windows for wire cells stretch over the delivery tail (ingest
# windows would end before the delayed commits ever hit them).
_WIRE_OUTAGE_FRACS = (0.3, 1.5)


@dataclass
class ReshardCell:
    """One live-reshard run checked against the fresh deployment."""

    workload: str
    label: str
    from_shards: int
    to_shards: int
    identical: bool
    violations: list[str] = field(default_factory=list)
    hosts_moved: int = 0
    migration_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "label": self.label,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "identical": self.identical,
            "violations": list(self.violations),
            "hosts_moved": self.hosts_moved,
            "migration_bytes": self.migration_bytes,
        }


def measure_reshard(
    workload_name: str,
    num_traces: int = DEFAULT_TRACES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    seed: int = 17,
    cells: tuple[tuple[str, int, int, NetworkDescriptor | None], ...] = RESHARD_CELLS,
) -> list[ReshardCell]:
    """Gate (a): live resharding is bit-identical to a fresh deployment."""
    workload: Workload = WORKLOAD_BUILDERS[workload_name]()
    results: list[ReshardCell] = []
    for label, from_shards, to_shards, network in cells:
        outcome = run_reshard_experiment(
            workload,
            from_shards=from_shards,
            to_shards=to_shards,
            num_traces=num_traces,
            seed=seed,
            auto_warmup_traces=warmup_traces,
            network=network,
        )
        results.append(
            ReshardCell(
                workload=workload_name,
                label=label,
                from_shards=from_shards,
                to_shards=to_shards,
                identical=outcome.identical,
                violations=outcome.violations,
                hosts_moved=int(outcome.migration.get("hosts_moved", 0)),
                migration_bytes=outcome.migration_bytes,
            )
        )
    return results


@dataclass
class FailoverCell:
    """One shard-chaos profile's behaviour during and after the outage."""

    workload: str
    profile: str
    recoverable: bool
    converged: bool
    chaos_fired: bool
    violations: list[str] = field(default_factory=list)
    probed_mid_outage: bool = False
    degraded_mid_outage: bool = False
    permanently_degraded: bool = False
    supervisor: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "profile": self.profile,
            "recoverable": self.recoverable,
            "converged": self.converged,
            "chaos_fired": self.chaos_fired,
            "violations": list(self.violations),
            "probed_mid_outage": self.probed_mid_outage,
            "degraded_mid_outage": self.degraded_mid_outage,
            "permanently_degraded": self.permanently_degraded,
            "supervisor": dict(self.supervisor),
        }


def _chaos_evidence(cell: FailoverCell) -> list[str]:
    """Why a green-looking failover cell cannot be trusted (if at all).

    Mirrors the net bench's evidence check: a disabled fault injector
    must fail the gate, not greenwash it."""
    missing: list[str] = []
    stats = cell.supervisor
    if not stats or stats.get("parked", 0) == 0:
        missing.append("no report was ever parked")
    if "crash" in cell.profile and stats.get("timeouts", 0) == 0:
        missing.append("no delivery ever timed out against the dead shard")
    if "crash" in cell.profile and not cell.probed_mid_outage:
        missing.append("the mid-outage query probe never ran")
    if cell.recoverable and stats.get("replayed", 0) == 0:
        missing.append("nothing was replayed after recovery")
    if not cell.recoverable and not cell.permanently_degraded:
        missing.append("a permanent crash left answers unchanged")
    return missing


def measure_failover(
    workload_name: str,
    num_traces: int = DEFAULT_TRACES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    seed: int = 17,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    network: NetworkDescriptor | None = None,
) -> list[FailoverCell]:
    """Gate (b): every chaos profile degrades gracefully and converges."""
    workload: Workload = WORKLOAD_BUILDERS[workload_name]()
    fracs = _WIRE_OUTAGE_FRACS if network is not None else (0.2, 0.5)
    results: list[FailoverCell] = []
    for profile_name in profiles:
        profile = SHARD_CHAOS_PROFILES[profile_name]
        recoverable = all(not o.is_permanent for o in profile.outages)
        outcome = run_failover_experiment(
            workload,
            profile=profile,
            num_shards=2,
            num_traces=num_traces,
            seed=seed,
            auto_warmup_traces=warmup_traces,
            network=network,
            outage_start_frac=fracs[0],
            outage_end_frac=fracs[1],
        )
        cell = FailoverCell(
            workload=workload_name,
            profile=profile_name,
            recoverable=recoverable,
            converged=outcome.converged,
            chaos_fired=True,
            violations=outcome.violations,
            probed_mid_outage=outcome.probed_mid_outage,
            degraded_mid_outage=outcome.degraded_mid_outage,
            permanently_degraded=outcome.permanently_degraded,
            supervisor=outcome.supervisor,
        )
        evidence = _chaos_evidence(cell)
        if evidence:
            cell.chaos_fired = False
            cell.violations = cell.violations + [
                f"chaos evidence missing: {reason}" for reason in evidence
            ]
        results.append(cell)
    return results


@dataclass
class AutoscaleCell:
    """One Fig. 14 load shape with chaos and the autoscaler attached."""

    workload: str
    test: str
    profile: str
    converged: bool
    scaled: bool
    violations: list[str] = field(default_factory=list)
    start_shards: int = 0
    final_shards: int = 0
    peak_depth: int = 0
    scale_events: list[dict] = field(default_factory=list)
    supervisor: dict = field(default_factory=dict)
    migration_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "test": self.test,
            "profile": self.profile,
            "converged": self.converged,
            "scaled": self.scaled,
            "violations": list(self.violations),
            "start_shards": self.start_shards,
            "final_shards": self.final_shards,
            "peak_depth": self.peak_depth,
            "scale_events": list(self.scale_events),
            "supervisor": dict(self.supervisor),
            "migration_bytes": self.migration_bytes,
        }


def measure_autoscale(
    workload_name: str,
    scale: float = 0.05,
    seed: int = 21,
    network: NetworkDescriptor | None = None,
) -> AutoscaleCell:
    """Gate (c): queue-depth pressure triggers a converging reshard."""
    workload: Workload = WORKLOAD_BUILDERS[workload_name]()
    spec = FIG14_LOAD_TESTS[4]  # T5: the 1000-qps shape
    fracs = _WIRE_OUTAGE_FRACS if network is not None else (0.2, 0.5)
    outcome = run_elastic_load_test(
        spec,
        workload,
        profile="crash_restart",
        start_shards=2,
        scale=scale,
        seed=seed,
        network=network,
        outage_start_frac=fracs[0],
        outage_end_frac=fracs[1],
    )
    return AutoscaleCell(
        workload=workload_name,
        test=spec.name,
        profile=outcome.profile,
        converged=outcome.converged,
        scaled=bool(outcome.scale_events),
        violations=outcome.violations,
        start_shards=outcome.start_shards,
        final_shards=outcome.final_shards,
        peak_depth=outcome.peak_depth,
        scale_events=outcome.scale_events,
        supervisor=outcome.supervisor,
        migration_bytes=outcome.migration_bytes,
    )
