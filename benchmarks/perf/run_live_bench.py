#!/usr/bin/env python
"""Live-plane benchmark entry point (the PR 10 subscription gate).

Registers a standing-query panel over the identical deterministic
stream on every gate topology, compares each subscription's
accumulated hit set against the same spec run post hoc, checks the
push meter's separation against a subscription-free control, fires the
seeded ≥1000-QPS analyst storm mid-ingest, and writes
``BENCH_live.json`` next to this file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_live_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_live_bench.py --check   # gates
    PYTHONPATH=src python benchmarks/perf/run_live_bench.py --check \
        --traces 200 --storm-traces 240                             # CI smoke shape

``--check`` exits non-zero when any gate fails:

* **identity** — any subscription's accumulated hit set (ids or
  delivered statuses) differs from its spec's post-hoc batch answer on
  any topology (single, sharded, behind a *lossy* wire), or no
  topology streamed a push mid-ingest (everything settling at finalize
  would make the plane a batch query in disguise);
* **separation** — any fig02/fig11 byte table, per-minute network
  series or query signature moved between the subscribed run and its
  subscription-free control, or push traffic failed to land on (and
  only on) the ``push`` meter;
* **storm** — the storm harness fell short of the target analyst QPS
  in simulated time, the host could not have executed the queries at
  that rate (wall capacity), the reported percentiles exclude the
  wire, or the storm run's fingerprint diverged from the quiet
  control's.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from live_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_STORM_QPS,
    DEFAULT_STORM_TRACES,
    DEFAULT_TOPOLOGY_NAMES,
    DEFAULT_TRACES,
    WORKLOAD_BUILDERS,
    build_live_stream,
    identity_sweep,
    run_storm_pair,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_live.json"
)


def run(args: argparse.Namespace) -> dict:
    """Assemble the full BENCH_live report."""
    report: dict = {
        "benchmark": "live",
        "units": {
            "push_bytes": "bytes charged on the transport's push meter "
            "(subscription notifications only — never the network meter)",
            "p99_ms": "99th-percentile analyst query latency in "
            "milliseconds, modeled wire round trip included",
        },
        "config": {
            "workload": args.workload,
            "traces": args.traces,
            "storm_traces": args.storm_traces,
            "storm_qps": args.storm_qps,
            "topologies": list(args.topologies),
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "identity": {},
        "storm": {},
    }

    stream = build_live_stream(args.workload, args.traces)
    for cell in identity_sweep(stream, tuple(args.topologies)):
        report["identity"][cell.topology] = cell.as_dict()
        print(
            f"identity {cell.topology:12s} "
            + (
                f"bit-identical ({cell.pushes_streamed} streamed, "
                f"{cell.pushes_settled} settled, {cell.push_bytes} push bytes)"
                if cell.identical
                else "VIOLATION: " + "; ".join(cell.violations)
            )
        )

    storm = run_storm_pair(
        args.workload,
        num_traces=args.storm_traces,
        storm_qps=args.storm_qps,
        seed=args.seed,
    )
    report["storm"] = storm
    print(
        f"storm {storm['issued']} queries @ {storm['sim_qps']:.0f} QPS sim "
        f"(capacity {storm['wall_capacity_qps']:.0f} QPS), "
        f"p99 {storm['p99_ms']:.3f}ms (wire p99 {storm['wire_p99_ms']:.3f}ms), "
        + ("converged with quiet control" if storm["converged"]
           else "DIVERGED from quiet control")
    )
    return report


def check(report: dict, storm_qps: float) -> list[str]:
    """Apply the identity / separation / storm gates."""
    failures: list[str] = []
    identity = report["identity"]
    for name, cell in identity.items():
        if not cell["identical"]:
            failures.append(f"identity {name}: {'; '.join(cell['violations'])}")
    if len(identity) < 3:
        failures.append(
            f"identity sweep covers {len(identity)} topologies, "
            "expected single + sharded + lossy-net"
        )
    if not any(cell["pushes_streamed"] > 0 for cell in identity.values()):
        failures.append(
            "no topology streamed a push mid-ingest — the plane degenerated "
            "into a finalize-time batch query"
        )
    storm = report["storm"]
    # A hair under the target is floating-point rounding on the
    # schedule's duration quotient, not a sustained-rate miss.
    if storm["sim_qps"] < storm_qps * 0.995:
        failures.append(
            f"storm sustained {storm['sim_qps']:.1f} QPS in simulated time, "
            f"target {storm_qps:.0f}"
        )
    if storm["wall_capacity_qps"] < storm_qps:
        failures.append(
            f"storm wall-clock capacity {storm['wall_capacity_qps']:.1f} QPS "
            f"below target {storm_qps:.0f} — the host cannot execute "
            "queries at the claimed rate"
        )
    if storm["wire_p99_ms"] <= 0.0:
        failures.append(
            "storm wire p99 is zero — reported latency excludes the wire"
        )
    if not storm["converged"]:
        failures.append(
            "storm fingerprint diverged from the quiet control — analyst "
            "load perturbed the figures"
        )
    sub = storm.get("subscription")
    if sub is None or sub["hits"] <= 0:
        failures.append(
            "the storm's standing error subscription accumulated no hits — "
            "the push plane was not exercised under load"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="onlineboutique",
                        choices=list(WORKLOAD_BUILDERS))
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=list(DEFAULT_TOPOLOGY_NAMES),
        choices=list(DEFAULT_TOPOLOGY_NAMES),
        help="identity-sweep topologies",
    )
    parser.add_argument("--storm-traces", type=int, default=DEFAULT_STORM_TRACES)
    parser.add_argument(
        "--storm-qps",
        type=float,
        default=DEFAULT_STORM_QPS,
        help="target analyst QPS for the storm (also the gate's floor)",
    )
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on identity/separation/storm violations",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(args)
    failures = check(report, args.storm_qps) if args.check else []

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        print("\nGATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if args.check:
        print("all live-plane gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
