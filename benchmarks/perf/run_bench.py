#!/usr/bin/env python
"""Ingest throughput benchmark entry point.

Measures warm-pattern agent ingest (spans/sec, p50/p99 per-trace
latency) over the OnlineBoutique, TrainTicket and Alibaba workloads,
re-measures the same streams under the seed implementation
(:mod:`seed_reference`), and writes a machine-readable
``BENCH_ingest.json`` next to this file so successive PRs can track the
trajectory.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # measure + write
    PYTHONPATH=src python benchmarks/perf/run_bench.py --check    # regression gate
    PYTHONPATH=src python benchmarks/perf/run_bench.py --traces 800 --quick

``--check`` exits non-zero when the fast path fails the gate: warm
ingest must stay at least ``--min-speedup`` (default 3.0) times the
seed implementation's spans/sec on every workload, and the incremental
byte estimator must agree with the JSON ruler on every measured record.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from ingest_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    WORKLOAD_BUILDERS,
    WORKLOAD_SCALE,
    build_traces,
    measure_ingest,
    measure_ingest_pair,
)
from seed_reference import seed_mode, seed_params_size_bytes  # noqa: E402

BENCH_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_ingest.json")


def verify_byte_invariant(traces) -> int:
    """Assert the fast sizer matches the JSON ruler span by span.

    Returns the number of records checked; raises AssertionError on the
    first divergence (the fast estimator must be an optimisation of the
    byte ruler, never a re-definition of it).
    """
    from repro.agent.agent import MintAgent

    agent_by_node: dict[str, MintAgent] = {}
    checked = 0
    for trace in traces:
        for sub_trace in trace.sub_traces():
            agent = agent_by_node.get(sub_trace.node)
            if agent is None:
                agent = MintAgent(node=sub_trace.node)
                agent_by_node[sub_trace.node] = agent
            result = agent.ingest(sub_trace)
            assert result.parsed is not None
            for span in result.parsed.parsed_spans:
                fast = span.params_size_bytes()
                ruler = seed_params_size_bytes(span)
                if fast != ruler:
                    raise AssertionError(
                        f"byte-accounting invariant broken for span "
                        f"{span.span_id}: fast={fast} ruler={ruler}"
                    )
                checked += 1
    return checked


def run(
    num_traces: int | None,
    warmup_traces: int | None,
    workloads: list[str],
    with_baseline: bool = True,
) -> dict:
    """Measure every workload fast and (optionally) under seed mode.

    ``num_traces``/``warmup_traces`` of None use each workload's scale
    from :data:`WORKLOAD_SCALE` (warm-up must outlast vocabulary
    convergence, which differs per workload).
    """
    report: dict = {
        "benchmark": "ingest",
        "units": {
            "spans_per_sec": "spans ingested per wall-clock second (warm patterns, batched)",
            "p50_ms/p99_ms": "per-trace agent ingest latency percentiles, milliseconds",
        },
        "config": {
            "traces": num_traces or "per-workload",
            "warmup_traces": warmup_traces or "per-workload",
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": {},
        "baseline_seed": {},
        "speedup_spans_per_sec": {},
    }
    for name in workloads:
        default_total, default_warm = WORKLOAD_SCALE.get(
            name, (DEFAULT_TRACES, DEFAULT_WARMUP_TRACES)
        )
        total = num_traces or default_total
        warm = warmup_traces or default_warm
        traces = build_traces(name, total)
        if with_baseline:
            fast, seed = measure_ingest_pair(
                name, seed_mode, traces=traces, warmup_traces=warm
            )
        else:
            fast = measure_ingest(name, traces=traces, warmup_traces=warm)
            seed = None
        report["workloads"][name] = fast.as_dict()
        line = (
            f"{name:16s} fast: {fast.spans_per_sec:>10.0f} spans/s  "
            f"p50 {fast.p50_ms:7.3f} ms  p99 {fast.p99_ms:7.3f} ms"
        )
        if seed is not None:
            report["baseline_seed"][name] = seed.as_dict()
            speedup = (
                fast.spans_per_sec / seed.spans_per_sec if seed.spans_per_sec else 0.0
            )
            report["speedup_spans_per_sec"][name] = round(speedup, 2)
            line += (
                f"  | seed: {seed.spans_per_sec:>10.0f} spans/s"
                f"  speedup {speedup:5.2f}x"
            )
        print(line)
    if with_baseline and report["speedup_spans_per_sec"]:
        speedups = report["speedup_spans_per_sec"].values()
        report["min_speedup"] = round(min(speedups), 2)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--traces", type=int, default=None, help="override per-workload trace count"
    )
    parser.add_argument(
        "--warmup-traces", type=int, default=None, help="override per-workload warm-up"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_BUILDERS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the seed-mode baseline re-measurement",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: exit 1 unless speedup >= --min-speedup on "
        "every workload and the byte-accounting invariant holds",
    )
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        with_baseline=not args.quick,
    )

    failures: list[str] = []
    if args.check:
        checked = verify_byte_invariant(build_traces(args.workloads[0], 60))
        report["byte_invariant_records_checked"] = checked
        print(f"byte-accounting invariant: {checked} records checked, all exact")
        if args.quick:
            failures.append("--check requires the seed baseline (drop --quick)")
        for name, speedup in report.get("speedup_spans_per_sec", {}).items():
            if speedup < args.min_speedup:
                failures.append(
                    f"{name}: speedup {speedup:.2f}x < required {args.min_speedup:.2f}x"
                )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
