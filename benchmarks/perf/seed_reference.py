"""Seed-equivalent hot paths, restorable via monkeypatch for baselines.

The ingest benchmark reports the fast-path speedup *measured on the same
machine, same workload, same run*.  To do that honestly, this module
keeps verbatim re-implementations of the seed repo's hot-path code —
SHA1-over-``repr`` pattern identity per span, a full JSON encode per
buffered record, the per-miss re-sort of template hit counts, and the
sha256 Bloom probe — and :class:`seed_mode` swaps them in for the
duration of the baseline measurement.

These functions are the *measurement baseline*, not product code: if the
optimised implementations change, this file stays frozen at seed
behaviour so ``BENCH_ingest.json`` keeps tracking the same trajectory.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Iterator

from repro.agent import agent as agent_mod
from repro.agent.agent import IngestResult
from repro.bloom import bloom_filter as bloom_mod
from repro.model.encoding import encoded_size
from repro.parsing import span_parser as span_mod
from repro.parsing import trace_parser as trace_mod
from repro.parsing.attribute_parser import ParsedAttribute, StringAttributeParser
from repro.parsing.span_parser import ParsedSpan, SpanParser, SpanPattern
from repro.parsing.tokenizer import tokenize
from repro.parsing.trace_parser import ParsedSubTrace


def seed_params_size_bytes(self: ParsedSpan) -> int:
    """Seed: render the whole record as JSON just to count its bytes."""
    return encoded_size(self.params_record())


def seed_pattern_id(pattern) -> str:
    """Seed: repr + SHA1 on every identity resolution."""
    return hashlib.sha1(repr(pattern).encode("utf-8")).hexdigest()[:16]


def seed_span_library_register(library, pattern: SpanPattern) -> str:
    """Seed SpanPatternLibrary.register: content hash per call."""
    pattern_id = seed_pattern_id(pattern)
    if pattern_id not in library._patterns:
        library._patterns[pattern_id] = pattern
    library._match_counts[pattern_id] = library._match_counts.get(pattern_id, 0) + 1
    return pattern_id


def seed_topo_library_register(library, pattern) -> str:
    """Seed TopoPatternLibrary.register: content hash per sub-trace.

    The running ``_total_matches`` counter is still maintained (it is
    bookkeeping, not the measured seed cost) so the edge-case sampler
    makes identical decisions in both modes — the compared runs must do
    the same logical work.
    """
    pattern_id = seed_pattern_id(pattern)
    if pattern_id not in library._patterns:
        library._patterns[pattern_id] = pattern
    library._match_counts[pattern_id] = library._match_counts.get(pattern_id, 0) + 1
    library._total_matches += 1
    return pattern_id


def seed_span_parse(self: SpanParser, span, observe_ranges: bool = True) -> ParsedSpan:
    """Seed SpanParser.parse: scope-string rebuild per attribute, fresh
    SpanPattern construction + register (one SHA1) per span."""
    entries: list[tuple[str, str, str]] = []
    params: dict = {}
    numeric_values: dict[str, float] = {}
    for key, value in sorted(span.attributes.items()):
        if key.startswith("__"):
            raise ValueError(f"attribute key {key!r} uses the reserved prefix")
        if isinstance(value, str):
            parsed = self._string_parser(self._scope(span, key)).parse(value)
            entries.append((key, parsed.kind, parsed.pattern))
            params[key] = parsed.param
        elif isinstance(value, bool):
            parsed = self._string_parser(self._scope(span, key)).parse(str(value))
            entries.append((key, parsed.kind, parsed.pattern))
            params[key] = parsed.param
        else:
            entries.append((key, "numeric", span_mod.NUMERIC_MARKER))
            params[key] = float(value)
            numeric_values[key] = float(value)
    entries.append((span_mod.DURATION_KEY, "numeric", span_mod.NUMERIC_MARKER))
    params[span_mod.DURATION_KEY] = span.duration
    numeric_values[span_mod.DURATION_KEY] = span.duration
    pattern = SpanPattern(
        name=span.name,
        service=span.service,
        kind=span.kind.value,
        status=span.status.value,
        attributes=tuple(sorted(entries)),
    )
    pattern_id = seed_span_library_register(self.library, pattern)
    if observe_ranges:
        for key, value in numeric_values.items():
            self.library.observe_numeric(pattern_id, key, value)
    return ParsedSpan(
        trace_id=span.trace_id,
        span_id=span.span_id,
        parent_id=span.parent_id,
        node=span.node,
        start_time=span.start_time,
        pattern_id=pattern_id,
        params=params,
    )


def seed_attribute_parse(self: StringAttributeParser, value: str) -> ParsedAttribute:
    """Seed StringAttributeParser.parse: template-only value memo (regex
    extraction per hit) and a full hit-count sort per hot-match probe."""
    cached = self._value_cache.get(value)
    template = cached[1] if cached is not None else None
    params: list[str] | None = None
    if template is not None:
        params = template.extract(value)
    if params is None:
        template = seed_hot_match(self, value)
        if template is not None:
            params = template.extract(value)
            if params is not None and not self._acceptable_mass(value, params):
                template, params = None, None
    if params is None:
        tokens = tokenize(value)
        template = self._tree.find_match(value, tokens)
        if template is None:
            template = self._linear_match(value)
        if template is not None:
            params = template.extract(value)
        if (
            template is None
            or params is None
            or not self._acceptable_mass(value, params)
        ):
            template = self._learn(value, tokens)
            params = template.extract(value)
    if params is None:  # pragma: no cover - matching guarantees extraction
        raise RuntimeError(f"template failed on {value!r}")
    assert template is not None
    self._hit_counts[template] = self._hit_counts.get(template, 0) + 1
    parsed = ParsedAttribute(
        key=self.key, kind="string", pattern=template.text, param=params
    )
    if len(self._value_cache) < self._VALUE_CACHE_CAP:
        # Keep the optimised cache shape so mode switches cannot corrupt
        # parser state; the seed *work* (re-extraction above) still runs.
        self._value_cache[value] = (parsed, template)
    return parsed


def seed_hot_match(self: StringAttributeParser, value: str):
    """Seed hot match: re-sort the full hit-count dict on every probe."""
    ranked = sorted(self._hit_counts.items(), key=lambda item: -item[1])[
        : self._HOT_TEMPLATES
    ]
    best = None
    for template, _ in ranked:
        if template.wildcard_count and template.matches(value):
            if best is None or template.literal_token_count > best.literal_token_count:
                best = template
    return best


def seed_total_matches(library) -> int:
    """Seed TopoPatternLibrary.total_matches: re-sum per call."""
    return sum(library._match_counts.values())


def seed_bucket_of(self, value: float):
    """Seed NumericBucketer.bucket_of: construct the Bucket every call."""
    from repro.parsing.numeric_buckets import Bucket

    if value == 0:
        return Bucket(index=0, negative=False, lower=0.0, upper=0.0)
    negative = value < 0
    magnitude = abs(value)
    index = self.index_of(magnitude)
    lower = 0.0 if index == 0 else self.gamma ** (index - 1)
    upper = self.gamma**index
    return Bucket(index=index, negative=negative, lower=lower, upper=upper)


def seed_symptom_observe(self, sub_trace, parsed) -> bool:
    """Seed SymptomSampler.observe: per-word regex loop, isinstance."""
    sampled = False
    for span in parsed.parsed_spans:
        for key, param in span.params.items():
            if isinstance(param, list):
                if seed_has_abnormal_word(self, param):
                    sampled = True
            elif key in self.numeric_keys and seed_is_numeric_outlier(
                self, f"{span.pattern_id}:{key}", float(param)
            ):
                sampled = True
    return sampled


def seed_has_abnormal_word(self, parts: list[str]) -> bool:
    for part in parts:
        lowered = part.lower()
        for pattern in self._word_patterns:
            if pattern.search(lowered):
                return True
    return False


def seed_is_numeric_outlier(self, key: str, value: float) -> bool:
    """Seed outlier check: sort the whole window every observation."""
    from collections import deque

    from repro.agent.samplers import _percentile

    window = self._windows.get(key)
    if window is None:
        window = deque(maxlen=self._window_size)
        self._windows[key] = window
    outlier = False
    if len(window) >= self.min_observations:
        threshold = _percentile(list(window), self.percentile)
        mean = sum(window) / len(window)
        outlier = value > threshold and value > 2.0 * mean
    window.append(value)
    return outlier


def seed_buffer_add(self, parsed: ParsedSpan) -> None:
    """Seed ParamsBuffer.add: block delegation + unconditional evict."""
    from repro.agent.params_buffer import ParamsBlock

    block = self._blocks.get(parsed.trace_id)
    if block is None:
        block = ParamsBlock(trace_id=parsed.trace_id)
        self._blocks[parsed.trace_id] = block
    self._used_bytes += block.add(parsed)
    self._evict_until_fits()


def seed_ingest_one(self, sub_trace, parse):
    """Seed MintAgent ingest body: dict + lambda sort per sub-trace,
    unconditional fired list, generic per-param numeric observation."""
    if sub_trace.node != self.node:
        raise ValueError(
            f"sub-trace for node {sub_trace.node!r} sent to agent {self.node!r}"
        )
    parsed_spans = {
        span.span_id: parse(span, observe_ranges=False) for span in sub_trace
    }
    topo_pattern = agent_mod.extract_topo_pattern(sub_trace, parsed_spans)
    pattern_id = self.mounted_library.register_and_mount(
        topo_pattern, sub_trace.trace_id
    )
    parsed = ParsedSubTrace(
        trace_id=sub_trace.trace_id,
        node=sub_trace.node,
        topo_pattern_id=pattern_id,
        parsed_spans=sorted(
            parsed_spans.values(), key=lambda p: (p.start_time, p.span_id)
        ),
    )
    for span in parsed.parsed_spans:
        self.params_buffer.add(span)
    fired: list[str] = []
    if self.symptom_sampler.observe(sub_trace, parsed):
        fired.append("symptom")
    if self.edge_case_sampler.observe(sub_trace, parsed):
        fired.append("edge-case")
    for sampler in self.extra_samplers:
        if sampler.observe(sub_trace, parsed):
            fired.append(type(sampler).__name__)
    if not fired:
        library = self.span_parser.library
        for span in parsed.parsed_spans:
            for key, param in span.params.items():
                if not isinstance(param, list):
                    library.observe_numeric(span.pattern_id, key, float(param))
    return IngestResult(
        trace_id=sub_trace.trace_id,
        node=self.node,
        topo_pattern_id=pattern_id,
        sampled=bool(fired),
        fired_samplers=fired,
        parsed=parsed,
    )


def seed_template_hash(self) -> int:
    """Seed StringTemplate.__hash__: re-hash the token tuple per call."""
    return hash((self.tokens,))


def seed_digest_pair(item: str) -> tuple[int, int]:
    """Seed Bloom hashing: sha256 split into two 64-bit halves."""
    digest = hashlib.sha256(item.encode("utf-8")).digest()
    return (
        int.from_bytes(digest[:8], "big"),
        int.from_bytes(digest[8:16], "big"),
    )


def seed_bloom_add(self, item: str) -> None:
    """Seed BloomFilter.add: generator of positions, shift per bit."""
    h1, h2 = seed_digest_pair(item)
    for i in range(self.hash_count):
        pos = (h1 + i * h2) % self.bit_count
        self._bits[pos // 8] |= 1 << (pos % 8)
    self._inserted += 1


def seed_bloom_contains(self, item: str) -> bool:
    h1, h2 = seed_digest_pair(item)
    return all(
        self._bits[(h1 + i * h2) % self.bit_count // 8]
        & (1 << ((h1 + i * h2) % self.bit_count % 8))
        for i in range(self.hash_count)
    )


def seed_extract_topo_pattern(sub_trace, parsed):
    """Seed topology extraction: uncached repr as the child sort key."""

    def build(span_id: str):
        children = [
            build(child.span_id) for child in sub_trace.local_children(span_id)
        ]
        children.sort(key=repr)
        return (parsed[span_id].pattern_id, tuple(children))

    entries = sub_trace.entry_spans()
    roots = tuple(sorted((build(s.span_id) for s in entries), key=repr))
    entry_ops = tuple(sorted({(s.service, s.name) for s in entries}))
    from repro.model.span import SpanKind

    exit_ops = tuple(
        sorted(
            {
                (str(s.attributes.get("peer.service", "")), s.name)
                for s in sub_trace
                if s.kind in (SpanKind.CLIENT, SpanKind.PRODUCER)
            }
        )
    )
    return trace_mod.TopoPattern(roots=roots, entry_ops=entry_ops, exit_ops=exit_ops)


_MISSING = object()


def _seed_template_text(self) -> str:
    from repro.parsing.tokenizer import detokenize

    return detokenize(list(self.tokens))


def _seed_wildcard_count(self) -> int:
    return sum(1 for t in self.tokens if t == "<*>")


def _seed_literal_token_count(self) -> int:
    return len(self.tokens) - self.wildcard_count


def _dict_setter(name):
    def setter(self, value):
        self.__dict__[name] = value

    return setter


@contextlib.contextmanager
def seed_mode() -> Iterator[None]:
    """Swap every seed hot path in for a baseline measurement.

    The baseline is commit-faithful: all paths the fast-path engine
    optimised are restored at once (identity hashing, JSON sizing,
    hot-template sort, Bloom hashing, sampler internals, bucket and
    sort-key construction), so the reported speedup compares against
    the real seed implementation, not a half-optimised hybrid.
    """
    from repro.agent.agent import MintAgent
    from repro.agent.params_buffer import ParamsBuffer
    from repro.agent.samplers import SymptomSampler
    from repro.parsing.numeric_buckets import NumericBucketer
    from repro.parsing.span_parser import SpanPatternLibrary
    from repro.parsing.string_patterns import StringTemplate
    from repro.parsing.trace_parser import TopoPatternLibrary

    patches = [
        (ParsedSpan, "params_size_bytes", seed_params_size_bytes),
        (SpanParser, "parse", seed_span_parse),
        (MintAgent, "_ingest_one", seed_ingest_one),
        (ParamsBuffer, "add", seed_buffer_add),
        (StringAttributeParser, "parse", seed_attribute_parse),
        (SpanPatternLibrary, "register", seed_span_library_register),
        (TopoPatternLibrary, "register", seed_topo_library_register),
        (TopoPatternLibrary, "total_matches", seed_total_matches),
        (NumericBucketer, "bucket_of", seed_bucket_of),
        (SymptomSampler, "observe", seed_symptom_observe),
        (SymptomSampler, "_has_abnormal_word", seed_has_abnormal_word),
        (SymptomSampler, "_is_numeric_outlier", seed_is_numeric_outlier),
        (bloom_mod.BloomFilter, "add", seed_bloom_add),
        (bloom_mod.BloomFilter, "__contains__", seed_bloom_contains),
        (agent_mod, "extract_topo_pattern", seed_extract_topo_pattern),
        (StringTemplate, "__hash__", seed_template_hash),
        # Seed recomputed these per access; readable-but-recomputing
        # properties shadow the precomputed instance attributes (the
        # setter keeps ``__post_init__`` working on new templates).
        (
            StringTemplate,
            "wildcard_count",
            property(_seed_wildcard_count, _dict_setter("wildcard_count")),
        ),
        (
            StringTemplate,
            "literal_token_count",
            property(_seed_literal_token_count, _dict_setter("literal_token_count")),
        ),
        (
            StringTemplate,
            "text",
            property(_seed_template_text, _dict_setter("text")),
        ),
    ]
    saved = [
        (target, name, target.__dict__.get(name, _MISSING))
        for target, name, _ in patches
    ]
    for target, name, value in patches:
        setattr(target, name, value)
    try:
        yield
    finally:
        for target, name, original in saved:
            if original is _MISSING:
                delattr(target, name)
            else:
                setattr(target, name, original)
