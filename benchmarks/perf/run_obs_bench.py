#!/usr/bin/env python
"""Observability benchmark entry point (the PR 9 identity + panel gate).

Drives the identical deterministic stream through obs-on and obs-off
builds of every identity topology, wall-clocks the registry's cost,
runs the fault-injected -> RCA-flagged detection-latency panel, and
writes ``BENCH_obs.json`` next to this file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_obs_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_obs_bench.py --check   # gates
    PYTHONPATH=src python benchmarks/perf/run_obs_bench.py --check --traces 200 \
        --panel-traces 200 --panel-profiles lossless drop          # CI smoke shape

``--check`` exits non-zero when any gate fails:

* **identity** — any logical byte table, per-minute meter series or
  query signature differs between the obs-on and obs-off run of any
  topology (single, sharded, behind a lossless wire), or two identical
  obs-on runs disagree on the deterministic report;
* **overhead** — the full registry costs more than ``--max-overhead``
  (default 1.05x) over the obs-off build, best-of-``--repeats``;
* **panel** — the detection-latency panel covers fewer than two
  topologies or two chaos profiles, or any cell fails to detect the
  injected fault.  Since PR 10 the panel runs twice — ``panel`` is the
  original polling probe loop, ``panel_push`` the live plane's
  standing-subscription pager — and both flavours must detect in every
  cell.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from obs_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_PANEL_PROFILES,
    DEFAULT_PANEL_TOPOLOGIES,
    DEFAULT_REPEATS,
    DEFAULT_TOPOLOGY_NAMES,
    DEFAULT_TRACES,
    WORKLOAD_BUILDERS,
    build_obs_stream,
    identity_sweep,
    measure_overhead,
    run_panel,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_obs.json"
)

DEFAULT_MAX_OVERHEAD = 1.05


def run(args: argparse.Namespace) -> dict:
    """Assemble the full BENCH_obs report."""
    report: dict = {
        "benchmark": "obs",
        "units": {
            "overhead_ratio": "obs-on wall seconds / obs-off wall seconds "
            "over the identical stream (best-of-repeats, fresh framework "
            "per repeat); 1.0 means observation is free",
            "detection_latency_s": "simulated seconds from the first "
            "faulty trace entering the system to the first probe whose "
            "RCA top-1 names the target service",
        },
        "config": {
            "workload": args.workload,
            "traces": args.traces,
            "repeats": args.repeats,
            "topologies": list(args.topologies),
            "panel_topologies": list(args.panel_topologies),
            "panel_profiles": list(args.panel_profiles),
            "panel_traces": args.panel_traces,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "identity": {},
        "overhead": {},
        "panel": [],
        "panel_push": [],
    }

    stream = build_obs_stream(args.workload, args.traces)
    for cell in identity_sweep(stream, tuple(args.topologies)):
        report["identity"][cell.topology] = cell.as_dict()
        print(
            f"identity {cell.topology:12s} "
            + ("bit-identical" if cell.identical else "VIOLATION: "
               + "; ".join(cell.violations))
        )

    overhead = measure_overhead(stream, repeats=args.repeats)
    report["overhead"] = overhead
    print(
        f"overhead {overhead['overhead_ratio']:.4f}x "
        f"({overhead['obs_on_seconds']:.3f}s on / "
        f"{overhead['obs_off_seconds']:.3f}s off, "
        f"{overhead['live_instruments']} live instruments)"
    )

    # Both pager flavours over the identical grid: the polling loop
    # (the PR 9 baseline) and the live plane's push subscription, so
    # BENCH_obs records detection latency side by side per cell.
    for key, probe_mode in (("panel", "poll"), ("panel_push", "push")):
        report[key] = run_panel(
            args.workload,
            topologies=tuple(args.panel_topologies),
            profiles=tuple(args.panel_profiles),
            num_traces=args.panel_traces,
            seed=args.seed,
            probe_mode=probe_mode,
        )
        for cell in report[key]:
            latency = cell["detection_latency_s"]
            print(
                f"panel[{probe_mode}] {cell['topology']:>10s} {cell['profile']:>9s} "
                f"target={cell['target_service']:<24s} "
                + (f"detected in {latency:.3f}s" if cell["detected"]
                   else "NOT DETECTED")
            )
    return report


def check(report: dict, max_overhead: float) -> list[str]:
    """Apply the identity / overhead / panel gates."""
    failures: list[str] = []
    for name, cell in report["identity"].items():
        if not cell["identical"]:
            failures.append(f"identity {name}: {'; '.join(cell['violations'])}")
    if len(report["identity"]) < 3:
        failures.append(
            f"identity sweep covers {len(report['identity'])} topologies, "
            "expected single + sharded + lossless-net"
        )
    ratio = report["overhead"].get("overhead_ratio", float("inf"))
    if ratio > max_overhead:
        failures.append(
            f"overhead: obs-on costs {ratio:.4f}x obs-off "
            f"(bound {max_overhead:.2f}x)"
        )
    for key in ("panel", "panel_push"):
        panel = report.get(key, [])
        topologies = {cell["topology"] for cell in panel}
        profiles = {cell["profile"] for cell in panel}
        if len(topologies) < 2 or len(profiles) < 2:
            failures.append(
                f"{key} covers {len(topologies)} topologies x {len(profiles)} "
                "profiles, expected at least 2 x 2"
            )
        for cell in panel:
            if not cell["detected"]:
                failures.append(
                    f"{key} {cell['topology']}/{cell['profile']}: fault on "
                    f"{cell['target_service']} never detected"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="onlineboutique",
                        choices=list(WORKLOAD_BUILDERS))
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=list(DEFAULT_TOPOLOGY_NAMES),
        choices=list(DEFAULT_TOPOLOGY_NAMES),
        help="identity-sweep topologies",
    )
    parser.add_argument(
        "--panel-topologies",
        nargs="+",
        default=list(DEFAULT_PANEL_TOPOLOGIES),
        help="detection-panel topologies (single, sharded-N)",
    )
    parser.add_argument(
        "--panel-profiles",
        nargs="+",
        default=list(DEFAULT_PANEL_PROFILES),
        help="detection-panel chaos profiles",
    )
    parser.add_argument("--panel-traces", type=int, default=240)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=DEFAULT_MAX_OVERHEAD,
        help="gate: maximum obs-on/obs-off wall-clock ratio",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on identity/overhead/panel violations",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(args)
    failures = check(report, args.max_overhead) if args.check else []

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        print("\nGATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if args.check:
        print("all observability gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
