"""Observability-plane measurement: identity, overhead, detection panel.

Three claims the obs PR makes, each measured end to end:

* **identity** — observation changes nothing it observes.  The same
  deterministic stream is driven through obs-on and obs-off builds of
  each topology; the logical byte tables, the per-minute meter series
  and the full query signature must match bit for bit.  The
  instrumentation reads clocks and counts events — it never pumps the
  event scheduler — so any divergence is a seam violation, not noise.
* **overhead** — the full metrics registry is cheap enough to leave on.
  Best-of-N wall-clock repeats of the identical stream, obs-on over
  obs-off, on the single-backend build (the configuration with the
  least non-instrumentation work to hide behind).
* **detection panel** — the plane answers the question it exists for:
  how long from fault injection to the RCA suite naming the faulty
  service, per topology x chaos profile (the fig15-style panel, via
  :mod:`repro.sim.incident`).

Two obs-on runs of the same seeded stream must also produce identical
*deterministic* reports (wall durations stripped, counts kept) — the
replayability contract the test suite pins per component and this
bench pins end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from sharded_bench import (
    WORKLOAD_BUILDERS,
    best_of,
    build_stream,
    byte_tables,
    query_signature,
)

from repro.framework import MintFramework
from repro.net.transport import CHAOS_WIRE
from repro.obs import deterministic_report
from repro.sim.incident import (
    DEFAULT_PROFILES,
    DEFAULT_TOPOLOGIES,
    detection_latency_panel,
)
from repro.transport import Deployment

__all__ = [
    "DEFAULT_PANEL_PROFILES",
    "DEFAULT_PANEL_TOPOLOGIES",
    "DEFAULT_REPEATS",
    "DEFAULT_TOPOLOGY_NAMES",
    "DEFAULT_TRACES",
    "IdentityCell",
    "WORKLOAD_BUILDERS",
    "identity_sweep",
    "measure_overhead",
    "obs_topologies",
    "run_panel",
]

DEFAULT_TRACES = 400
DEFAULT_REPEATS = 3
#: The identity sweep's topologies: plain single, sharded, and single
#: behind a batching wire (lossless — the wire whose obs-on/off
#: equivalence must be exact; lossy wires are covered by the panel).
DEFAULT_TOPOLOGY_NAMES = ("single", "sharded-2", "net-lossless")
DEFAULT_PANEL_TOPOLOGIES = DEFAULT_TOPOLOGIES
DEFAULT_PANEL_PROFILES = DEFAULT_PROFILES


def obs_topologies() -> dict[str, Any]:
    """Deployment factories for the identity sweep, parameterised on
    the observability switch."""
    return {
        "single": lambda obs: Deployment.single(observability=obs),
        "sharded-2": lambda obs: Deployment.sharded(2, observability=obs),
        "net-lossless": lambda obs: Deployment.single(
            network=CHAOS_WIRE, observability=obs
        ),
    }


@dataclass
class IdentityCell:
    """One topology's obs-on vs obs-off comparison."""

    topology: str
    identical: bool
    deterministic_replay: bool
    violations: list[str] = field(default_factory=list)
    byte_tables: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "topology": self.topology,
            "identical": self.identical,
            "deterministic_replay": self.deterministic_replay,
            "violations": list(self.violations),
            "byte_tables": dict(self.byte_tables),
            "counters": dict(self.counters),
        }


def _meter_series(framework: MintFramework) -> dict[str, list[tuple[int, int]]]:
    ledger = framework.ledger
    return {
        "network_per_minute": list(ledger.network.per_minute_series()),
        "storage_per_minute": list(ledger.storage.per_minute_series()),
    }


def _counter_summary(framework: MintFramework) -> dict[str, int]:
    """The obs-on run's counters, flattened for the report."""
    snapshot = framework.observer.snapshot(deterministic=True)
    return dict(snapshot["counters"])


def _drive_fresh(deployment_factory, obs: bool, stream) -> MintFramework:
    framework = MintFramework(deployment=deployment_factory(obs))
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework


def identity_cell(name: str, deployment_factory, stream) -> IdentityCell:
    """Drive obs-on, obs-off and an obs-on replay; compare everything.

    The obs-on/off comparison is the no-perturbation gate; the obs-on
    replay pins the deterministic report (two identical seeded runs,
    bit-identical sim-domain snapshots).
    """
    on = _drive_fresh(deployment_factory, True, stream)
    off = _drive_fresh(deployment_factory, False, stream)
    replay = _drive_fresh(deployment_factory, True, stream)
    # Snapshot the replay pair *before* the signature sweep below runs
    # queries against ``on`` — queries are themselves observed (query
    # counters, plan totals), so a post-sweep snapshot of ``on`` would
    # compare a queried run against an unqueried one.
    deterministic_replay = deterministic_report(on) == deterministic_report(replay)

    violations: list[str] = []
    tables_on, tables_off = byte_tables(on), byte_tables(off)
    for key, value in tables_on.items():
        if value != tables_off[key]:
            violations.append(f"{key}: obs-on {value} != obs-off {tables_off[key]}")
    if _meter_series(on) != _meter_series(off):
        violations.append("per-minute meter series diverge between obs-on and obs-off")
    if query_signature(on, stream) != query_signature(off, stream):
        violations.append("query signatures diverge between obs-on and obs-off")
    if not deterministic_replay:
        violations.append(
            "two identical obs-on runs produced different deterministic reports"
        )
    cell = IdentityCell(
        topology=name,
        identical=not violations,
        deterministic_replay=deterministic_replay,
        violations=violations,
        byte_tables=tables_on,
        counters=_counter_summary(on),
    )
    on.close()
    off.close()
    replay.close()
    return cell


def identity_sweep(
    stream, topology_names=DEFAULT_TOPOLOGY_NAMES
) -> list[IdentityCell]:
    """The full obs-on == obs-off sweep over the identity topologies."""
    factories = obs_topologies()
    return [
        identity_cell(name, factories[name], stream) for name in topology_names
    ]


def measure_overhead(stream, repeats: int = DEFAULT_REPEATS) -> dict[str, Any]:
    """Wall-clock cost of leaving the full registry on.

    Best-of-``repeats`` with a fresh framework per repeat, obs-off
    first.  Measured on the plain single-backend build: no wire, no
    shards — the configuration where instrumentation is the largest
    fraction of the work, so the ratio is the conservative one.
    """
    span_count = sum(len(trace.spans) for _, trace in stream)
    off_elapsed, _ = best_of(
        lambda: MintFramework(deployment=Deployment.single(observability=False)),
        stream,
        repeats,
    )
    on_elapsed, on_framework = best_of(
        lambda: MintFramework(deployment=Deployment.single(observability=True)),
        stream,
        repeats,
    )
    instruments = (
        len(list(on_framework.observer.registry.instruments()))
        if on_framework.observer.registry is not None
        else 0
    )
    return {
        "traces": len(stream),
        "spans": span_count,
        "repeats": repeats,
        "obs_off_seconds": round(off_elapsed, 6),
        "obs_on_seconds": round(on_elapsed, 6),
        "overhead_ratio": round(on_elapsed / off_elapsed, 4) if off_elapsed else 0.0,
        "obs_on_spans_per_sec": round(span_count / on_elapsed, 1) if on_elapsed else 0.0,
        "live_instruments": instruments,
    }


def run_panel(
    workload_name: str,
    topologies=DEFAULT_PANEL_TOPOLOGIES,
    profiles=DEFAULT_PANEL_PROFILES,
    num_traces: int = 240,
    seed: int = 11,
    probe_mode: str = "poll",
) -> list[dict[str, Any]]:
    """The detection-latency panel, as report-ready dicts.

    ``probe_mode`` selects the analyst's pager: ``poll`` is the
    original fixed-cadence probe loop, ``push`` rides the live plane's
    standing error subscription — the bench runs both side by side so
    the report shows what push delivery buys per cell.
    """
    return [
        cell.as_dict()
        for cell in detection_latency_panel(
            workload_name=workload_name,
            topologies=tuple(topologies),
            profiles=tuple(profiles),
            num_traces=num_traces,
            seed=seed,
            probe_mode=probe_mode,
        )
    ]


def build_obs_stream(workload_name: str, num_traces: int, seed: int = 17):
    """The identity/overhead stream (same generator as the sharded
    bench, so obs numbers are comparable to that suite's)."""
    return build_stream(workload_name, num_traces, seed=seed)
