#!/usr/bin/env python
"""Query-plane benchmark entry point (the PR 5 bit-identity gate).

Drives the Fig. 12-style query stream through the unified query plane
on every deployment topology — single backend, sharded 1/2/4, lossless
simulated network — and writes ``BENCH_query.json`` next to this file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_query_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_query_bench.py --check   # gates
    PYTHONPATH=src python benchmarks/perf/run_query_bench.py --check --traces 150 \
        --workloads onlineboutique --deployments single sharded-2 \
        --repeats 2 --min-batch-speedup 0.8   # CI smoke shape

``--check`` exits non-zero when any of the gates fail:

* **bit-identity** — new-API point lookups differ from the reference
  querier's answers (status, reconstructed spans, approximate
  segments) on any deployment, or ``query_many`` differs from the
  looped lookups, or the fig02/fig11 byte tables differ across
  deployments;
* **batch throughput** — ``query_many`` is slower than looped
  point lookups (``--min-batch-speedup``, default 1.0);
* **pre-screen pushdown** — a sharded run's batch plan pruned zero
  stored-filter probes (the OR'd Bloom pre-screen must demonstrably
  fire);
* **predicate contract** — the declarative incident query yields a
  non-hit or an out-of-window candidate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from query_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    DEFAULT_WORKLOADS,
    REPEATS,
    WORKLOAD_BUILDERS,
    build_query_stream,
    byte_tables,
    default_deployments,
    measure_deployment,
    predicate_smoke,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_query.json"
)


def run(
    num_traces: int,
    warmup_traces: int,
    workloads: list[str],
    deployment_names: list[str],
    repeats: int,
) -> dict:
    """Measure every (workload, deployment) cell and assemble the report."""
    deployments = default_deployments()
    report: dict = {
        "benchmark": "query",
        "units": {
            "point_qps": "new-API point lookups per second (looped)",
            "batch_qps": "queries per second through one query_many cursor",
            "batch_speedup": "point elapsed / batch elapsed over the same "
            "ids (>= 1.0 means batching amortises)",
            "plan": "batch plan counters: stored-filter probes made vs "
            "pruned by the Bloom pre-screen pushdown",
        },
        "config": {
            "traces": num_traces,
            "warmup_traces": warmup_traces,
            "deployments": list(deployment_names),
            "repeats": repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": {},
        "byte_tables": {},
        "predicate": {},
    }
    for name in workloads:
        stream, queries = build_query_stream(name, num_traces)
        cells: dict = {}
        tables: dict = {}
        for depl_name in deployment_names:
            measurement, framework, _ = measure_deployment(
                name,
                depl_name,
                deployments[depl_name],
                stream,
                queries,
                warmup_traces=warmup_traces,
                repeats=repeats,
            )
            cells[depl_name] = measurement.as_dict()
            tables[depl_name] = byte_tables(framework)
            if depl_name == deployment_names[0]:
                report["predicate"][name] = predicate_smoke(framework, stream)
            print(
                f"{name:16s} {depl_name:12s} "
                f"point: {measurement.point_qps:>8.0f} q/s  "
                f"batch: {measurement.batch_qps:>8.0f} q/s "
                f"({measurement.batch_speedup:.2f}x)  "
                f"pruned: {measurement.plan['filters_pruned']}"
                + ("" if measurement.identical else "  IDENTITY-VIOLATION")
            )
        report["workloads"][name] = cells
        report["byte_tables"][name] = tables
    return report


def check(report: dict, min_batch_speedup: float) -> list[str]:
    """Apply the gates to an assembled report."""
    failures: list[str] = []
    for workload, cells in report["workloads"].items():
        reference_tables = None
        for depl_name, cell in cells.items():
            label = f"{workload} {depl_name}"
            if not cell["identical"]:
                failures.append(f"{label}: {'; '.join(cell['violations'])}")
            if cell["batch_speedup"] < min_batch_speedup:
                failures.append(
                    f"{label}: batch speedup {cell['batch_speedup']:.2f}x < "
                    f"required {min_batch_speedup:.2f}x"
                )
            if depl_name.startswith("sharded") and cell["plan"]["filters_pruned"] <= 0:
                failures.append(
                    f"{label}: Bloom pre-screen pruned no shard probes "
                    "(pushdown did not fire)"
                )
            tables = report["byte_tables"][workload][depl_name]
            if reference_tables is None:
                reference_tables = tables
            elif tables != reference_tables:
                failures.append(
                    f"{label}: byte tables diverge across deployments "
                    f"({tables} != {reference_tables})"
                )
    for workload, smoke in report["predicate"].items():
        if not smoke["contract_ok"]:
            failures.append(f"{workload}: predicate query contract violated")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--deployments",
        nargs="+",
        default=list(default_deployments()),
        choices=list(default_deployments()),
        help="deployment topologies to sweep",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on identity/throughput/pushdown violations",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.0,
        help="required query_many speedup over looped point lookups",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        args.deployments,
        args.repeats,
    )

    failures = check(report, args.min_batch_speedup) if args.check else []

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
