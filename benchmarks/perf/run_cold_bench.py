#!/usr/bin/env python
"""Cold-tier benchmark entry point (the PR 8 transparency + ratio gate).

Seals cold segments mid-stream and after finalize, replays the Fig. 12
query stream against a never-sealed reference on every deployment
topology, tables the end-to-end storage ratio against the log-
compressor baselines, and writes ``BENCH_cold.json`` next to this
file.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_cold_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_cold_bench.py --check   # gates
    PYTHONPATH=src python benchmarks/perf/run_cold_bench.py --check --traces 160 \
        --workloads onlineboutique --deployments single sharded-4   # CI smoke shape

``--check`` exits non-zero when any gate fails:

* **transparency** — any point lookup or ``query_many`` answer over
  the sealed store differs from the never-sealed reference, or a
  logical byte table moves by a byte (compression must stay confined
  to the physical side of the storage split), or the logical tables
  diverge across deployments;
* **compression** — sealing saved no physical bytes, or the trained
  dictionary does not beat the same codec without a dictionary on the
  sealed params blocks;
* **ratio** — the end-to-end storage ratio (corpus raw bytes over
  physical storage bytes) falls below the best of CLP, LogZip and
  LogReducer on any workload.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from cold_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_DEPLOYMENTS,
    DEFAULT_WORKLOADS,
    baseline_ratios,
    cold_deployments,
    measure_deployment,
    trained_vs_plain,
)
from query_bench import (  # noqa: E402
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    WORKLOAD_BUILDERS,
    build_query_stream,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_cold.json"
)


def run(
    num_traces: int,
    warmup_traces: int,
    workloads: list[str],
    deployment_names: list[str],
) -> dict:
    """Measure every (workload, deployment) cell and assemble the report."""
    deployments = cold_deployments()
    report: dict = {
        "benchmark": "cold",
        "units": {
            "end_to_end_ratio": "corpus raw bytes / physical storage bytes "
            "after a full seal (higher is better; the baselines' ratio "
            "divides the same numerator by their compressed bytes)",
            "sealed_ratio": "logical store-time charges / compressed block "
            "bytes over the sealed segments alone",
            "throughput_mb_s": "logical MB sealed per second of compaction "
            "wall clock",
            "trained_vs_plain": "sealed params bytes with the trained "
            "dictionary (dictionary included) vs the same codec without "
            "one; improvement > 1.0 means the dictionary pays for itself",
        },
        "config": {
            "traces": num_traces,
            "warmup_traces": warmup_traces,
            "deployments": list(deployment_names),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": {},
        "byte_tables": {},
        "baselines": {},
        "trained_vs_plain": {},
    }
    for name in workloads:
        stream, queries = build_query_stream(name, num_traces)
        report["baselines"][name] = baseline_ratios(stream)
        cells: dict = {}
        tables: dict = {}
        for depl_name in deployment_names:
            measurement, framework, _, sealed_tables = measure_deployment(
                name,
                depl_name,
                lambda depl_name=depl_name: deployments[depl_name],
                stream,
                queries,
                warmup_traces=warmup_traces,
            )
            cells[depl_name] = measurement.as_dict()
            tables[depl_name] = sealed_tables
            if depl_name == deployment_names[0]:
                report["trained_vs_plain"][name] = trained_vs_plain(framework)
            print(
                f"{name:16s} {depl_name:12s} "
                f"ratio: {measurement.end_to_end_ratio:>7.2f}x  "
                f"sealed: {measurement.sealed_ratio:>5.2f}x  "
                f"compaction: {measurement.throughput_mb_s:>6.2f} MB/s"
                + ("" if measurement.identical else "  IDENTITY-VIOLATION")
            )
        report["workloads"][name] = cells
        report["byte_tables"][name] = tables
    return report


def check(report: dict) -> list[str]:
    """Apply the gates to an assembled report."""
    failures: list[str] = []
    for workload, cells in report["workloads"].items():
        best_baseline = max(
            entry["ratio"]
            for key, entry in report["baselines"][workload].items()
            if isinstance(entry, dict)
        )
        reference_tables = None
        for depl_name, cell in cells.items():
            label = f"{workload} {depl_name}"
            if not cell["identical"]:
                failures.append(f"{label}: {'; '.join(cell['violations'])}")
            if cell["savings_bytes"] <= 0:
                failures.append(
                    f"{label}: sealing saved no physical bytes "
                    f"({cell['physical_bytes']} physical vs "
                    f"{cell['logical_bytes']} logical)"
                )
            if cell["end_to_end_ratio"] < best_baseline:
                failures.append(
                    f"{label}: end-to-end ratio {cell['end_to_end_ratio']:.2f}x "
                    f"below the best log-compressor baseline "
                    f"({best_baseline:.2f}x)"
                )
            tables = report["byte_tables"][workload][depl_name]
            if reference_tables is None:
                reference_tables = tables
            elif tables != reference_tables:
                failures.append(
                    f"{label}: logical byte tables diverge across "
                    f"deployments ({tables} != {reference_tables})"
                )
        trained = report["trained_vs_plain"][workload]
        if trained["trained_bytes"] >= trained["plain_bytes"]:
            failures.append(
                f"{workload}: trained dictionary did not beat the plain "
                f"codec ({trained['trained_bytes']} vs "
                f"{trained['plain_bytes']} bytes)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--deployments",
        nargs="+",
        default=list(DEFAULT_DEPLOYMENTS),
        choices=list(cold_deployments()),
        help="deployment topologies to sweep",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on transparency/compression/ratio violations",
    )
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        args.deployments,
    )

    failures = check(report) if args.check else []

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        print("\nGATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    if args.check:
        print("all cold-tier gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
