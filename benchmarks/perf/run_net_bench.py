#!/usr/bin/env python
"""Simulated network plane benchmark entry point.

Drives the deterministic workload streams over the network plane and
writes a machine-readable ``BENCH_net.json`` next to this file — the
same shape discipline as ``BENCH_ingest.json`` / ``BENCH_sharded.json``
— enforcing the plane's two correctness gates:

* **(a) lossless equivalence** — the default (instantaneous, lossless)
  ``NetTransport`` is bit-identical to ``LocalTransport`` on byte
  tables, per-minute meter series, per-shard ledgers and full query
  signatures, for the single backend and shard counts 1/2/4;
* **(b) chaos convergence** — under every seeded drop / duplicate /
  delay / partition profile with retries enabled, query results and
  byte tables converge to the lossless answer, the overhead lands only
  on the retransmit meter, and the chaos demonstrably fired.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_net_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_net_bench.py --check   # both gates
    PYTHONPATH=src python benchmarks/perf/run_net_bench.py --check --traces 150 \
        --workloads onlineboutique --topologies 0 2   # CI smoke shape

``--check`` exits non-zero when either gate fails, or when the lossless
plane's wall-clock overhead over ``LocalTransport`` exceeds
``--max-overhead`` on any cell (the event scheduler must stay cheap).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from net_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_PROFILES,
    DEFAULT_TOPOLOGIES,
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    WORKLOAD_BUILDERS,
    build_stream,
    measure_convergence,
    measure_equivalence,
)

BENCH_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_net.json")


def run(
    num_traces: int,
    warmup_traces: int,
    workloads: list[str],
    topologies: tuple[int, ...],
    profiles: tuple[str, ...],
    repeats: int,
    seed: int,
) -> dict:
    """Measure every equivalence and convergence cell; assemble the report."""
    report: dict = {
        "benchmark": "net",
        "units": {
            "net_overhead": "lossless NetTransport elapsed / LocalTransport "
            "elapsed over the identical stream (1.0 = free plane)",
            "retransmit_bytes": "redundant wire bytes (retransmissions + chaos "
            "duplicates), charged on the separate retransmit meter only",
        },
        "config": {
            "traces": num_traces,
            "warmup_traces": warmup_traces,
            "topologies": list(topologies),
            "profiles": list(profiles),
            "repeats": repeats,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "equivalence": {},
        "convergence": {},
        "gates": {},
    }
    for name in workloads:
        stream = build_stream(name, num_traces)
        equivalence, local_reference = measure_equivalence(
            name,
            stream,
            topologies=topologies,
            warmup_traces=warmup_traces,
            repeats=repeats,
        )
        report["equivalence"][name] = {
            cell.topology: cell.as_dict() for cell in equivalence
        }
        line = f"{name:16s} equivalence:"
        for cell in equivalence:
            verdict = "ok" if cell.identical else "FAIL"
            line += f"  {cell.topology}={verdict} ({cell.net_overhead:.2f}x)"
        print(line)

        convergence = measure_convergence(
            name,
            stream,
            profiles=profiles,
            warmup_traces=warmup_traces,
            seed=seed,
            reference=local_reference,
        )
        report["convergence"][name] = {
            cell.profile: cell.as_dict() for cell in convergence
        }
        line = f"{name:16s} convergence:"
        for cell in convergence:
            verdict = "ok" if cell.converged and cell.chaos_fired else "FAIL"
            line += f"  {cell.profile}={verdict} (retx {cell.retransmit_bytes}B)"
        print(line)

    report["gates"]["lossless_equivalence"] = all(
        cell["identical"]
        for by_topology in report["equivalence"].values()
        for cell in by_topology.values()
    )
    report["gates"]["chaos_convergence"] = all(
        cell["converged"] and cell["chaos_fired"]
        for by_profile in report["convergence"].values()
        for cell in by_profile.values()
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_BUILDERS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--topologies",
        type=int,
        nargs="+",
        default=list(DEFAULT_TOPOLOGIES),
        help="0 = single backend, N >= 1 = shard count",
    )
    parser.add_argument(
        "--profiles",
        nargs="+",
        default=list(DEFAULT_PROFILES),
        choices=list(DEFAULT_PROFILES),
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 when lossless equivalence or chaos convergence "
        "fails, or when net overhead exceeds --max-overhead",
    )
    parser.add_argument("--max-overhead", type=float, default=1.75)
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        tuple(args.topologies),
        tuple(args.profiles),
        args.repeats,
        args.seed,
    )

    failures: list[str] = []
    if args.check:
        for name, by_topology in report["equivalence"].items():
            for topology, cell in by_topology.items():
                if not cell["identical"]:
                    failures.append(
                        f"{name} {topology}: {'; '.join(cell['violations'])}"
                    )
                elif cell["net_overhead"] > args.max_overhead:
                    failures.append(
                        f"{name} {topology}: net overhead "
                        f"{cell['net_overhead']:.2f}x > allowed "
                        f"{args.max_overhead:.2f}x"
                    )
        for name, by_profile in report["convergence"].items():
            for profile, cell in by_profile.items():
                if not (cell["converged"] and cell["chaos_fired"]):
                    failures.append(
                        f"{name} chaos-{profile}: {'; '.join(cell['violations'])}"
                    )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
