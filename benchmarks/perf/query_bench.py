"""Query-plane measurement: bit-identity and batch amortisation.

One cell = one (workload, deployment) pair: the deterministic stream is
ingested once, then a Fig. 12-style query stream (biased-but-
unpredictable draws from the day's request log) is answered three ways
and cross-checked:

* **reference** — the pre-redesign path: the backend's live
  :class:`~repro.backend.querier.Querier` (the merged-view querier on
  sharded deployments), called id by id;
* **point** — the new API's point lookups
  (``QueryEngine.query``), which must be *bit-identical* to the
  reference: same status, same reconstructed spans, same approximate
  segments, for every id, on every deployment topology;
* **batch** — one ``query_many`` cursor over the whole stream, which
  must yield the identical result sequence while amortising the
  per-shard filter scans (the throughput gate: batch >= looped point
  lookups, with the Bloom pre-screen verifiably pruning shard probes
  on sharded runs).

Byte tables (fig02/fig11) are read after the query sweeps and checked
identical across deployments — querying must never move a meter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from sharded_bench import WORKLOAD_BUILDERS

from repro.analysis.metrics import hit_breakdown
from repro.framework import MintFramework
from repro.model.trace import Trace
from repro.query.result import QueryResult
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads.queries import QueryWorkload, TraceRecord, incident_window_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.planner import PlanStats

DEFAULT_TRACES = 400
DEFAULT_WARMUP_TRACES = 100
DEFAULT_WORKLOADS = ("onlineboutique", "trainticket")
REPEATS = 3


def default_deployments() -> dict[str, Deployment]:
    """The gate's topology sweep: single, sharded 1/2/4, lossless net."""
    from repro.net.transport import NetworkDescriptor

    return {
        "single": Deployment.single(),
        "sharded-1": Deployment.sharded(1),
        "sharded-2": Deployment.sharded(2),
        "sharded-4": Deployment.sharded(4),
        "net-lossless": Deployment.single(network=NetworkDescriptor.lossless()),
    }


def build_query_stream(
    workload_name: str, num_traces: int, seed: int = 17
) -> tuple[list[tuple[float, Trace]], list[str]]:
    """One deterministic stream plus its Fig. 12-style query id draw."""
    workload = WORKLOAD_BUILDERS[workload_name]()
    stream, targets = generate_stream(
        workload, num_traces, abnormal_rate=0.02, seed=seed
    )
    records = [
        TraceRecord(
            trace_id=trace.trace_id,
            timestamp=now,
            is_abnormal=trace.trace_id in targets,
        )
        for now, trace in stream
    ]
    queries = QueryWorkload(abnormal_bias=0.6, seed=seed ^ 0x5A).sample_queries(
        records, len(records)
    )
    return stream, queries


def result_signature(result: QueryResult) -> tuple:
    """Everything the bit-identity gate compares, per answer.

    Statuses, reconstructed spans (dataclass equality — every field,
    attributes included) and approximate segments (pattern ids,
    reporting nodes, rendered span views, entry/exit ops).
    """
    return (result.trace_id, result.status, result.trace, result.approximate)


def byte_tables(framework: MintFramework) -> dict[str, int]:
    """The fig02/fig11 tables the query plane must never move."""
    storage = framework.backend.storage
    return {
        "network_bytes": framework.network_bytes,
        "storage_bytes": framework.storage_bytes,
        "pattern_bytes": storage.pattern_bytes,
        "bloom_bytes": storage.bloom_bytes,
        "params_bytes": storage.params_bytes,
    }


@dataclass
class QueryMeasurement:
    """One (workload, deployment) cell of BENCH_query.json."""

    workload: str
    deployment: str
    queries: int
    point_elapsed_seconds: float
    batch_elapsed_seconds: float
    point_qps: float
    batch_qps: float
    batch_speedup: float
    hits: dict[str, int]
    plan: dict[str, int]
    identical: bool
    violations: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "deployment": self.deployment,
            "queries": self.queries,
            "point_elapsed_seconds": round(self.point_elapsed_seconds, 6),
            "batch_elapsed_seconds": round(self.batch_elapsed_seconds, 6),
            "point_qps": round(self.point_qps, 1),
            "batch_qps": round(self.batch_qps, 1),
            "batch_speedup": round(self.batch_speedup, 3),
            "hits": dict(self.hits),
            "plan": dict(self.plan),
            "identical": self.identical,
            "violations": list(self.violations),
        }


def _drive(deployment: Deployment, stream, warmup_traces: int) -> MintFramework:
    framework = MintFramework(
        deployment=deployment, auto_warmup_traces=warmup_traces
    )
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    return framework


def measure_deployment(
    workload_name: str,
    deployment_name: str,
    deployment: Deployment,
    stream: list[tuple[float, Trace]],
    queries: list[str],
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    repeats: int = REPEATS,
) -> tuple[QueryMeasurement, MintFramework, "PlanStats"]:
    """Ingest once, then run the three-way query sweep and the timing.

    Returns the cell, the driven framework (for byte tables) and the
    batch plan's statistics (for the pre-screen pruning gate).
    """
    framework = _drive(deployment, stream, warmup_traces)
    violations: list[str] = []

    # --- bit-identity: new point lookups vs the reference querier ---
    reference = [framework.backend.querier.query(tid) for tid in queries]
    point = [framework.query(tid) for tid in queries]
    for ref, new in zip(reference, point):
        if result_signature(ref) != result_signature(new):
            violations.append(
                f"point lookup diverges from reference querier for "
                f"trace {ref.trace_id}"
            )
            break

    # --- bit-identity: one batch cursor vs the looped lookups ---
    cursor = framework.query_many(queries)
    batch = cursor.all()
    stats = cursor.stats
    if len(batch) != len(point):
        violations.append(
            f"query_many yielded {len(batch)} results for {len(point)} ids"
        )
    else:
        for one, many in zip(point, batch):
            if result_signature(one) != result_signature(many):
                violations.append(
                    f"query_many diverges from point lookups for "
                    f"trace {one.trace_id}"
                )
                break

    # --- throughput: looped point lookups vs one amortised batch ---
    point_elapsed = min(
        _timed(lambda: [framework.query(tid) for tid in queries])
        for _ in range(repeats)
    )
    batch_elapsed = min(
        _timed(lambda: framework.query_many(queries).all())
        for _ in range(repeats)
    )

    hits = hit_breakdown(result.status for result in batch)

    count = len(queries)
    measurement = QueryMeasurement(
        workload=workload_name,
        deployment=deployment_name,
        queries=count,
        point_elapsed_seconds=point_elapsed,
        batch_elapsed_seconds=batch_elapsed,
        point_qps=count / point_elapsed if point_elapsed > 0 else 0.0,
        batch_qps=count / batch_elapsed if batch_elapsed > 0 else 0.0,
        batch_speedup=point_elapsed / batch_elapsed if batch_elapsed > 0 else 0.0,
        hits=hits,
        plan=stats.as_dict(),
        identical=not violations,
        violations=violations,
    )
    return measurement, framework, stats


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def predicate_smoke(
    framework: MintFramework,
    stream: list[tuple[float, Trace]],
) -> dict[str, Any]:
    """Declarative incident queries over the stream's middle window.

    Exercises the predicate path end to end (candidate pushdown, span
    predicates, streaming) and checks the contract *non-vacuously*:
    the service query targets the stream's most common service, so it
    must match something — a regression that rejects every predicate
    cannot hide behind an empty-but-"all-passing" result list.  The
    error query's match count is recorded alongside (it may be small
    on reduced streams).
    """
    records = [
        TraceRecord(trace_id=t.trace_id, timestamp=now, is_abnormal=False)
        for now, t in stream
    ]
    lo = stream[len(stream) // 4][0]
    hi = stream[(3 * len(stream)) // 4][0]
    service_counts: dict[str, int] = {}
    for _, trace in stream:
        for service in trace.services:
            service_counts[service] = service_counts.get(service, 0) + 1
    top_service = max(sorted(service_counts), key=service_counts.get)

    service_spec = incident_window_spec(records, lo, hi, service=top_service)
    service_hits = framework.execute(service_spec).all()
    service_candidates = set(service_spec.trace_ids)
    service_ok = bool(service_hits) and all(
        r.is_hit and r.trace_id in service_candidates for r in service_hits
    )

    error_spec = incident_window_spec(records, lo, hi, error_only=True)
    error_hits = framework.execute(error_spec).all()
    error_candidates = set(error_spec.trace_ids)
    error_ok = all(
        r.is_hit and r.trace_id in error_candidates for r in error_hits
    )
    return {
        "service_spec": service_spec.describe(),
        "service": top_service,
        "candidates": len(service_spec.trace_ids),
        "service_matched": len(service_hits),
        "error_matched": len(error_hits),
        "contract_ok": service_ok and error_ok,
    }
