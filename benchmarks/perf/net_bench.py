"""Simulated network plane measurement: equivalence and convergence.

Two measurements back the two gates of ``run_net_bench.py --check``:

* **Lossless equivalence** — for each topology (single backend and
  shard counts 1/2/4), the identical stream is driven over the
  in-process ``LocalTransport`` and over the default (instantaneous,
  lossless) ``NetTransport``.  The two runs must be *bit-identical*:
  byte tables, per-minute network/storage meter series, per-shard
  ledger totals, and full query signatures.  Wall-clock ratios are
  recorded so the event-driven plane's overhead stays visible.

* **Chaos convergence** — for each seeded chaos profile
  (drop/duplicate/delay/partition), the stream is driven over a
  batching wire with the profile injected and retries enabled.  The
  run must converge to the lossless reference (same query signature,
  same network/storage byte tables), with overhead confined to the
  retransmit meter — and the chaos must demonstrably have fired
  (drops/duplicates/jitter observed), so a silently disabled fault
  injector cannot greenwash the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from sharded_bench import (
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    REPEATS,
    WORKLOAD_BUILDERS,
    best_of,
    build_stream,
    byte_tables,
    query_signature,
)

from repro.framework import MintFramework
from repro.model.trace import Trace
from repro.net.chaos import CHAOS_PROFILES, ChaosProfile, fit_partitions
from repro.net.transport import CHAOS_WIRE, NetworkDescriptor
from repro.transport import Deployment

# Topology 0 is the single backend; >= 1 are shard counts.
DEFAULT_TOPOLOGIES = (0, 1, 2, 4)
DEFAULT_PROFILES = tuple(sorted(CHAOS_PROFILES))


def _deployment(topology: int, network: NetworkDescriptor | None) -> Deployment:
    return Deployment(num_shards=topology, network=network)


def _topology_label(topology: int) -> str:
    return "single" if topology == 0 else f"x{topology}"


def _meter_series(framework: MintFramework) -> dict[str, list[tuple[int, int]]]:
    return {
        "network": framework.ledger.network.per_minute_series(),
        "storage": framework.ledger.storage.per_minute_series(),
    }


def _shard_ledger_totals(framework: MintFramework) -> list[tuple[int, int]]:
    return [
        (ledger.network.total_bytes, ledger.storage.total_bytes)
        for ledger in framework.shard_ledgers
    ]


@dataclass
class EquivalenceCell:
    """Local-vs-net comparison for one (workload, topology)."""

    workload: str
    topology: str
    identical: bool
    violations: list[str] = field(default_factory=list)
    local_spans_per_sec: float = 0.0
    net_spans_per_sec: float = 0.0
    net_overhead: float = 0.0

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "topology": self.topology,
            "identical": self.identical,
            "violations": list(self.violations),
            "local_spans_per_sec": round(self.local_spans_per_sec, 1),
            "net_spans_per_sec": round(self.net_spans_per_sec, 1),
            "net_overhead": round(self.net_overhead, 3),
        }


def measure_equivalence(
    workload_name: str,
    stream: list[tuple[float, Trace]],
    topologies: tuple[int, ...] = DEFAULT_TOPOLOGIES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    repeats: int = REPEATS,
) -> tuple[list[EquivalenceCell], MintFramework | None]:
    """Gate (a): default NetTransport == LocalTransport, bit for bit.

    Also returns the single-backend LocalTransport framework (when
    topology 0 was measured) so the convergence gate can reuse it as
    its lossless reference instead of re-ingesting the stream.
    """
    span_count = sum(len(trace.spans) for _, trace in stream)
    cells: list[EquivalenceCell] = []
    single_local: MintFramework | None = None
    for topology in topologies:
        def local_factory(topology=topology):
            return MintFramework(
                deployment=_deployment(topology, None),
                auto_warmup_traces=warmup_traces,
            )

        def net_factory(topology=topology):
            return MintFramework(
                deployment=_deployment(topology, NetworkDescriptor.lossless()),
                auto_warmup_traces=warmup_traces,
            )

        local_elapsed, local = best_of(local_factory, stream, repeats)
        net_elapsed, net = best_of(net_factory, stream, repeats)
        if topology == 0:
            single_local = local
        violations: list[str] = []
        local_tables = byte_tables(local)
        net_tables = byte_tables(net)
        for key, want in local_tables.items():
            if net_tables[key] != want:
                violations.append(f"{key}: net {net_tables[key]} != local {want}")
        local_series = _meter_series(local)
        for meter, want in _meter_series(net).items():
            if want != local_series[meter]:
                violations.append(f"{meter} per-minute series diverges")
        if _shard_ledger_totals(net) != _shard_ledger_totals(local):
            violations.append("per-shard ledger totals diverge")
        if query_signature(net, stream) != query_signature(local, stream):
            violations.append("query signatures diverge")
        if net.retransmit_bytes != 0:
            violations.append(
                f"lossless wire charged retransmit bytes: {net.retransmit_bytes}"
            )
        cells.append(
            EquivalenceCell(
                workload=workload_name,
                topology=_topology_label(topology),
                identical=not violations,
                violations=violations,
                local_spans_per_sec=span_count / local_elapsed if local_elapsed else 0.0,
                net_spans_per_sec=span_count / net_elapsed if net_elapsed else 0.0,
                net_overhead=net_elapsed / local_elapsed if local_elapsed else 0.0,
            )
        )
    return cells, single_local


@dataclass
class ConvergenceCell:
    """Chaos-vs-lossless comparison for one (workload, profile)."""

    workload: str
    profile: str
    converged: bool
    chaos_fired: bool
    violations: list[str] = field(default_factory=list)
    retransmit_bytes: int = 0
    delivery: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "profile": self.profile,
            "converged": self.converged,
            "chaos_fired": self.chaos_fired,
            "violations": list(self.violations),
            "retransmit_bytes": self.retransmit_bytes,
            "delivery": dict(self.delivery),
        }


def _chaos_evidence(profile: ChaosProfile, totals: dict) -> list[str]:
    """What the profile must visibly have done, or the gate is vacuous."""
    missing: list[str] = []
    if (profile.drop_rate > 0 or profile.partitions) and not totals["dropped"]:
        missing.append("no transmissions dropped")
    if (profile.drop_rate > 0 or profile.partitions) and not totals["retransmits"]:
        missing.append("no retransmissions")
    if profile.duplicate_rate > 0 and not totals["duplicated"]:
        missing.append("no duplicates injected")
    if (
        profile.delay_jitter_s > 0
        and totals["latency_p99_s"] <= CHAOS_WIRE.latency_s
    ):
        missing.append("no delay jitter observed")
    return missing


def measure_convergence(
    workload_name: str,
    stream: list[tuple[float, Trace]],
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    warmup_traces: int = DEFAULT_WARMUP_TRACES,
    seed: int = 7,
    reference: MintFramework | None = None,
) -> list[ConvergenceCell]:
    """Gate (b): every chaos profile converges to the lossless answer.

    ``reference`` reuses an already-driven single-backend LocalTransport
    framework (from :func:`measure_equivalence`) instead of paying one
    more full ingest of the stream.
    """
    if reference is None:
        def reference_factory():
            return MintFramework(auto_warmup_traces=warmup_traces)

        _, reference = best_of(reference_factory, stream, 1)
    ref_tables = byte_tables(reference)
    ref_signature = query_signature(reference, stream)
    duration_s = stream[-1][0] if stream else 0.0

    cells: list[ConvergenceCell] = []
    for name in profiles:
        profile = fit_partitions(CHAOS_PROFILES[name], duration_s)
        wire = CHAOS_WIRE.with_chaos(profile, seed=seed)

        def chaos_factory(wire=wire):
            return MintFramework(
                deployment=Deployment.single(network=wire),
                auto_warmup_traces=warmup_traces,
            )

        _, framework = best_of(chaos_factory, stream, 1)
        violations: list[str] = []
        tables = byte_tables(framework)
        for key, want in ref_tables.items():
            if tables[key] != want:
                violations.append(f"{key}: chaos {tables[key]} != lossless {want}")
        if query_signature(framework, stream) != ref_signature:
            violations.append("query signature diverges from lossless run")
        stats = framework.net_stats() or {}
        totals = stats.get("totals", {})
        evidence_gaps = _chaos_evidence(profile, totals)
        cells.append(
            ConvergenceCell(
                workload=workload_name,
                profile=name,
                converged=not violations,
                chaos_fired=not evidence_gaps,
                violations=violations + evidence_gaps,
                retransmit_bytes=framework.retransmit_bytes,
                delivery=totals,
            )
        )
    return cells


__all__ = [
    "CHAOS_WIRE",
    "DEFAULT_PROFILES",
    "DEFAULT_TOPOLOGIES",
    "DEFAULT_TRACES",
    "DEFAULT_WARMUP_TRACES",
    "WORKLOAD_BUILDERS",
    "ConvergenceCell",
    "EquivalenceCell",
    "build_stream",
    "measure_convergence",
    "measure_equivalence",
]
