#!/usr/bin/env python
"""Sharded collection-plane benchmark entry point.

Measures end-to-end collection throughput (spans/sec through agents +
collectors + backend) at shard counts 1/2/4/8 against the
single-backend reference over the same streams, verifies shard-count
invariance (identical query results and byte tables), and writes a
machine-readable ``BENCH_sharded.json`` next to this file — the same
shape discipline as ``BENCH_ingest.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/perf/run_sharded_bench.py           # measure + write
    PYTHONPATH=src python benchmarks/perf/run_sharded_bench.py --check   # invariance gate
    PYTHONPATH=src python benchmarks/perf/run_sharded_bench.py --check --traces 120 \
        --workloads onlineboutique --shards 1 2 4   # CI smoke shape

``--check`` exits non-zero when any sharded run's query results or
byte tables diverge from the single backend, or when merge overhead
exceeds ``--max-overhead`` (sharded wall-clock vs single-backend
wall-clock, default 1.35x — the merge layer must stay cheap).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from sharded_bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_SHARD_COUNTS,
    DEFAULT_TRACES,
    DEFAULT_WARMUP_TRACES,
    WORKLOAD_BUILDERS,
    build_stream,
    measure_sharded,
)

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_sharded.json"
)


def run(
    num_traces: int,
    warmup_traces: int,
    workloads: list[str],
    shard_counts: tuple[int, ...],
    repeats: int,
) -> dict:
    """Measure every (workload, shard count) cell and assemble the report."""
    report: dict = {
        "benchmark": "sharded",
        "units": {
            "spans_per_sec": "spans through the full collection plane per "
            "wall-clock second (agents + collectors + backend)",
            "merge_overhead": "sharded elapsed / single-backend elapsed "
            "over the identical stream (1.0 = free merge)",
        },
        "config": {
            "traces": num_traces,
            "warmup_traces": warmup_traces,
            "shard_counts": list(shard_counts),
            "repeats": repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "baseline_single": {},
        "workloads": {},
        "merge_overhead": {},
        "invariance": {},
    }
    for name in workloads:
        stream = build_stream(name, num_traces)
        measurements, reference, reports = measure_sharded(
            name,
            stream,
            shard_counts=shard_counts,
            warmup_traces=warmup_traces,
            repeats=repeats,
        )
        report["baseline_single"][name] = reference.as_dict()
        report["workloads"][name] = {
            str(count): m.as_dict() for count, m in measurements.items()
        }
        report["merge_overhead"][name] = {
            str(count): round(m.elapsed_seconds / reference.elapsed_seconds, 3)
            if reference.elapsed_seconds > 0
            else 0.0
            for count, m in measurements.items()
        }
        report["invariance"][name] = {
            str(r.num_shards): {
                "identical": r.identical,
                "violations": list(r.violations),
            }
            for r in reports
        }
        line = f"{name:16s} single: {reference.spans_per_sec:>9.0f} spans/s"
        for count in shard_counts:
            m = measurements[count]
            overhead = report["merge_overhead"][name][str(count)]
            line += f"  | x{count}: {m.spans_per_sec:>9.0f} ({overhead:.2f}x)"
        print(line)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--traces", type=int, default=DEFAULT_TRACES)
    parser.add_argument("--warmup-traces", type=int, default=DEFAULT_WARMUP_TRACES)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(WORKLOAD_BUILDERS),
        choices=list(WORKLOAD_BUILDERS),
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        help="shard counts to sweep",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate: exit 1 on any invariance violation or when merge "
        "overhead exceeds --max-overhead on any workload",
    )
    parser.add_argument("--max-overhead", type=float, default=1.35)
    parser.add_argument("--output", default=BENCH_PATH)
    args = parser.parse_args(argv)

    report = run(
        args.traces,
        args.warmup_traces,
        args.workloads,
        tuple(args.shards),
        args.repeats,
    )

    failures: list[str] = []
    if args.check:
        for name, by_count in report["invariance"].items():
            for count, verdict in by_count.items():
                if not verdict["identical"]:
                    failures.append(
                        f"{name} x{count}: {'; '.join(verdict['violations'])}"
                    )
        for name, by_count in report["merge_overhead"].items():
            for count, overhead in by_count.items():
                if overhead > args.max_overhead:
                    failures.append(
                        f"{name} x{count}: merge overhead {overhead:.2f}x > "
                        f"allowed {args.max_overhead:.2f}x"
                    )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
