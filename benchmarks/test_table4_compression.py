"""Table 4 (with Fig. 13's datasets) — lossless compression ratios.

Paper: across six Alibaba datasets, Mint's two-level parsing compresses
traces 22.8-45.2x — far above LogZip (5.2-16.8), LogReducer
(7.9-20.0) and CLP (11.6-22.7) — and above both of its own ablations
(w/o inter-span parsing, w/o inter-trace parsing), showing both levels
contribute.

Here: the six datasets are generated with Fig. 13's API counts and call
depths (trace counts scaled down); the same six schemes compress each.
The shape claims: Mint beats every log compressor and both ablations on
every dataset.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import render_table
from repro.compression import CLPCompressor, LogReducerCompressor, LogZipCompressor, MintCompressor
from repro.workloads import DATASET_SPECS, WorkloadDriver, build_dataset

# Trace counts per dataset, scaled from Fig. 13 (~1/2000 of the paper's
# corpus sizes, preserving the relative sizes).
SCALED_TRACES = {"A": 140, "B": 220, "C": 120, "D": 160, "E": 150, "F": 180}

COMPRESSORS = [
    LogZipCompressor(),
    LogReducerCompressor(),
    CLPCompressor(),
    MintCompressor("no_span"),
    MintCompressor("no_trace"),
    MintCompressor("full"),
]


def dataset_description() -> list[list]:
    rows = []
    for name, spec in DATASET_SPECS.items():
        workload = build_dataset(name)
        driver = WorkloadDriver(workload, seed=40)
        sample = [t for _, t in driver.traces(10)]
        measured_depth = sum(t.depth() for t in sample) / len(sample)
        rows.append(
            [
                name,
                spec.trace_number,
                SCALED_TRACES[name],
                spec.api_number,
                spec.average_depth,
                round(measured_depth, 1),
            ]
        )
    return rows


def compression_rows() -> list[list]:
    rows = []
    for name in DATASET_SPECS:
        workload = build_dataset(name)
        driver = WorkloadDriver(workload, seed=41)
        traces = [t for _, t in driver.traces(SCALED_TRACES[name])]
        row: list = [name]
        for compressor in COMPRESSORS:
            row.append(round(compressor.compress(traces).ratio, 2))
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table4")
def test_fig13_dataset_description(benchmark):
    rows = once(benchmark, dataset_description)
    emit(
        "fig13_datasets",
        render_table(
            ["dataset", "paper traces", "scaled traces", "APIs",
             "paper avg depth", "measured depth"],
            rows,
            title="Fig. 13 — the six Alibaba-style datasets",
        ),
    )
    for _, _, _, apis, paper_depth, measured in rows:
        assert measured >= paper_depth * 0.7


@pytest.mark.benchmark(group="table4")
def test_table4_compression_ratios(benchmark):
    rows = once(benchmark, compression_rows)
    headers = ["dataset"] + [c.name for c in COMPRESSORS]
    emit(
        "table4_compression",
        render_table(headers, rows, title="Table 4 — compression ratios"),
    )
    names = [c.name for c in COMPRESSORS]
    mint_idx = 1 + names.index("Mint")
    for row in rows:
        mint_ratio = row[mint_idx]
        # Mint beats every log compressor on every dataset.
        for log_name in ("LogZip", "LogReducer", "CLP"):
            assert mint_ratio > row[1 + names.index(log_name)], row
        # Mint beats both of its ablations on every dataset.
        assert mint_ratio > row[1 + names.index("Mint w/o Sp")], row
        assert mint_ratio > row[1 + names.index("Mint w/o Tp")], row
        # Everything achieves some compression.
        assert all(r > 1.0 for r in row[1:]), row
