"""Fig. 11 — network and storage overhead vs request throughput.

Paper: on OnlineBoutique and TrainTicket, across throughputs, Mint
reduces storage to ~2.7 % and network to ~4.2 % of OT-Full; OT-Head
sits at its 5 % rate on both axes; OT-Tail and Sieve pay full network
but ~5 % storage; Hindsight pays slightly more network than OT-Head.

Here: the same six frameworks run the same streams at three scaled
throughputs per benchmark; the series below are the paper's curves.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.agent.samplers import TailSampler
from repro.analysis import render_table
from repro.baselines import Hindsight, MintFramework, OTFull, OTHead, OTTail, Sieve
from repro.sim.experiment import run_experiment
from repro.workloads import build_onlineboutique, build_trainticket

THROUGHPUTS_REQ_PER_MIN = (20_000, 60_000, 100_000)
TRACES_PER_RUN = 700

FACTORIES = {
    "OT-Full": OTFull,
    "OT-Head": lambda: OTHead(rate=0.05),
    "OT-Tail": OTTail,
    "Sieve": lambda: Sieve(budget_rate=0.05),
    "Hindsight": Hindsight,
    "Mint": lambda: MintFramework(auto_warmup_traces=60, extra_sampler_factories=[TailSampler]),
}


def run_benchmark_system(workload) -> list[list]:
    rows = []
    for rpm in THROUGHPUTS_REQ_PER_MIN:
        result = run_experiment(
            workload,
            FACTORIES,
            num_traces=TRACES_PER_RUN,
            abnormal_rate=0.05,
            requests_per_minute=rpm,
            seed=11,
            query_all=False,
        )
        minutes = TRACES_PER_RUN / rpm
        full = result.runs["OT-Full"]
        for name, run_ in result.runs.items():
            rows.append(
                [
                    workload.name,
                    rpm,
                    name,
                    round(run_.network_bytes / (1024 * 1024) / minutes, 1),
                    round(run_.storage_bytes / (1024 * 1024) / minutes, 1),
                    round(100 * run_.network_bytes / full.network_bytes, 2),
                    round(100 * run_.storage_bytes / full.storage_bytes, 2),
                ]
            )
    return rows


def check_shape(rows: list[list]) -> None:
    by_key = {(r[1], r[2]): r for r in rows}
    for rpm in THROUGHPUTS_REQ_PER_MIN:
        net = {name: by_key[(rpm, name)][5] for name in FACTORIES}
        store = {name: by_key[(rpm, name)][6] for name in FACTORIES}
        # Mint reduces both axes to a few percent.
        assert net["Mint"] < 12.0
        assert store["Mint"] < 10.0
        # Head sampling tracks its rate on both axes.
        assert 2.0 < net["OT-Head"] < 10.0
        assert 2.0 < store["OT-Head"] < 10.0
        # Tail sampling and Sieve cannot reduce network.
        assert net["OT-Tail"] == pytest.approx(100.0)
        assert net["Sieve"] == pytest.approx(100.0)
        assert store["OT-Tail"] < 15.0
        # Hindsight: breadcrumbs put it above head's network, below tail.
        assert net["OT-Head"] < net["Hindsight"] < net["OT-Tail"]
        # Mint's storage beats every '1 or 0' baseline.
        for other in ("OT-Head", "OT-Tail", "Sieve", "Hindsight"):
            assert store["Mint"] < store[other] * 1.6


@pytest.mark.benchmark(group="fig11")
def test_fig11_onlineboutique(benchmark):
    rows = once(benchmark, lambda: run_benchmark_system(build_onlineboutique()))
    emit(
        "fig11_onlineboutique",
        render_table(
            ["benchmark", "req/min", "framework", "net MB/min", "store MB/min",
             "net % of full", "store % of full"],
            rows,
            title="Fig. 11 — OnlineBoutique overhead sweep",
        ),
    )
    check_shape(rows)


@pytest.mark.benchmark(group="fig11")
def test_fig11_trainticket(benchmark):
    rows = once(benchmark, lambda: run_benchmark_system(build_trainticket()))
    emit(
        "fig11_trainticket",
        render_table(
            ["benchmark", "req/min", "framework", "net MB/min", "store MB/min",
             "net % of full", "store % of full"],
            rows,
            title="Fig. 11 — TrainTicket overhead sweep",
        ),
    )
    check_shape(rows)
