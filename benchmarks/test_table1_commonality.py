"""Table 1 — occurrence and proportion of commonality in trace pairs.

Paper: across three services, 34-56 % of inter-trace pairs and 25-45 %
of inter-span pairs share a common pattern.  Here: three workloads play
the three services; the same pair statistics are computed exactly.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import inter_span_commonality, inter_trace_commonality, render_table
from repro.sim.experiment import generate_stream
from repro.workloads import build_dataset, build_onlineboutique, build_trainticket

TRACES_PER_SERVICE = 400


def run() -> list[list]:
    services = {
        "Service A (OnlineBoutique)": build_onlineboutique(),
        "Service B (TrainTicket)": build_trainticket(),
        "Service C (Dataset D)": build_dataset("D"),
    }
    rows = []
    for name, workload in services.items():
        stream, _ = generate_stream(
            workload, TRACES_PER_SERVICE, abnormal_rate=0.02, seed=7
        )
        traces = [trace for _, trace in stream]
        trace_stats = inter_trace_commonality(traces)
        span_stats = inter_span_commonality(traces)
        rows.append(
            [
                name,
                trace_stats.pairs_with_commonality,
                round(100 * trace_stats.proportion, 2),
                span_stats.pairs_with_commonality,
                round(100 * span_stats.proportion, 2),
            ]
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_commonality(benchmark):
    rows = once(benchmark, run)
    emit(
        "table1_commonality",
        render_table(
            [
                "service",
                "inter-trace #",
                "inter-trace %",
                "inter-span #",
                "inter-span %",
            ],
            rows,
            title="Table 1 — commonality in trace/span pairs",
        ),
    )
    # Shape: commonality is abundant at both levels (tens of percent),
    # never total, never negligible.
    for _, trace_pairs, trace_pct, span_pairs, span_pct in rows:
        assert trace_pairs > 0 and span_pairs > 0
        assert 5.0 < trace_pct < 95.0
        assert 5.0 < span_pct < 95.0
