"""Fig. 16 — similarity-threshold sensitivity of pattern+param storage.

Paper: sweeping the Span Parser's LCS similarity threshold over
{0.2, 0.4, 0.6, 0.8} on two datasets and two sub-services, the total
storage for patterns plus parameters *decreases* as the threshold
increases (looser clustering merges dissimilar values into
wildcard-heavy templates whose parameters carry most of the bytes),
which is why 0.8 is the default.

Here: the same four corpora are parsed at each threshold without
sampling or compression; total pattern + parameter bytes are reported.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import render_table
from repro.model.encoding import encoded_size
from repro.parsing.span_parser import SpanParser
from repro.workloads import WorkloadDriver, build_dataset, build_subservice

THRESHOLDS = (0.2, 0.4, 0.6, 0.8)
TRACES = 150

CORPORA = {
    "Dataset A": lambda: build_dataset("A"),
    "Dataset B": lambda: build_dataset("B"),
    "Sub-Service 1": lambda: build_subservice("S1"),
    "Sub-Service 2": lambda: build_subservice("S2"),
}


def storage_at_threshold(traces, threshold: float) -> int:
    # Key-only parser scoping, as the paper's Span Parser: this is the
    # regime where the threshold decides how much cross-operation
    # merging happens (see SpanParser.scope_by_operation).
    parser = SpanParser(similarity_threshold=threshold, scope_by_operation=False)
    warmup = [span for trace in traces[:40] for span in trace.spans]
    parser.warm_up(warmup[:400])
    params_bytes = 0
    for trace in traces:
        for span in trace.spans:
            parsed = parser.parse(span)
            pattern = parser.library.get(parsed.pattern_id)
            params_bytes += encoded_size(parsed.compact_record(pattern))
    return parser.library.size_bytes() + params_bytes


def run() -> list[list]:
    rows = []
    for name, builder in CORPORA.items():
        driver = WorkloadDriver(builder(), seed=61)
        traces = [t for _, t in driver.traces(TRACES)]
        row: list = [name]
        for threshold in THRESHOLDS:
            row.append(round(storage_at_threshold(traces, threshold) / 1024, 1))
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig16")
def test_fig16_threshold_sensitivity(benchmark):
    rows = once(benchmark, run)
    emit(
        "fig16_threshold_sensitivity",
        render_table(
            ["corpus"] + [f"storage KB @ {t}" for t in THRESHOLDS],
            rows,
            title="Fig. 16 — pattern+parameter storage vs similarity threshold",
        ),
    )
    for row in rows:
        storages = row[1:]
        # Shape: the default threshold (0.8) stores no more than the
        # loosest (0.2); the trend is downward overall.
        assert storages[-1] <= storages[0] * 1.05, row
