"""Table 3 — downstream RCA accuracy per tracing framework.

Paper: with the stored-data budget fixed at ~5 %, trace-based RCA
methods (MicroRank, TraceRCA, TraceAnomaly) score A@1 below ~0.38 on
data from '1 or 0' frameworks but roughly double with Mint, because
Mint keeps (approximate) normal traces that the methods need as a
contrast population.

Here: faults from the paper's Table 2 are injected one case at a time
into OnlineBoutique and TrainTicket; each framework's retained traces
feed each RCA method; A@1 is reported per (benchmark, method, framework).

Scale note: Sieve overperforms its paper numbers here — at a few
hundred traces per case its RRCF budget captures nearly every faulted
trace, which production-scale noise prevents.  The assertions therefore
check Mint against each baseline rather than a fixed Sieve gap.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.agent.samplers import TailSampler
from repro.analysis import render_table, top1_accuracy
from repro.baselines import Hindsight, MintFramework, OTHead, OTTail, Sieve
from repro.rca import MicroRank, TraceAnomaly, TraceRCA
from repro.sim.experiment import FrameworkRun, rca_views_for_framework
from repro.workloads import (
    FaultInjector,
    FaultSpec,
    FaultType,
    WorkloadDriver,
    build_onlineboutique,
    build_trainticket,
)

TRACES_PER_CASE = 220
FAULT_EVERY = 12

OB_CASES = [
    ("paymentservice", FaultType.CPU_EXHAUSTION),
    ("cartservice", FaultType.ERROR_RETURN),
    ("recommendationservice", FaultType.NETWORK_DELAY),
    ("shippingservice", FaultType.MEMORY_EXHAUSTION),
    ("emailservice", FaultType.CODE_EXCEPTION),
    ("currencyservice", FaultType.NETWORK_DELAY),
    ("productcatalogservice", FaultType.CPU_EXHAUSTION),
    ("adservice", FaultType.ERROR_RETURN),
]

TT_CASES = [
    ("ts-order-service", FaultType.CPU_EXHAUSTION),
    ("ts-payment-service", FaultType.ERROR_RETURN),
    ("ts-station-service", FaultType.NETWORK_DELAY),
    ("ts-seat-service", FaultType.MEMORY_EXHAUSTION),
    ("ts-contacts-service", FaultType.CODE_EXCEPTION),
    ("ts-price-service", FaultType.NETWORK_DELAY),
]

METHODS = {"MicroRank": MicroRank, "TraceRCA": TraceRCA, "TraceAnomaly": TraceAnomaly}

FRAMEWORKS = {
    "OT-Head": lambda: OTHead(rate=0.05),
    "OT-Tail": OTTail,
    "Sieve": lambda: Sieve(budget_rate=0.05),
    "Hindsight": Hindsight,
    "Mint": lambda: MintFramework(auto_warmup_traces=40, extra_sampler_factories=[TailSampler]),
}


def run_cases(workload, cases, seed_base: int) -> dict[tuple[str, str], float]:
    """A@1 per (method, framework) over the fault cases."""
    predictions: dict[tuple[str, str], list] = {
        (m, f): [] for m in METHODS for f in FRAMEWORKS
    }
    truths: list[str] = []
    for case_idx, (target, fault_type) in enumerate(cases):
        driver = WorkloadDriver(workload, seed=seed_base + case_idx)
        injector = FaultInjector(seed=seed_base + 50 + case_idx)
        traces = []
        for i, (_, trace) in enumerate(driver.traces(TRACES_PER_CASE)):
            if i % FAULT_EVERY == 5 and target in trace.services:
                trace = injector.inject(trace, FaultSpec(fault_type, target))
            traces.append(trace)
        truths.append(target)
        for fw_name, factory in FRAMEWORKS.items():
            framework = factory()
            for i, trace in enumerate(traces):
                framework.process_trace(trace, float(i))
            framework.finalize(float(len(traces)))
            run = FrameworkRun(
                name=fw_name,
                network_bytes=framework.network_bytes,
                storage_bytes=framework.storage_bytes,
                process_seconds=0.0,
                framework=framework,
            )
            views = rca_views_for_framework(run, traces)
            for method_name, method_cls in METHODS.items():
                predictions[(method_name, fw_name)].append(
                    method_cls().top1(views)
                )
    return {
        key: top1_accuracy(preds, truths) for key, preds in predictions.items()
    }


def run() -> list[list]:
    rows = []
    for bench_name, workload, cases, seed in (
        ("OB", build_onlineboutique(), OB_CASES, 300),
        ("TT", build_trainticket(), TT_CASES, 700),
    ):
        accuracy = run_cases(workload, cases, seed)
        for method_name in METHODS:
            row = [bench_name, method_name]
            for fw_name in FRAMEWORKS:
                row.append(round(accuracy[(method_name, fw_name)], 4))
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_rca_accuracy(benchmark):
    rows = once(benchmark, run)
    emit(
        "table3_rca",
        render_table(
            ["bench", "RCA method"] + list(FRAMEWORKS),
            rows,
            title="Table 3 — RCA top-1 accuracy per tracing framework",
        ),
    )
    framework_names = list(FRAMEWORKS)
    mint_idx = 2 + framework_names.index("Mint")
    for row in rows:
        mint_score = row[mint_idx]
        baseline_scores = [
            row[2 + i] for i, name in enumerate(framework_names) if name != "Mint"
        ]
        # Shape: Mint data at least matches, and on average far exceeds,
        # what any '1 or 0' framework's retained traces support.
        assert mint_score >= max(baseline_scores)
        assert mint_score >= 0.5
    # Averaged over all (bench, method) rows, Mint roughly doubles the
    # best baseline (paper: 25% -> 50%+).
    mint_mean = sum(row[mint_idx] for row in rows) / len(rows)
    baseline_mean = sum(
        row[2 + i]
        for row in rows
        for i, name in enumerate(framework_names)
        if name != "Mint"
    ) / (len(rows) * (len(framework_names) - 1))
    assert mint_mean > baseline_mean * 1.5
