"""Fig. 15 — request latency impact and trace query latency.

Paper: (a) Mint raises end-to-end request latency by 0.21 % on average;
(b) querying Mint takes 4.2 % longer than OpenTelemetry, with P95 below
one second.

Here: (a) the per-span tracing cost of Mint's agent pipeline (measured
wall-clock) is compared to typical span durations; (b) query latency is
measured over a mixed exact/partial query load against the backend and
against an OT-Full lookup table.
"""

from __future__ import annotations

import statistics

import pytest
from conftest import emit, once

from repro.analysis import render_table
from repro.baselines import MintFramework, OTFull
from repro.sim.experiment import generate_stream
from repro.sim.loadtest import measure_query_latency
from repro.workloads import build_onlineboutique

NUM_TRACES = 500


def run() -> dict:
    workload = build_onlineboutique()
    stream, _ = generate_stream(workload, NUM_TRACES, abnormal_rate=0.05, seed=23)
    mint = MintFramework(auto_warmup_traces=50)
    full = OTFull()
    import time

    started = time.perf_counter()
    for now, trace in stream:
        mint.process_trace(trace, now)
    mint.finalize(stream[-1][0])
    mint_cpu = time.perf_counter() - started
    for now, trace in stream:
        full.process_trace(trace, now)
    total_spans = sum(len(t.spans) for _, t in stream)
    per_span_ms = mint_cpu / total_spans * 1000.0
    span_durations = [s.duration for _, t in stream for s in t.spans]
    mean_span_ms = statistics.fmean(span_durations)
    request_durations = [t.duration for _, t in stream]
    mean_request_ms = statistics.fmean(request_durations)
    trace_ids = [t.trace_id for _, t in stream][:200]
    mint_latency = measure_query_latency(mint, trace_ids)
    full_latency = measure_query_latency(full, trace_ids)
    return {
        "per_span_ms": per_span_ms,
        "mean_span_ms": mean_span_ms,
        "mean_request_ms": mean_request_ms,
        "request_overhead_pct": 100.0 * per_span_ms / mean_request_ms,
        "mint_query": mint_latency,
        "full_query": full_latency,
    }


@pytest.mark.benchmark(group="fig15")
def test_fig15_latency(benchmark):
    out = once(benchmark, run)
    rows = [
        ["agent cost per span (ms)", round(out["per_span_ms"], 4)],
        ["mean span duration (ms)", round(out["mean_span_ms"], 2)],
        ["mean request duration (ms)", round(out["mean_request_ms"], 2)],
        ["request latency overhead (%)", round(out["request_overhead_pct"], 3)],
        ["Mint query mean (ms)", round(out["mint_query"]["mean_ms"], 3)],
        ["Mint query P95 (ms)", round(out["mint_query"]["p95_ms"], 3)],
        ["OT-Full query mean (ms)", round(out["full_query"]["mean_ms"], 3)],
    ]
    emit(
        "fig15_latency",
        render_table(["metric", "value"], rows, title="Fig. 15 — latency impact"),
    )
    # (a) Tracing adds a small fraction of a span's own duration.  (The
    # paper's 0.21 % is native-agent territory; pure Python costs more,
    # but the claim's shape is 'small relative to the work traced'.)
    assert out["request_overhead_pct"] < 25.0
    # (b) Query latency meets the production requirement: P95 < 1 s.
    assert out["mint_query"]["p95_ms"] < 1000.0
    # Mint queries cost more than a hash-table hit but stay the same
    # order of magnitude at this scale.
    assert out["mint_query"]["mean_ms"] < max(
        out["full_query"]["mean_ms"] * 200, 50.0
    )
