"""Ablation benches for design choices beyond the paper's tables.

DESIGN.md calls out three tunables worth sweeping:

* Bloom filter false-positive probability — metadata storage cost vs
  query precision;
* Params Buffer capacity — how much parameter history survives until a
  retroactive sampling decision arrives;
* bucketing precision alpha — approximate-value error vs bucket count.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.agent.config import MintConfig
from repro.analysis import render_table
from repro.baselines import MintFramework
from repro.parsing.numeric_buckets import NumericBucketer
from repro.sim.experiment import generate_stream
from repro.workloads import build_onlineboutique


def bloom_fpp_sweep() -> list[list]:
    workload = build_onlineboutique()
    stream, _ = generate_stream(workload, 600, abnormal_rate=0.05, seed=71)
    rows = []
    for fpp in (0.001, 0.01, 0.1):
        # Small filter buffers so filters reach capacity and flush at
        # their designed load (the regime where fpp is a live tradeoff).
        mint = MintFramework(
            config=MintConfig(bloom_fpp=fpp, bloom_buffer_bytes=256),
            auto_warmup_traces=40,
        )
        for now, trace in stream:
            mint.process_trace(trace, now)
        mint.finalize(stream[-1][0])
        # False-positive rate measured against never-ingested ids.
        probes = [f"{i:031x}f" for i in range(2000)]
        false_hits = sum(
            1 for p in probes if mint.backend.storage.patterns_matching_trace(p)
        )
        rows.append(
            [
                fpp,
                round(mint.backend.storage.bloom_bytes / 1024, 1),
                round(false_hits / len(probes), 4),
            ]
        )
    return rows


def buffer_capacity_sweep() -> list[list]:
    workload = build_onlineboutique()
    stream, _ = generate_stream(workload, 400, abnormal_rate=0.0, seed=72)
    rows = []
    for capacity_kb in (16, 64, 1024):
        mint = MintFramework(
            config=MintConfig(
                params_buffer_bytes=capacity_kb * 1024, edge_case_base_rate=0.0
            ),
            auto_warmup_traces=40,
        )
        for now, trace in stream:
            mint.process_trace(trace, now)
        # Retroactively request the params of the oldest 100 traces:
        # small buffers will have evicted them.  A hit means the backend
        # ends up holding the trace's parameters (whether they were just
        # pulled from a buffer or had been uploaded earlier).
        hits = 0
        for _, trace in stream[:100]:
            for collector in mint._collectors.values():
                collector.request_params(trace.trace_id)
            if mint.backend.storage.has_params(trace.trace_id):
                hits += 1
        evicted = sum(
            c.agent.params_buffer.evicted_blocks
            for c in mint._collectors.values()
        )
        rows.append([capacity_kb, hits, evicted])
    return rows


def alpha_sweep() -> list[list]:
    values = [1.7, 9.0, 42.0, 730.0, 12345.0]
    rows = []
    for alpha in (0.1, 0.3, 0.5, 0.8):
        bucketer = NumericBucketer(alpha=alpha)
        worst = max(
            abs(bucketer.bucket_of(v).midpoint - v) / v for v in values
        )
        buckets_to_1e6 = bucketer.index_of(1e6)
        rows.append([alpha, round(bucketer.gamma, 2), round(worst, 4), buckets_to_1e6])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_bloom_fpp(benchmark):
    rows = once(benchmark, bloom_fpp_sweep)
    emit(
        "ablation_bloom_fpp",
        render_table(
            ["fpp", "bloom storage KB", "measured fp rate"],
            rows,
            title="Ablation — Bloom filter fpp vs storage and precision",
        ),
    )
    # Tighter fpp costs more storage; measured fp rate tracks the target.
    assert rows[0][1] >= rows[-1][1]
    for fpp, _, measured in rows:
        assert measured <= fpp * 12 + 0.01


@pytest.mark.benchmark(group="ablation")
def test_ablation_buffer_capacity(benchmark):
    rows = once(benchmark, buffer_capacity_sweep)
    emit(
        "ablation_buffer_capacity",
        render_table(
            ["capacity KB", "retro-sample hits (of 100)", "evicted blocks"],
            rows,
            title="Ablation — Params Buffer capacity vs retroactive hits",
        ),
    )
    # Bigger buffers keep more history available for late sampling.
    hits = [row[1] for row in rows]
    assert hits[-1] >= hits[0]
    assert rows[-1][1] >= 95  # 1 MB holds the full window here
    assert rows[0][2] > 0  # 16 KB must have evicted something


@pytest.mark.benchmark(group="ablation")
def test_ablation_alpha(benchmark):
    rows = once(benchmark, alpha_sweep)
    emit(
        "ablation_alpha",
        render_table(
            ["alpha", "gamma", "worst midpoint rel. error", "buckets to 1e6"],
            rows,
            title="Ablation — bucketing precision alpha",
        ),
    )
    for alpha, _, worst, _ in rows:
        assert worst <= alpha + 1e-9
    # Coarser alpha -> fewer buckets.
    bucket_counts = [row[3] for row in rows]
    assert bucket_counts == sorted(bucket_counts, reverse=True)
