"""Fig. 3 — query miss rate under '1 or 0' sampling, 2 regions x days.

Paper: with OpenTelemetry head + tail sampling deployed, 27.17 % of
analyst trace queries hit nothing, because which traces get queried is
unpredictable at sampling time.  Here: two simulated regions run head
(5 %) + tail (abnormal-tag) sampling for several days of traffic; the
query model issues biased-but-partly-unpredictable queries per day.
"""

from __future__ import annotations

import pytest
from conftest import emit, once

from repro.analysis import miss_rate, render_table
from repro.baselines.otel import OTHead, OTTail
from repro.query import QueryStatus
from repro.sim.experiment import generate_stream
from repro.workloads import QueryWorkload, TraceRecord, build_onlineboutique

DAYS = 8
TRACES_PER_DAY = 400
QUERIES_PER_DAY = 120
# Analysts lean towards incident traffic but far from exclusively so
# (the paper's Mar. 21 case queries ordinary traces days later).
ABNORMAL_QUERY_BIAS = 0.7


def run() -> list[list]:
    workload = build_onlineboutique()
    rows = []
    for region_idx, region in enumerate(("Region A", "Region B")):
        head = OTHead(rate=0.05, seed=region_idx)
        tail = OTTail()
        daily_rates = []
        for day in range(DAYS):
            stream, targets = generate_stream(
                workload,
                TRACES_PER_DAY,
                abnormal_rate=0.05,
                seed=1000 * region_idx + day,
            )
            records = []
            for now, trace in stream:
                head.process_trace(trace, now)
                tail.process_trace(trace, now)
                records.append(
                    TraceRecord(
                        trace_id=trace.trace_id,
                        timestamp=now,
                        is_abnormal=trace.trace_id in targets,
                    )
                )
            queries = QueryWorkload(
                abnormal_bias=ABNORMAL_QUERY_BIAS, seed=500 + day
            ).sample_queries(records, QUERIES_PER_DAY)
            statuses = [
                QueryStatus.EXACT
                if head.query(q).is_hit or tail.query(q).is_hit
                else QueryStatus.MISS
                for q in queries
            ]
            daily_rates.append(miss_rate(statuses))
        rows.append(
            [
                region,
                round(min(daily_rates), 4),
                round(sum(daily_rates) / len(daily_rates), 4),
                round(max(daily_rates), 4),
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig03")
def test_fig03_miss_rate(benchmark):
    rows = once(benchmark, run)
    emit(
        "fig03_miss_rate",
        render_table(
            ["region", "min miss rate", "mean miss rate", "max miss rate"],
            rows,
            title=(
                f"Fig. 3 — daily query miss rate under head(5%)+tail sampling "
                f"({DAYS} days, {QUERIES_PER_DAY} queries/day)"
            ),
        ),
    )
    # Shape: a substantial fraction of queries miss (paper: ~27 %); both
    # regions show the same phenomenon.
    for _, lo, mean, hi in rows:
        assert 0.10 < mean < 0.50
