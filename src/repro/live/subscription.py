"""Standing-query subscriptions and their push notifications.

A :class:`Subscription` is an analyst's registration of one frozen
:class:`~repro.query.spec.QuerySpec` as a *standing* query: instead of
running the spec once against the settled store, the live query plane
evaluates it continuously as sampled traces land, and streams one
:class:`PushNotification` per matching trace to the subscriber.

The contract mirrors the batch query surface exactly — same spec
grammar, same :func:`~repro.query.spec.matches_result` semantics —
so the headline gate of the live plane can be stated simply: the
subscription's accumulated hit set over a stream is bit-identical to
running the same spec as a post-hoc batch query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.query.spec import QuerySpec
from repro.transport.wire import PUSH_MESSAGE_BYTES

# Subscriber-side delivery callback: called once per accepted (deduped)
# push, with the notification and the subscriber's wire time.
PushCallback = Callable[["PushNotification", float], None]


@dataclass(frozen=True)
class PushNotification:
    """One backend->subscriber push: "your standing query matched".

    ``matched_at`` is the simulated wire time at which the match was
    committed on the backend side; the subscriber-side push-latency
    histogram measures arrival time minus this stamp, so on a real
    (latent, batching) wire the panel shows genuine delivery delay.
    ``phase`` records whether the match streamed mid-ingest
    (``"stream"``) or was swept in by the finalize catch-up
    (``"settle"``) — diagnostic only, never part of the identity gate.
    """

    subscription_id: str
    trace_id: str
    status: str
    matched_at: float
    phase: str = "stream"

    def size_bytes(self) -> int:
        """Wire size, charged on the transport's ``push`` meter."""
        return PUSH_MESSAGE_BYTES


@dataclass
class Subscription:
    """One analyst's standing query and its delivered hit set.

    The plane owns matching and sending; the subscription owns the
    *receive* side: arrival-order ``hits``, per-trace idempotence
    (``deliver`` rejects a trace id it has already accepted, whatever
    the wire did), and an optional ``on_push`` callback fired once per
    accepted push — the seam the incident harness hangs its
    detection-latency probe on.
    """

    id: str
    spec: QuerySpec
    active: bool = True
    on_push: PushCallback | None = None
    hits: list[PushNotification] = field(default_factory=list)
    # Receive-side dedup: trace ids already accepted.  The wire's
    # reliable layer is exactly-once per link, but idempotence here is
    # the subscription's own guarantee — it must hold under repeated
    # finalize sweeps and any future at-least-once delivery path.
    _delivered: set = field(default_factory=set)
    # Send-side dedup, owned by the plane: trace ids already pushed
    # (including pushes still in flight on a latent wire).
    _pushed: set = field(default_factory=set)
    # Sampled candidates not yet committed or rejected.
    _pending: set = field(default_factory=set)

    def __post_init__(self) -> None:
        # Explicit targets narrow the notification stream; a predicate
        # spec with an empty universe watches every sampled trace.
        self._targets = set(self.spec.trace_ids) or None

    def wants(self, trace_id: str) -> bool:
        """Is this sampled trace inside the spec's candidate universe?"""
        return self._targets is None or trace_id in self._targets

    def deliver(self, note: PushNotification, now: float) -> bool:
        """Accept one arriving push; False if its trace was already
        delivered (the idempotence check) or the subscription is gone."""
        if not self.active or note.trace_id in self._delivered:
            return False
        self._delivered.add(note.trace_id)
        self.hits.append(note)
        if self.on_push is not None:
            self.on_push(note, now)
        return True

    @property
    def hit_ids(self) -> tuple[str, ...]:
        """The accumulated hit set, sorted — the identity-gate operand."""
        return tuple(sorted(self._delivered))

    @property
    def hit_statuses(self) -> dict[str, str]:
        """trace id -> delivered status (first delivery wins)."""
        statuses: dict[str, str] = {}
        for note in self.hits:
            statuses.setdefault(note.trace_id, note.status)
        return statuses

    def summary(self) -> dict[str, object]:
        """Deterministic per-subscription stats for reports."""
        return {
            "id": self.id,
            "spec": self.spec.describe(),
            "active": self.active,
            "pushed": len(self._pushed),
            "delivered": len(self._delivered),
            "pending": len(self._pending),
        }


__all__ = ["PushNotification", "Subscription", "PushCallback"]
