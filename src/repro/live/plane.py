"""The live query plane: standing-query matching and push delivery.

:class:`LiveQueryPlane` sits between the backend plane and the
transport, claiming two existing seams:

* the backend's ``on_sampled`` hook — each newly sampled trace id is
  matched against the subscription registry as it lands, riding the
  same idempotent notification path the fleet-wide "check and report"
  ping uses;
* the transport's ``push_sink`` — arriving push notifications are
  routed to their subscription, deduplicated, and timed.

The registry is read-mostly in the RCU spirit the pattern plane
already uses: an immutable tuple snapshot swapped atomically under a
mutation-only lock.  The ingest hot path reads one attribute and never
locks; ``subscribe``/``unsubscribe`` build a new tuple and swap it.

Streaming-evaluation commit rule
--------------------------------

A standing query must accumulate, over the stream, *exactly* the hit
set the same spec yields as a post-hoc batch query.  Mid-stream the
plane therefore pushes only what can never be retracted:

* only ``EXACT`` results — exactness is permanent (storage only
  grows, and the cold tier's read-through preserves it), and the
  span predicates are existential, so an exact match stays a match as
  spans accrue;
* ``time_range`` specs commit eagerly only on fully synchronous
  topologies (``eager_time_range``) — the envelope's start can move
  while reports are in flight, and a retraction is impossible once
  pushed;
* everything else — partial hits that may upgrade, deferred windows,
  still-pending candidates — is caught up by :meth:`settle`, which
  runs the original spec against the settled store and pushes every
  hit not yet streamed.

Under-delivery is thus repaired by construction and over-delivery
prevented by construction, which is the headline identity gate of
``run_live_bench.py --check``.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.live.subscription import PushCallback, PushNotification, Subscription
from repro.obs.metrics import SIM_DOMAIN
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.query.spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transport.plane import BackendPlane
    from repro.transport.transport import Transport


class LiveQueryPlane:
    """Standing-query registry, matcher and push dispatcher.

    ``reeval_every`` paces the re-evaluation of pending candidates:
    every N-th sampling notification re-runs each subscription's whole
    pending set (default every notification — pending sets hold only
    sampled-but-uncommitted ids, so they stay small), the others
    evaluate just the new candidate (a point-shaped plan).  On a
    latent wire a candidate's parameters are usually still in flight
    at its own notification; the pending re-evaluation is what lets it
    stream at a later notification instead of waiting for finalize.
    The cadence is counter-based, never wall clock, so identical
    streams evaluate identically.
    """

    def __init__(
        self,
        backend: "BackendPlane",
        transport: "Transport",
        observer: Observer = NULL_OBSERVER,
        *,
        eager_time_range: bool = False,
        reeval_every: int = 1,
    ) -> None:
        self._backend = backend
        self._transport = transport
        self._eager_time_range = eager_time_range
        self._reeval_every = max(1, reeval_every)
        self._lock = threading.Lock()
        self._snapshot: tuple[Subscription, ...] = ()
        self._by_id: dict[str, Subscription] = {}
        self._seq = 0
        self._notifies = 0
        self._evaluations = 0
        self._pushes_streamed = 0
        self._pushes_settled = 0
        self._delivered = 0
        self._duplicates = 0
        self._dropped = 0
        # Claim the two seams, never overwriting an explicit hook —
        # the same discipline as notify_meter / flush_transport.
        if backend.on_sampled is None:
            backend.on_sampled = self._on_sampled
        if transport.push_sink is None:
            transport.push_sink = self._on_push_arrival
        self.bind_observer(observer)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, observer: Observer) -> None:
        """Cache the plane's instruments (hot-path handles, once).

        The plain-integer stats above are kept in parallel so
        ``live_stats()`` works on obs-off deployments; the registry
        handles are no-ops there, so obs-on vs obs-off changes no
        behaviour — the bit-identity gate's requirement.
        """
        self.observer = observer
        self._obs_delivered = observer.counter("mint_push_delivered", plane="live")
        self._obs_duplicates = observer.counter("mint_push_duplicates", plane="live")
        self._obs_dropped = observer.counter("mint_push_dropped", plane="live")
        # Backend-commit -> subscriber-arrival, in simulated time: the
        # wire's genuine delivery delay (zero on a synchronous wire).
        self._obs_push_latency = observer.stage_histogram(
            "push_delivery", domain=SIM_DOMAIN
        )

    # ------------------------------------------------------------------
    # Registry (mutation under lock, lock-free reads)
    # ------------------------------------------------------------------
    def subscribe(
        self, spec: QuerySpec, on_push: PushCallback | None = None
    ) -> Subscription:
        """Register one standing query; returns its live handle.

        Specs that cannot be standing queries are rejected loudly:
        ``pull_params`` would pump collectors from the ingest hot path,
        ``limit`` has no meaning on an unbounded stream, and a spec
        with neither predicates nor target ids matches nothing ever.
        """
        if spec.pull_params:
            raise ValueError("standing queries cannot pull_params")
        if spec.limit is not None:
            raise ValueError("standing queries cannot carry a limit")
        if not spec.has_predicates and not spec.trace_ids:
            raise ValueError("a standing query needs predicates or target ids")
        with self._lock:
            self._seq += 1
            sub = Subscription(
                id=f"sub-{self._seq:04d}", spec=spec, on_push=on_push
            )
            self._by_id[sub.id] = sub
            self._snapshot = self._snapshot + (sub,)
        return sub

    def unsubscribe(self, sub: Subscription | str) -> None:
        """Deactivate and drop one subscription from the snapshot.

        In-flight pushes for it are counted as dropped on arrival; the
        handle keeps its accumulated hits for the analyst to read.
        """
        handle = self._by_id[sub] if isinstance(sub, str) else sub
        with self._lock:
            handle.active = False
            self._snapshot = tuple(s for s in self._snapshot if s.active)

    @property
    def subscriptions(self) -> tuple[Subscription, ...]:
        """The current registry snapshot (active subscriptions)."""
        return self._snapshot

    # ------------------------------------------------------------------
    # Matching (the ingest hot path)
    # ------------------------------------------------------------------
    def _on_sampled(self, trace_id: str) -> None:
        """One newly sampled trace: match it against the registry."""
        subs = self._snapshot  # one read — the registry's RCU contract
        if not subs:
            return
        self._notifies += 1
        full = self._notifies % self._reeval_every == 0
        for sub in subs:
            if not sub.active:
                continue
            if sub.wants(trace_id):
                sub._pending.add(trace_id)
            if full:
                if sub._pending:
                    self._evaluate(sub, sub._pending)
            elif trace_id in sub._pending:
                self._evaluate(sub, (trace_id,))

    def _evaluate(self, sub: Subscription, candidates: Iterable[str]) -> None:
        """Run the spec over ``candidates``; push irrevocable matches.

        The spec's own candidate universe is replaced by the pending
        ids — a point-shaped plan per new arrival — and results are
        committed under the streaming rule (module docstring): EXACT
        only, time windows only when eager evaluation is safe.
        """
        fresh = tuple(sorted(c for c in candidates if c not in sub._pushed))
        if not fresh:
            return
        self._evaluations += 1
        eager = sub.spec.time_range is None or self._eager_time_range
        if not eager:
            return
        for result in self._backend.execute(replace(sub.spec, trace_ids=fresh)):
            if result.is_exact:
                self._send(sub, result.trace_id, str(result.status), "stream")

    def settle(self) -> None:
        """Finalize catch-up: push every hit the stream did not.

        Runs each subscription's *original* spec against the settled
        store — the identical call the post-hoc batch query makes — and
        pushes whatever ``_pushed`` is missing.  Idempotent across
        repeated finalizes: the send-side dedup only grows.
        """
        for sub in self._snapshot:
            if not sub.active:
                continue
            for result in self._backend.execute(sub.spec):
                if result.is_hit and result.trace_id not in sub._pushed:
                    self._send(sub, result.trace_id, str(result.status), "settle")
            sub._pending.clear()

    def _send(self, sub: Subscription, trace_id: str, status: str, phase: str) -> None:
        """Commit one match: dedup, stamp, and hand to the transport."""
        sub._pushed.add(trace_id)
        sub._pending.discard(trace_id)
        if phase == "stream":
            self._pushes_streamed += 1
        else:
            self._pushes_settled += 1
        self._transport.deliver_push(
            PushNotification(
                subscription_id=sub.id,
                trace_id=trace_id,
                status=status,
                matched_at=self._transport.wire_now(),
                phase=phase,
            )
        )

    # ------------------------------------------------------------------
    # Delivery (the transport's push sink)
    # ------------------------------------------------------------------
    def _on_push_arrival(
        self, note: PushNotification, message_id: tuple | None = None
    ) -> None:
        """One push arrived at the subscriber's edge.

        ``message_id`` is the wire's deterministic (link, seq, index)
        tag on a simulated network, None in-process; the subscription's
        per-trace dedup makes delivery idempotent either way.
        """
        sub = self._by_id.get(note.subscription_id)
        now = self._transport.wire_now()
        if sub is None or not sub.active:
            self._dropped += 1
            self._obs_dropped.inc()
            return
        if not sub.deliver(note, now):
            self._duplicates += 1
            self._obs_duplicates.inc()
            return
        self._delivered += 1
        self._obs_delivered.inc()
        self._obs_push_latency.observe(max(0.0, now - note.matched_at))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Deterministic plane counters for reports and benches."""
        return {
            "subscriptions": len(self._by_id),
            "active": len(self._snapshot),
            "notifies": self._notifies,
            "evaluations": self._evaluations,
            "pushes_streamed": self._pushes_streamed,
            "pushes_settled": self._pushes_settled,
            "delivered": self._delivered,
            "duplicates": self._duplicates,
            "dropped": self._dropped,
            "push_bytes": self._transport.push.total_bytes,
            "per_subscription": [
                self._by_id[sid].summary() for sid in sorted(self._by_id)
            ],
        }


__all__ = ["LiveQueryPlane"]
