"""The live analyst plane: standing queries and streaming push delivery.

``framework.subscribe(spec)`` registers a frozen
:class:`~repro.query.spec.QuerySpec` as a standing query; the
:class:`~repro.live.plane.LiveQueryPlane` matches newly sampled traces
against the registry on the ``on_sampled`` seam and streams
:class:`~repro.live.subscription.PushNotification`\\ s to subscribers —
over the simulated wire (dedicated ``push::`` links, the separate
``push`` meter) when a network transport is deployed.

The plane's contract: a subscription's accumulated hit set over a
stream is bit-identical to running the same spec as a post-hoc batch
query, on every topology, under chaos, across live reshard — gated by
``benchmarks/perf/run_live_bench.py --check``.
"""

from repro.live.plane import LiveQueryPlane
from repro.live.subscription import PushCallback, PushNotification, Subscription

__all__ = [
    "LiveQueryPlane",
    "PushCallback",
    "PushNotification",
    "Subscription",
]
