"""The deployment plane: transports, topology descriptors, backend contract.

This package is the one seam between the agent/collector fleet and the
backend(s).  It owns:

* the wire constants and callback types every layer shares
  (:mod:`repro.transport.wire`);
* the :class:`BackendPlane` contract both backends implement
  (:mod:`repro.transport.plane`);
* the :class:`Transport` protocol and the in-process
  :class:`LocalTransport`, where *all* byte charging happens
  (:mod:`repro.transport.transport`);
* the :class:`Deployment` descriptor that picks a topology — single
  backend or N shards — and builds it (:mod:`repro.transport.deployment`).

Invariance guarantee: deployments differ only in routing and metering
granularity.  Query results and merged byte tables are identical across
topologies over the same stream; CI's sharded gate enforces it.
"""

from repro.transport.deployment import Deployment
from repro.transport.plane import BackendPlane
from repro.transport.transport import LocalTransport, Transport
from repro.transport.wire import NOTIFY_MESSAGE_BYTES, NotifyMeter, ReportSender

__all__ = [
    "NOTIFY_MESSAGE_BYTES",
    "NotifyMeter",
    "ReportSender",
    "BackendPlane",
    "Transport",
    "LocalTransport",
    "Deployment",
]
