"""Wire-level constants and callback types of the deployment plane.

Everything here is deliberately import-light: these names are shared by
the backends (which meter control messages), the transports (which
meter reports) and the simulation layers (which install the meters), so
this module must never import any of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.reports import Report

# The size of a backend->collector control ping: trace id + header, the
# paper's "check and report" notification.  Public — every layer that
# accounts for the notify direction must use this one constant.
NOTIFY_MESSAGE_BYTES = 64

# The size of a backend->subscriber push notification: subscription id
# + trace id + match status + header.  Push traffic is charged on the
# transport's separate ``push`` meter, never on the network meter, so
# the fig02/fig11 byte tables are subscription-invariant — the same
# separation discipline as retransmit and migration bytes.
PUSH_MESSAGE_BYTES = 96

# Called with (collector_node, payload_bytes) whenever the backend
# sends a control message toward a collector, so deployments can charge
# the backend->agent direction of the network.
NotifyMeter = Callable[[str, int], None]

# The collector->backend direction: anything that accepts a report.
# Bare callables (``backend.receive``, ``reports.append``) satisfy it,
# as does :class:`repro.transport.transport.Transport` via ``deliver``.
ReportSender = Callable[["Report"], None]
