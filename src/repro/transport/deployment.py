"""Deployment descriptors: the topology half of the deployment plane.

A :class:`Deployment` is a small immutable value describing *how* a
Mint deployment is laid out — one backend, or N hash-partitioned
shards — and knowing how to build the matching backend plane.  Every
layer that used to fork on framework classes (experiment harness, load
tests, benchmarks, examples) parameterizes over these descriptors
instead; the framework itself takes one and wires agents, collectors,
backend and transport from it.

The binding correctness contract is topology invariance: for the same
ingest stream, any deployment's query results and byte tables are
identical to the single backend's.  Descriptors only choose *where*
reports are routed and *which* ledgers are charged — never what is
parsed, sampled, or answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.transport.wire import NotifyMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.config import MintConfig
    from repro.transport.plane import BackendPlane


@dataclass(frozen=True)
class Deployment:
    """Topology of a Mint deployment.

    ``num_shards == 0`` means the single (unsharded) backend;
    ``num_shards >= 1`` means a :class:`ShardedBackend` with that many
    shards.  ``Deployment.sharded(1)`` is deliberately distinct from
    ``Deployment.single()``: the former runs the full routing/merge
    machinery at N=1 (the pinned degenerate-equivalence case), the
    latter the reference backend.
    """

    num_shards: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls) -> "Deployment":
        """The reference topology: one backend, one storage engine."""
        return cls(num_shards=0)

    @classmethod
    def sharded(cls, num_shards: int) -> "Deployment":
        """N hash-partitioned shards behind the merged view."""
        if num_shards <= 0:
            raise ValueError("a sharded deployment needs at least one shard")
        return cls(num_shards=num_shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_sharded(self) -> bool:
        """True when reports are routed across shard engines."""
        return self.num_shards > 0

    @property
    def ledger_count(self) -> int:
        """How many per-shard ledgers the transport should charge."""
        return self.num_shards

    def describe(self) -> str:
        """Human-readable topology label."""
        if not self.is_sharded:
            return "single-backend"
        return f"{self.num_shards}-shard"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def build_backend(
        self, config: "MintConfig", notify_meter: NotifyMeter | None = None
    ) -> "BackendPlane":
        """Construct the backend plane this topology describes.

        Backends are imported lazily: they subclass
        :class:`~repro.transport.plane.BackendPlane`, so importing them
        at module top would make the transport package and the backend
        package each other's import-time prerequisite.
        """
        from repro.backend.backend import MintBackend
        from repro.backend.sharded import ShardedBackend

        if not self.is_sharded:
            return MintBackend(
                bloom_buffer_bytes=config.bloom_buffer_bytes,
                bloom_fpp=config.bloom_fpp,
                notify_meter=notify_meter,
            )
        return ShardedBackend(
            num_shards=self.num_shards,
            bloom_buffer_bytes=config.bloom_buffer_bytes,
            bloom_fpp=config.bloom_fpp,
            notify_meter=notify_meter,
        )
