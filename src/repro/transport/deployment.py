"""Deployment descriptors: the topology half of the deployment plane.

A :class:`Deployment` is a small immutable value describing *how* a
Mint deployment is laid out — one backend, or N hash-partitioned
shards, reached over an in-process wire or a simulated network — and
knowing how to build the matching backend plane and transport.  Every
layer that used to fork on framework classes (experiment harness, load
tests, benchmarks, examples) parameterizes over these descriptors
instead; the framework itself takes one and wires agents, collectors,
backend and transport from it.

The binding correctness contract is topology invariance: for the same
ingest stream, any deployment's query results and byte tables are
identical to the single backend's.  Descriptors only choose *where*
reports are routed, *which* ledgers are charged and *what the wire
does in between* — never what is parsed, sampled, or answered (a lossy
wire may add retransmit-meter overhead, nothing else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.transport.wire import NotifyMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.config import MintConfig
    from repro.elastic.chaos import ShardChaosProfile
    from repro.net.transport import NetworkDescriptor
    from repro.sim.meters import OverheadLedger
    from repro.transport.plane import BackendPlane
    from repro.transport.transport import Clock, Transport


@dataclass(frozen=True)
class Deployment:
    """Topology of a Mint deployment.

    ``num_shards == 0`` means the single (unsharded) backend;
    ``num_shards >= 1`` means a :class:`ShardedBackend` with that many
    shards.  ``Deployment.sharded(1)`` is deliberately distinct from
    ``Deployment.single()``: the former runs the full routing/merge
    machinery at N=1 (the pinned degenerate-equivalence case), the
    latter the reference backend.

    ``network`` selects the wire: ``None`` is the in-process
    :class:`~repro.transport.transport.LocalTransport`; a
    :class:`~repro.net.transport.NetworkDescriptor` builds the
    simulated network plane (:class:`~repro.net.transport.NetTransport`)
    with that descriptor's latency/batching/chaos configuration.

    Elastic topologies (``elastic=True``, via :meth:`resharded` or
    :meth:`elastic_sharded`) build the
    :class:`~repro.elastic.backend.ElasticShardedBackend` instead: a
    mutable shard map that a
    :class:`~repro.elastic.reshard.ReshardCoordinator` can rescale live
    toward ``reshard_to`` shards, with optional shard-level chaos
    (``shard_chaos``) handled by the failover supervisor.
    """

    num_shards: int = 0
    network: "NetworkDescriptor | None" = None
    elastic: bool = False
    reshard_to: "int | None" = None
    shard_chaos: "ShardChaosProfile | None" = None
    # Concurrent ingest plane: 0 = the classic single-threaded loop;
    # N >= 1 fans the parse/sample hot path over N worker lanes
    # (``worker_mode`` picks threads or processes) with a deterministic
    # apply barrier every ``ingest_epoch`` traces.  Results are
    # bit-identical to workers=0 by the concurrent plane's contract.
    workers: int = 0
    worker_mode: str = "thread"
    ingest_epoch: int = 32
    # Self-observability plane (PR 9): True wires a live metrics
    # registry and tracing seam through every component; False hands
    # them the shared null observer.  On or off, byte tables, meter
    # series and query signatures are bit-identical by contract
    # (instrumentation reads clocks, never pumps them) — the obs bench
    # gates it.
    observability: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', got {self.worker_mode!r}"
            )
        if self.ingest_epoch <= 0:
            raise ValueError("ingest_epoch must be a positive trace count")
        if self.workers > 0 and self.network is not None:
            raise ValueError(
                "parallel ingest needs the synchronous in-process wire; "
                "a simulated network plane cannot be driven by worker lanes yet"
            )
        if self.workers > 0 and self.elastic:
            raise ValueError(
                "parallel ingest does not compose with elastic topologies yet "
                "(resharding mutates the fleet the lanes partition over)"
            )
        if self.elastic and self.num_shards <= 0:
            raise ValueError("an elastic deployment needs at least one shard")
        if (self.reshard_to is not None or self.shard_chaos is not None) and (
            not self.elastic
        ):
            raise ValueError(
                "reshard targets and shard chaos need an elastic deployment "
                "(Deployment.resharded / Deployment.elastic_sharded)"
            )
        if self.reshard_to is not None:
            if self.reshard_to <= 0:
                raise ValueError("resharding needs at least one destination shard")
            if self.reshard_to == self.num_shards:
                raise ValueError(
                    "resharding must change the shard count "
                    f"(from {self.num_shards} to {self.reshard_to} is a no-op)"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        network: "NetworkDescriptor | None" = None,
        workers: int = 0,
        worker_mode: str = "thread",
        ingest_epoch: int = 32,
        observability: bool = True,
    ) -> "Deployment":
        """The reference topology: one backend, one storage engine.

        ``workers`` runs the ingest hot path on that many worker lanes
        (``worker_mode``: ``"thread"`` or ``"process"``), bit-identical
        to the single-threaded loop by contract."""
        return cls(
            num_shards=0,
            network=network,
            workers=workers,
            worker_mode=worker_mode,
            ingest_epoch=ingest_epoch,
            observability=observability,
        )

    @classmethod
    def sharded(
        cls,
        num_shards: int,
        network: "NetworkDescriptor | None" = None,
        workers: int = 0,
        worker_mode: str = "thread",
        ingest_epoch: int = 32,
        observability: bool = True,
    ) -> "Deployment":
        """N hash-partitioned shards behind the merged view.

        ``workers`` adds the concurrent ingest plane on top; with
        ``workers == num_shards`` each shard's producer fleet runs on
        its own worker lane (hosts hash to lanes with the same stable
        hash that routes them to shards)."""
        if num_shards <= 0:
            raise ValueError("a sharded deployment needs at least one shard")
        return cls(
            num_shards=num_shards,
            network=network,
            workers=workers,
            worker_mode=worker_mode,
            ingest_epoch=ingest_epoch,
            observability=observability,
        )

    @classmethod
    def resharded(
        cls,
        from_shards: int,
        to_shards: int,
        network: "NetworkDescriptor | None" = None,
        shard_chaos: "ShardChaosProfile | None" = None,
        observability: bool = True,
    ) -> "Deployment":
        """An elastic deployment that starts at ``from_shards`` and is
        meant to be rescaled live to ``to_shards``.

        The descriptor only declares the transition; a
        :class:`~repro.elastic.reshard.ReshardCoordinator` (or the
        framework's ``reshard()`` convenience) performs it, host by
        host, while ingest continues.
        """
        if from_shards <= 0:
            raise ValueError(
                "a resharded deployment needs at least one source shard "
                f"(got from_shards={from_shards})"
            )
        if to_shards <= 0:
            raise ValueError(
                "resharding needs at least one destination shard "
                f"(got to_shards={to_shards})"
            )
        if from_shards == to_shards:
            raise ValueError(
                "resharding must change the shard count "
                f"(from {from_shards} to {to_shards} is a no-op)"
            )
        return cls(
            num_shards=from_shards,
            network=network,
            elastic=True,
            reshard_to=to_shards,
            shard_chaos=shard_chaos,
            observability=observability,
        )

    @classmethod
    def elastic_sharded(
        cls,
        num_shards: int,
        network: "NetworkDescriptor | None" = None,
        shard_chaos: "ShardChaosProfile | None" = None,
        observability: bool = True,
    ) -> "Deployment":
        """N shards on the elastic backend: reshardable, supervisable.

        Without a reshard target or chaos profile this behaves exactly
        like :meth:`sharded` — the elastic backend at a fixed shard
        count is the degenerate case the equivalence gates pin.
        """
        if num_shards <= 0:
            raise ValueError("an elastic deployment needs at least one shard")
        return cls(
            num_shards=num_shards,
            network=network,
            elastic=True,
            shard_chaos=shard_chaos,
            observability=observability,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_sharded(self) -> bool:
        """True when reports are routed across shard engines."""
        return self.num_shards > 0

    @property
    def is_elastic(self) -> bool:
        """True when the shard map can change while the deployment runs."""
        return self.elastic

    @property
    def is_parallel(self) -> bool:
        """True when ingest fans out over the concurrent worker plane."""
        return self.workers > 0

    @property
    def ledger_count(self) -> int:
        """How many per-shard ledgers the transport should charge.

        An elastic deployment sizes for its reshard target up front so
        per-shard panels cover the destination shards from time zero;
        autoscaling beyond that grows the ledger list on demand.
        """
        return max(self.num_shards, self.reshard_to or 0)

    def describe(self) -> str:
        """Human-readable topology label."""
        topology = "single-backend" if not self.is_sharded else f"{self.num_shards}-shard"
        if self.reshard_to is not None:
            topology = f"{self.num_shards}->{self.reshard_to}-shard"
        elif self.elastic:
            topology = f"elastic-{self.num_shards}-shard"
        if self.shard_chaos is not None and not self.shard_chaos.is_benign:
            topology += f"+shardchaos={self.shard_chaos.name}"
        if self.is_parallel:
            topology += f"+{self.workers}w-{self.worker_mode}"
        if not self.observability:
            topology += "+obs-off"
        if self.network is None:
            return topology
        return f"{topology}+{self.network.describe()}"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def build_backend(
        self, config: "MintConfig", notify_meter: NotifyMeter | None = None
    ) -> "BackendPlane":
        """Construct the backend plane this topology describes.

        Backends are imported lazily: they subclass
        :class:`~repro.transport.plane.BackendPlane`, so importing them
        at module top would make the transport package and the backend
        package each other's import-time prerequisite.
        """
        from repro.backend.backend import MintBackend
        from repro.backend.sharded import ShardedBackend

        if not self.is_sharded:
            return MintBackend(
                bloom_buffer_bytes=config.bloom_buffer_bytes,
                bloom_fpp=config.bloom_fpp,
                notify_meter=notify_meter,
            )
        if self.elastic:
            from repro.elastic.backend import ElasticShardedBackend

            return ElasticShardedBackend(
                num_shards=self.num_shards,
                bloom_buffer_bytes=config.bloom_buffer_bytes,
                bloom_fpp=config.bloom_fpp,
                notify_meter=notify_meter,
                target_shards=self.reshard_to,
                shard_chaos=self.shard_chaos,
            )
        return ShardedBackend(
            num_shards=self.num_shards,
            bloom_buffer_bytes=config.bloom_buffer_bytes,
            bloom_fpp=config.bloom_fpp,
            notify_meter=notify_meter,
        )

    def build_transport(
        self,
        backend: "BackendPlane",
        ledger: "OverheadLedger",
        clock: "Clock | None" = None,
        shard_ledgers: "list[OverheadLedger] | None" = None,
    ) -> "Transport":
        """Construct the wire this deployment charges its bytes on.

        ``network is None`` wires the in-process ``LocalTransport``;
        otherwise the simulated network plane is built from the
        descriptor.  Lazy imports for the same cycle reason as
        :meth:`build_backend` — the net package sits on top of the
        transport seam, not under it.
        """
        from repro.transport.transport import LocalTransport

        if self.network is None:
            return LocalTransport(
                backend, ledger, clock=clock, shard_ledgers=shard_ledgers
            )
        from repro.net.transport import NetTransport

        return NetTransport(
            backend,
            ledger,
            clock=clock,
            shard_ledgers=shard_ledgers,
            network=self.network,
        )
