"""The shared backend contract of the deployment plane.

:class:`BackendPlane` hoists everything the single and sharded backends
used to duplicate — the collector registry, report-type dispatch, the
idempotent fleet-wide sampling notification, and the query path with
its retroactive parameter pull — into one base class.  A concrete
backend supplies only its topology: which storage engine owns a node's
reports (:meth:`BackendPlane._engine_for`), an optional post-store hook
(:meth:`BackendPlane._observe_stored`, where the sharded merge layer
folds reports into its global state), and ``storage`` / ``querier``
attributes shaped like the reference single-backend pair.

The single backend is the degenerate routing case: every node maps to
the one engine.  That is what keeps the pinned contract
``ShardedBackend(num_shards=1) == MintBackend`` structural rather than
coincidental — both run the exact same code here, differing only in
`_engine_for`.
"""

from __future__ import annotations

import abc
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport, Report
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.query.cursor import QueryCursor
from repro.query.planner import PlanStats, QueryPlanner
from repro.query.result import QueryResult
from repro.query.spec import QuerySpec
from repro.transport.wire import NOTIFY_MESSAGE_BYTES, NotifyMeter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agent.collector import MintCollector
    from repro.backend.querier import Querier
    from repro.backend.storage import StorageEngine


class BackendPlane(abc.ABC):
    """Common backend behaviour over any topology.

    Subclasses must set two attributes before use:

    * ``storage`` — a StorageEngine-shaped object (the engine itself,
      or a merged view over several) backing queries and byte tables;
    * ``querier`` — a :class:`~repro.backend.querier.Querier` over it.

    ``notify_meter`` is public and rebindable: attaching a
    :class:`~repro.transport.transport.Transport` points it at the
    transport's notify path so control messages are metered at the
    wire, in one place, for every topology.  ``flush_transport`` is the
    matching upload-direction hook: a transport with in-flight state (a
    batching/lossy network) claims it so the retroactive pull can force
    freshly requested uploads all the way into storage before
    re-querying — the in-process transport leaves it None because its
    deliveries are already synchronous.
    """

    querier: "Querier"

    def __init__(self, notify_meter: NotifyMeter | None = None) -> None:
        self.notify_meter = notify_meter
        self.flush_transport: Callable[[], None] | None = None
        # Post-sampling hook: called once per newly sampled trace id,
        # after the fleet-wide notification fan-out.  Claimed by the
        # live query plane (standing-query matching rides this seam) the
        # same way a transport claims ``flush_transport`` — an explicit
        # hook is never overwritten.
        self.on_sampled: Callable[[str], None] | None = None
        self._collectors: list["MintCollector"] = []
        self._notified_trace_ids: set[str] = set()
        # Per-channel high-water marks for message-id dedup: O(links)
        # memory however long the run (see ``receive``).
        self._delivered_watermarks: dict[object, tuple] = {}
        # Cumulative planner counters across every query this plane
        # ran — kept observability-independent (plain integer adds on
        # cursor close) so ``obs_report()`` has a query section even on
        # an obs-off deployment.
        self.plan_totals = PlanStats()
        self.bind_observer(NULL_OBSERVER)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, observer: Observer) -> None:
        """Attach the observability plane's handle (query-path caches)."""
        self.observer = observer
        self._obs_plans = observer.counter("mint_query_plans", plane="query")
        self._obs_results = observer.counter("mint_query_results", plane="query")
        self._obs_reconstruct_hist = observer.stage_histogram("query_reconstruct")

    # ------------------------------------------------------------------
    # Topology (the only part subclasses provide)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _engine_for(self, node: str) -> "StorageEngine":
        """The storage engine owning ``node``'s reports."""

    def shard_for(self, node: str) -> int:
        """Index of the shard owning ``node`` (0 in a single backend)."""
        return 0

    def _observe_stored(self, report: Report, engine: "StorageEngine") -> None:
        """Post-store hook: fold a routed, stored report into any
        cross-engine state (the sharded merge layer overrides)."""

    # ------------------------------------------------------------------
    # Collector plane
    # ------------------------------------------------------------------
    def register_collector(self, collector: "MintCollector") -> None:
        """Attach a collector for cross-agent parameter pulls.

        Registration order is preserved globally so notification
        fan-out visits collectors identically in every topology.
        """
        self._collectors.append(collector)

    def receive(self, report: Report, message_id: tuple | None = None) -> None:
        """Ingest one report from a collector.

        Routes to the engine owning the report's origin node and
        dispatches on the report type; anything other than a pattern,
        Bloom or params report raises ``TypeError`` — a malformed
        producer must fail loudly, not silently drop data.

        ``message_id`` makes the ingest idempotent: an at-least-once
        transport (the simulated network plane retransmits, and its
        chaos layer duplicates) tags every report with a
        ``(channel, *ordinal)`` tuple — e.g. ``(link, seq, index)`` —
        and a re-arrival at or below the channel's high-water mark is
        acknowledged but not re-stored, so duplicates can never perturb
        storage or byte tables.  Ids must be strictly increasing per
        channel, which the ``Transport`` seam's per-collector FIFO
        ordering guarantee already implies; tracking one watermark per
        channel instead of every id ever seen keeps the dedup state
        O(channels) over arbitrarily long runs.  In-process
        exactly-once callers pass no id and skip the check entirely.
        """
        if not isinstance(report, (PatternLibraryReport, BloomReport, ParamsReport)):
            raise TypeError(f"unknown report type: {type(report)!r}")
        if message_id is not None:
            channel, ordinal = message_id[0], tuple(message_id[1:])
            last = self._delivered_watermarks.get(channel)
            if last is not None and ordinal <= last:
                return
            self._delivered_watermarks[channel] = ordinal
        self._commit(report)

    def _commit(self, report: Report) -> None:
        """Store one deduplicated report on the engine owning its node.

        Split from :meth:`receive` so layers *behind* the watermark can
        re-drive storage without re-entering the dedup: the elastic
        plane's shard supervisor parks reports for a crashed shard
        after they passed the watermark, and replays them through this
        method on restart — running them through ``receive`` again
        would find their ids at or below the channel's high-water mark
        and silently drop the replay.
        """
        engine = self._engine_for(report.node)
        if isinstance(report, PatternLibraryReport):
            engine.store_pattern_report(report)
        elif isinstance(report, BloomReport):
            engine.store_bloom_report(report)
        else:
            engine.store_params_report(report)
        self._observe_stored(report, engine)

    def settle(self) -> None:
        """End-of-run hook after the transport drained.

        The base planes hold nothing back once deliveries land, so this
        is a no-op; the elastic plane overrides it to replay its shard
        supervisor's parked redelivery queues (a restart at the end of
        the schedule), so post-finalize queries see the converged
        store."""

    def notify_sampled(self, trace_id: str, origin_node: str | None = None) -> None:
        """Propagate a sampling decision to every other collector.

        Idempotent per trace id across the whole deployment: the first
        notification, no matter which host sampled, reaches every other
        registered collector exactly once, each ping charged on the
        notify meter.  This is the paper's "backend notifies all hosts"
        guarantee, and it survives the backend becoming N boxes because
        the dedup set and the registry both live here, above the
        topology.
        """
        if trace_id in self._notified_trace_ids:
            return
        self._notified_trace_ids.add(trace_id)
        self.storage.sampled_trace_ids.add(trace_id)
        for collector in self._collectors:
            if origin_node is not None and collector.node == origin_node:
                continue
            if self.notify_meter is not None:
                self.notify_meter(collector.node, NOTIFY_MESSAGE_BYTES)
            collector.mark_sampled(trace_id)
        if self.on_sampled is not None:
            # After the fan-out: on a synchronous wire every collector's
            # buffered state for this trace has already been stored, so
            # standing queries evaluate against the settled view.
            self.on_sampled(trace_id)

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> QueryCursor:
        """Compile and run one :class:`QuerySpec` over this topology.

        The planner pushes the Bloom pre-screen and predicate filters
        down to the storage view (per-shard filter index, amortised
        across the batch); this layer contributes the one thing only
        the plane can do — the retroactive parameter pull (the 'Query
        Trace ID' arrow into sampling in paper Fig. 9): with
        ``spec.pull_params``, a partial result asks every collector to
        upload the trace's parameters if still buffered, upgrading the
        answer to exact when the buffers cooperate.  Execution is
        lazy: each ``next()`` on the cursor reconstructs one trace.
        """
        if self.observer.enabled:
            self._obs_plans.inc()
            with self.observer.span("query_plan"):
                plan = QueryPlanner(self.storage).plan(spec)
        else:
            plan = QueryPlanner(self.storage).plan(spec)
        if spec.pull_params:
            # Claim the plan's upgrade hook: the pull runs on each
            # partial reconstruction *before* predicates judge it, so a
            # pulled-to-exact trace is filtered on its real spans.
            plan.upgrade = lambda result: self._pull_params(result, plan.stats)
        return QueryCursor(spec, self._observed_results(plan), plan.stats)

    def _observed_results(self, plan) -> Iterator[QueryResult]:
        """The plan's lazy result stream, with per-result reconstruct
        timing and the cursor-close fold of its counters into
        :attr:`plan_totals` (and the obs registry).  Folding happens in
        the ``finally`` so a partially consumed cursor still settles
        its accounting when it is closed or collected."""
        observed = self.observer.enabled
        results = plan.results()
        try:
            while True:
                if observed:
                    start = perf_counter()
                    try:
                        result = next(results)
                    except StopIteration:
                        break
                    self._obs_reconstruct_hist.observe(perf_counter() - start)
                    self._obs_results.inc()
                else:
                    try:
                        result = next(results)
                    except StopIteration:
                        break
                yield result
        finally:
            totals = self.plan_totals
            for name, value in plan.stats.as_dict().items():
                setattr(totals, name, getattr(totals, name) + value)

    def query(self, trace_id: str, pull_params: bool = False) -> QueryResult:
        """Answer a user trace query (exact / partial / miss)."""
        return self.execute(QuerySpec.point(trace_id, pull_params=pull_params)).one()

    def query_many(self, trace_ids: Iterable[str], pull_params: bool = False) -> QueryCursor:
        """Batch lookup: one result per id, request order, misses kept."""
        return self.execute(QuerySpec.batch(trace_ids, pull_params=pull_params))

    def _pull_params(self, result: QueryResult, stats) -> QueryResult:
        """Retroactively pull a partial hit's parameters from the fleet."""
        trace_id = result.trace_id
        pulled = False
        for collector in self._collectors:
            if collector.request_params(trace_id):
                pulled = True
        if not pulled:
            return result
        # A networked transport may only have *queued* the pulled
        # uploads; flush them into storage before re-querying, or the
        # upgrade-to-exact contract silently breaks.  The re-query runs
        # against the live store (not the plan's snapshot view) because
        # the pull just changed it.
        if self.flush_transport is not None:
            self.flush_transport()
        self.storage.sampled_trace_ids.add(trace_id)
        stats.params_pulled += 1
        return self.querier.query(trace_id)

    # ------------------------------------------------------------------
    # Cold tier
    # ------------------------------------------------------------------
    def storage_engines(self) -> list["StorageEngine"]:
        """The concrete per-shard engines behind this plane (one for
        the single backend) — what compaction and cold panels fan over."""
        shards = getattr(self, "shards", None)
        if shards is not None:
            return list(shards)
        return [self.storage]

    def compact_cold(self, policy=None, now: float = 0.0) -> list:
        """Seal cold segments on every engine; one stats row per engine.

        Queries keep reading through the seal boundaries; the logical
        byte tables never move (the cold tier's ruler-split contract).
        """
        from repro.cold.compactor import compact_engine

        return [
            compact_engine(engine, policy, now=now)
            for engine in self.storage_engines()
        ]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Total persisted bytes (merged/deduplicated when sharded).

        The logical fig11 ruler — invariant under cold-tier sealing."""
        return self.storage.storage_bytes()

    def physical_storage_bytes(self) -> int:
        """The physical side of the storage split: logical minus the
        cold tier's compression savings across engines."""
        return self.storage.physical_storage_bytes()

    def cold_stats(self) -> dict:
        """Cold-tier counters (summed across shards when sharded)."""
        return self.storage.cold_stats()
