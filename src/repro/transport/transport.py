"""Transports: the metered wire between collectors and a backend plane.

A :class:`Transport` owns both directions of the deployment's network
and every byte charged on it:

* ``deliver`` — collector -> backend: ships one report, charging its
  wire size before the backend stores it;
* ``notify`` — backend -> collector: charges one control ping (the
  backend plane calls this through its ``notify_meter``).

Byte accounting used to be smeared across framework subclasses
(deployment ledger in one method, per-shard ledgers in an override);
here it happens in exactly one place, for every topology.  This is
also the seam where a future async or remote transport plugs in: as
long as it meters at the wire and preserves per-collector delivery
order, nothing above or below it changes.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.obs.trace import NULL_OBSERVER, Observer
from repro.sim.meters import Meter, OverheadLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.reports import Report
    from repro.live.subscription import PushNotification
    from repro.transport.plane import BackendPlane

# Simulated-time source for meter timestamps (the framework's clock).
Clock = Callable[[], float]

# The backend->subscriber delivery callback: called with each arriving
# push notification and its per-channel message id (None on an
# exactly-once in-process wire).  Claimed by the live query plane the
# same way the backend's ``flush_transport`` hook is claimed.
PushSink = Callable[["PushNotification", "tuple | None"], None]


@runtime_checkable
class Transport(Protocol):
    """What the collector and backend planes require of a wire.

    Beyond the two directions of traffic, the framework drives a
    wire's *lifecycle*: ``drain`` before final accounting (and on the
    retroactive pull), ``retransmit`` / ``stats_summary`` for the
    redundant-byte and delivery panels.  A synchronous in-process wire
    implements these as no-ops (nothing in flight, no redundancy) —
    they are part of the contract precisely so a transport with real
    in-flight state cannot be silently skipped by the framework.
    """

    # Redundant wire bytes (retransmissions, duplicates); None when the
    # wire cannot produce any.
    retransmit: Meter | None

    # Reshard traffic (state streamed between shards); charged here and
    # never on the network meter, so byte tables stay shard-map
    # invariant — the same separation discipline as ``retransmit``.
    migration: Meter

    # Growth of the backend's *physical* storage figure (hot bytes at
    # their charged size plus sealed cold blocks at their compressed
    # size).  Separate from the ledger's storage meter — which stays
    # the logical fig11 ruler — so cold-tier compression can never
    # perturb the byte tables it is measured against.
    physical_storage: Meter

    # Standing-query push traffic (backend -> subscriber), charged here
    # and never on the network meter: the fig02/fig11 byte tables must
    # be subscription-invariant, exactly as they are loss- and
    # reshard-invariant.
    push: Meter

    # Where arriving push notifications land (the live query plane's
    # delivery callback); None until a subscription plane claims it.
    push_sink: PushSink | None

    def deliver(self, report: "Report") -> None:
        """Ship one report to the backend, metering its wire size."""

    def deliver_migration(self, report: "Report") -> None:
        """Ship one resharding report, metered on ``migration`` only."""

    def deliver_push(self, message: "PushNotification") -> None:
        """Ship one push notification, metered on ``push`` only."""

    def notify(self, node: str, nbytes: int) -> None:
        """Meter one backend->collector control message."""

    def drain(self) -> None:
        """Force all queued/in-flight traffic through to the backend."""

    def wire_now(self) -> float:
        """The wire's current simulated time (the failover clock)."""

    def queue_depths(self) -> dict[str, int]:
        """Reports waiting per send link (empty on a synchronous wire)."""

    def stats_summary(self) -> dict[str, object] | None:
        """Delivery metrics, or None when the wire keeps none."""


class LocalTransport:
    """In-process transport charging a deployment's ledgers at the wire.

    Every delivered report and every notify ping is recorded on the
    deployment-wide ledger; when ``shard_ledgers`` are attached (a
    sharded deployment), the same bytes are also charged to the ledger
    of the owning shard — reports to the shard owning the origin host,
    notifications to the shard owning the notified host (that shard's
    frontend sends the ping).  The double bookkeeping that makes
    per-shard MB/min panels comparable to the deployment totals thus
    lives in one method pair instead of parallel subclass overrides.

    Constructing a transport claims the backend's ``notify_meter`` —
    control-message metering is wire accounting, so it belongs here —
    unless the backend was built with an explicit meter, which is never
    silently overwritten.
    """

    def __init__(
        self,
        backend: "BackendPlane",
        ledger: OverheadLedger,
        clock: Clock | None = None,
        shard_ledgers: list[OverheadLedger] | None = None,
    ) -> None:
        self.backend = backend
        self.ledger = ledger
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        # Shared (not copied) with the caller: an elastic deployment
        # grows the ledger list when the backend adds shards, and the
        # framework's per-shard panels must see the growth.
        self.shard_ledgers = shard_ledgers if shard_ledgers is not None else []
        self._last_storage = 0
        self._last_shard_storage = [0] * len(self.shard_ledgers)
        # An in-process wire never sends a byte twice.
        self.retransmit: Meter | None = None
        # Reshard traffic is metered separately even in-process: moving
        # a host's state is real work whatever the wire.
        self.migration = Meter("migration")
        # The physical side of the storage split (see sync_storage).
        self.physical_storage = Meter("physical_storage")
        self._last_physical_storage = 0
        # Standing-query pushes: separate meter, separate sink.  The
        # sink stays None until a live query plane claims it; a push
        # sent with no sink is metered and dropped on the floor, which
        # cannot happen in practice (only the plane sends pushes).
        self.push = Meter("push")
        self.push_sink: PushSink | None = None
        if backend.notify_meter is None:
            backend.notify_meter = self.notify
        self.bind_observer(NULL_OBSERVER)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, observer: Observer) -> None:
        """Attach the observability plane's handle.

        Hot-path instruments are cached here, once, so charging a
        report costs one ``observer.enabled`` check plus a no-op (or
        counter bump) — never a registry lookup per report.  Reading
        the instruments never touches the ledgers, so observability on
        vs off is byte-table-invariant by construction.
        """
        self.observer = observer
        self._obs_reports = observer.counter("mint_transport_reports", plane="transport")
        self._obs_report_bytes = observer.counter(
            "mint_transport_report_bytes", plane="transport"
        )
        self._obs_notifies = observer.counter(
            "mint_transport_notifies", plane="transport"
        )
        self._obs_migration_reports = observer.counter(
            "mint_transport_migration_reports", plane="transport"
        )
        self._obs_push_messages = observer.counter(
            "mint_transport_push_messages", plane="transport"
        )
        self._obs_deliver_hist = observer.stage_histogram("transport_deliver")
        self._obs_storage_gauge = observer.gauge("mint_storage_bytes", plane="storage")
        self._obs_physical_gauge = observer.gauge(
            "mint_physical_storage_bytes", plane="storage"
        )

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------
    def deliver(self, report: "Report") -> None:
        """Collector -> backend: meter the report's size, then store."""
        self._charge_report(report.node, report.size_bytes(), self._clock())
        if self.observer.enabled:
            start = perf_counter()
            self.backend.receive(report)
            self._obs_deliver_hist.observe(perf_counter() - start)
        else:
            self.backend.receive(report)

    def deliver_migration(self, report: "Report") -> None:
        """Shard -> shard reshard traffic: migration meter only.

        Never charges the network meter or a shard ledger — the
        fig02/fig11 byte tables must be invariant under resharding,
        with the movement's cost visible on its own meter, exactly as
        retransmissions are."""
        self.migration.record(report.size_bytes(), self.wire_now())
        self._obs_migration_reports.inc()
        self.backend.receive(report)

    def deliver_push(self, message: "PushNotification") -> None:
        """Backend -> subscriber push: ``push`` meter only, synchronous.

        Never charges the network meter or a shard ledger — the
        fig02/fig11 byte tables must be subscription-invariant, with
        the push plane's cost visible on its own meter, exactly as
        migration traffic is.  In-process delivery is exactly-once, so
        no message id is attached (the subscription's own
        per-(subscription, trace) dedup still applies downstream).
        """
        self.push.record(message.size_bytes(), self.wire_now())
        self._obs_push_messages.inc()
        if self.push_sink is not None:
            self.push_sink(message, None)

    def wire_now(self) -> float:
        """The wire's clock (the caller's clock on an in-process wire)."""
        return self._clock()

    def _charge_report(self, node: str, size: int, now: float) -> None:
        """The single charging site for the collector->backend
        direction: deployment ledger plus the owning shard's ledger.
        Every transport (local or simulated-network) must charge
        through here, or the byte tables drift between wires."""
        self.ledger.network.record(size, now)
        if self.shard_ledgers:
            self._shard_ledger(self.backend.shard_for(node)).network.record(size, now)
        if self.observer.enabled:
            self._obs_reports.inc()
            self._obs_report_bytes.inc(size)

    def _shard_ledger(self, shard: int) -> OverheadLedger:
        """The shard's ledger, grown on demand for elastic scale-ups.

        New shards appear mid-run only under an elastic deployment;
        static topologies size the list at construction and never grow
        it."""
        while shard >= len(self.shard_ledgers):
            self.shard_ledgers.append(OverheadLedger())
            self._last_shard_storage.append(0)
        return self.shard_ledgers[shard]

    def notify(self, node: str, nbytes: int) -> None:
        """Backend -> collector: meter one control ping toward ``node``."""
        now = self._clock()
        self.ledger.network.record(nbytes, now)
        if self.shard_ledgers:
            self._shard_ledger(self.backend.shard_for(node)).network.record(
                nbytes, now
            )
        self._obs_notifies.inc()

    def __call__(self, report: "Report") -> None:
        """Bare-callable compatibility: a transport can stand wherever
        a ``ReportSender`` (plain report callable) is expected.
        Dispatches through ``self.deliver`` so subclasses overriding
        the delivery path are honoured."""
        self.deliver(report)

    def drain(self) -> None:
        """In-process delivery is synchronous; nothing is in flight."""

    def queue_depths(self) -> dict[str, int]:
        """Synchronous delivery leaves no send queues to measure."""
        return {}

    def stats_summary(self) -> dict[str, object] | None:
        """No queues, no links, no delivery metrics to report."""
        return None

    # ------------------------------------------------------------------
    # Storage metering
    # ------------------------------------------------------------------
    def sync_storage(self) -> None:
        """Charge storage-meter deltas since the last sync.

        Storage is metered as monotonic growth of what the backend
        persists — deployment-wide against the merged (deduplicated)
        figure, and per shard against each shard's physical bytes.
        """
        now = self._clock()
        current = self.backend.storage_bytes()
        if current > self._last_storage:
            self.ledger.storage.record(current - self._last_storage, now)
            self._last_storage = current
        # The physical split rides the same seam: monotonic growth of
        # what the store compressedly holds.  Compaction *shrinks* the
        # figure — the meter keeps its high-water mark and the live
        # value is read from the backend — so the ledger's logical
        # storage meter and byte tables never see the cold tier at all.
        physical = self.backend.physical_storage_bytes()
        if physical > self._last_physical_storage:
            self.physical_storage.record(
                physical - self._last_physical_storage, now
            )
            self._last_physical_storage = physical
        if self.shard_ledgers:
            for i, shard in enumerate(self.backend.shards):
                ledger = self._shard_ledger(i)
                physical = shard.storage_bytes()
                if physical > self._last_shard_storage[i]:
                    ledger.storage.record(
                        physical - self._last_shard_storage[i], now
                    )
                    self._last_shard_storage[i] = physical
        if self.observer.enabled:
            self._obs_storage_gauge.set(self._last_storage)
            self._obs_physical_gauge.set(self._last_physical_storage)
