"""Worker lanes: the bounded channels the ingest plane fans out over.

A lane is one :class:`~repro.concurrent.worker.AgentWorkerState` behind
a command channel.  Two kinds share one command loop:

* :class:`ThreadLane` — a daemon thread fed through a **bounded**
  ``queue.Queue``; the default, zero-copy, and the lane that scales on
  free-threaded builds.
* :class:`ProcessLane` — a forked (or spawned) worker process over a
  duplex pipe; commands and replies are pickled, so parsing runs on a
  real second core even under the GIL.  The OS pipe buffer is the
  bound.

Both bounds give the same backpressure contract: a producer that
outruns its lane blocks on ``post`` instead of queueing unbounded
memory.  Deadlock is structurally impossible because the protocol is
half-duplex per lane — the parent only reads replies after a
reply-bearing command, and a lane only writes when replying, at which
point the parent has stopped posting and is draining.

Failure is loud, not silent: a lane that raises poisons itself, ships
the traceback in place of its next reply, and the parent raises
:class:`LaneError` at the next barrier.  Nondeterminism from a
half-dead lane can therefore never leak into results — exactly what the
race/stress CI lane hammers on.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
from typing import Callable

from repro.agent.config import MintConfig
from repro.concurrent.worker import (
    REPLYING_COMMANDS,
    AgentWorkerState,
    SamplerFactory,
)

#: Inbound command-batch bound per thread lane.  Each entry is a whole
#: ops batch, so the bound caps in-flight work at
#: ``queue_bound * ops_batch`` sub-traces per lane — deep enough to keep
#: a lane busy across an epoch, small enough that a stalled lane
#: backpressures the producer instead of buffering the run.
DEFAULT_QUEUE_BOUND = 64


class LaneError(RuntimeError):
    """A worker lane failed; carries the lane-side traceback."""


def lane_loop(recv: Callable[[], tuple], send: Callable[[tuple], None],
              state: AgentWorkerState) -> None:
    """The shared command loop of every lane kind.

    On an exception the lane poisons itself: later commands are
    swallowed, and every reply-bearing one (including the one that
    raised) answers ``("error", traceback)`` so the parent fails fast at
    its next collect instead of deadlocking on a reply that never comes.
    ``stop`` always answers ``("bye",)`` so shutdown stays clean even
    after poisoning.
    """
    poisoned: str | None = None
    while True:
        cmd = recv()
        op = cmd[0]
        if op == "stop":
            send(("bye",))
            return
        reply: tuple | None = None
        if poisoned is None:
            try:
                reply = state.execute(cmd)
            except Exception:
                poisoned = traceback.format_exc()
        if op in REPLYING_COMMANDS:
            send(reply if poisoned is None else ("error", poisoned))


class ThreadLane:
    """One worker state on a daemon thread behind a bounded queue."""

    mode = "thread"

    def __init__(
        self,
        index: int,
        config: MintConfig,
        sampler_factories: list[SamplerFactory] | None = None,
        queue_bound: int = DEFAULT_QUEUE_BOUND,
    ) -> None:
        self.index = index
        self._inbox: queue.Queue[tuple] = queue.Queue(maxsize=queue_bound)
        self._outbox: queue.SimpleQueue[tuple] = queue.SimpleQueue()
        self._stopped = False
        state = AgentWorkerState(config, sampler_factories)
        self._thread = threading.Thread(
            target=lane_loop,
            args=(self._inbox.get, self._outbox.put, state),
            name=f"ingest-lane-{index}",
            daemon=True,
        )
        self._thread.start()

    def post(self, cmd: tuple) -> None:
        """Queue one command; blocks when the lane is saturated."""
        self._inbox.put(cmd)

    def collect(self) -> tuple:
        """Block for the next reply; raises :class:`LaneError` on one."""
        reply = self._outbox.get()
        if reply[0] == "error":
            raise LaneError(f"ingest lane {self.index} failed:\n{reply[1]}")
        return reply

    def stop(self) -> None:
        """Shut the lane down; idempotent, never raises."""
        if self._stopped:
            return
        self._stopped = True
        if not self._thread.is_alive():
            return
        self._inbox.put(("stop",))
        # Drain until the goodbye — stray error replies from a poisoned
        # lane must not wedge shutdown.
        while True:
            reply = self._outbox.get()
            if reply[0] in ("bye", "error"):
                break
        self._thread.join(timeout=10.0)


def _process_lane_main(conn, config: MintConfig,
                       sampler_factories: list[SamplerFactory]) -> None:
    """Child-process entry point: run the loop over the pipe."""
    state = AgentWorkerState(config, sampler_factories)
    try:
        lane_loop(conn.recv, conn.send, state)
    except (EOFError, BrokenPipeError):  # parent went away; nothing to save
        pass
    finally:
        conn.close()


class ProcessLane:
    """One worker state in a child process behind a duplex pipe.

    Fork is preferred (the lane inherits the parent's imports and the
    sampler factories without pickling them); spawn is the fallback on
    platforms without it.  Lanes are created before any trace is
    ingested, so a forked child never carries stale fleet state.
    """

    mode = "process"

    def __init__(
        self,
        index: int,
        config: MintConfig,
        sampler_factories: list[SamplerFactory] | None = None,
        queue_bound: int = DEFAULT_QUEUE_BOUND,
    ) -> None:
        del queue_bound  # the OS pipe buffer is the bound
        self.index = index
        self._stopped = False
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_process_lane_main,
            args=(child_conn, config, list(sampler_factories or [])),
            name=f"ingest-lane-{index}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def post(self, cmd: tuple) -> None:
        """Send one command; blocks when the pipe buffer is full."""
        self._conn.send(cmd)

    def collect(self) -> tuple:
        """Block for the next reply; raises :class:`LaneError` on one."""
        try:
            reply = self._conn.recv()
        except EOFError as exc:
            raise LaneError(f"ingest lane {self.index} died without replying") from exc
        if reply[0] == "error":
            raise LaneError(f"ingest lane {self.index} failed:\n{reply[1]}")
        return reply

    def stop(self) -> None:
        """Shut the lane down; idempotent, never raises."""
        if self._stopped:
            return
        self._stopped = True
        try:
            if self._proc.is_alive():
                self._conn.send(("stop",))
                while True:
                    reply = self._conn.recv()
                    if reply[0] in ("bye", "error"):
                        break
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn.close()


LANE_KINDS = {"thread": ThreadLane, "process": ProcessLane}


def make_lane(mode: str, index: int, config: MintConfig,
              sampler_factories: list[SamplerFactory] | None = None,
              queue_bound: int = DEFAULT_QUEUE_BOUND):
    """Construct one lane of the requested kind."""
    try:
        kind = LANE_KINDS[mode]
    except KeyError:
        raise ValueError(
            f"unknown worker mode {mode!r}; expected one of {sorted(LANE_KINDS)}"
        ) from None
    return kind(index, config, sampler_factories, queue_bound)
