"""Lane-side worker state: one lane's agent/collector fleet.

A lane executes the plane's command protocol over whatever channel its
kind provides (an in-process queue or a pipe); this module is the part
that is channel-agnostic.  The one rule that makes the whole design
deterministic lives here: **a lane never touches the transport seam.**
Collectors on a lane are wired to a :class:`ReportRecorder` instead of
a transport, so the parse/sample hot path runs fully off-thread while
every report it would have sent is merely *stamped* with its position
in the sequential arrival order.  The parent replays the stamped
reports through the real transport at the apply barrier — single
writer, exact sequential order, every byte charged in one place.

Command protocol (tuples; first element is the op):

==============================  =======================================
``("warmup", items)``           offline warm-up; items are
                                ``(node, spans)`` pairs
``("ops", items)``              ingest batch; items are
                                ``(seq, sub_idx, now, sub_trace)``
``("barrier",)``                reply ``("phase1", reports, sampled,
                                overflows)`` and reset the accumulators;
                                ``overflows`` reports any params-buffer
                                eviction since the previous barrier
``("mark", items)``             backend-initiated sampling marks;
                                items are ``(order, node, trace_id)``;
                                reply ``("reports", reports)``
``("flush", items, now)``       end-of-run collector flush; items are
                                ``(order, node)``; reply as ``mark``
``("pull", node, trace_id)``    retroactive parameter pull; reply
                                ``("pull", buffered, reports)``
``("introspect", node)``        reply ``("library", stats-or-None)``
``("stop",)``                   reply ``("bye",)`` and exit
==============================  =======================================

Replies carrying reports list ``(stamp, report)`` pairs; a stamp is the
command's context prefix — ``(seq, sub_idx)`` for ingest ops, a global
``(order,)`` for marks and flushes — plus an emission ordinal, so a
lexicographic sort across lanes reconstructs the exact order a
single-threaded run would have delivered them in.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.reports import Report
from repro.agent.samplers import Sampler

#: A report's position in the sequential arrival order.
Stamp = tuple

SamplerFactory = Callable[[], Sampler]

#: Ops that must produce exactly one reply on the lane's outbound
#: channel.  Everything else is fire-and-forget: per-lane FIFO ordering
#: of the inbound channel is the only synchronisation those need.
REPLYING_COMMANDS = frozenset({"barrier", "mark", "flush", "pull", "introspect", "stop"})


class ReportRecorder:
    """The lane-side stand-in for the transport seam.

    Quacks like a transport as far as :class:`MintCollector` cares (a
    ``deliver`` method), but records ``(stamp, report)`` into the
    current sink instead of charging meters or touching a backend.
    ``begin`` sets the stamp prefix for one command's emissions; the
    ordinal restarts at zero so reports emitted by one sub-trace (a
    pattern report, a Bloom flush mid-ingest, a params upload) keep
    their relative order under the prefix.
    """

    def __init__(self) -> None:
        self._sink: list[tuple[Stamp, Report]] = []
        self._prefix: Stamp = (0,)
        self._ordinal = 0

    def begin(self, sink: list[tuple[Stamp, Report]], prefix: Stamp) -> None:
        """Route subsequent deliveries into ``sink`` under ``prefix``."""
        self._sink = sink
        self._prefix = tuple(prefix)
        self._ordinal = 0

    def deliver(self, report: Report) -> None:
        """Record one report at the next stamp under the current prefix."""
        self._sink.append((self._prefix + (self._ordinal,), report))
        self._ordinal += 1


class AgentWorkerState:
    """One lane's fleet plus the command handlers that drive it.

    Collectors are created on first sight of a node, exactly as the
    framework does — but only for nodes the plane routed to this lane,
    so the fleet is partitioned, never replicated.  The state is
    self-contained and channel-free: thread lanes share the parent's
    address space (safely — nothing here is touched by two threads),
    process lanes pickle commands across a pipe.
    """

    def __init__(
        self,
        config: MintConfig,
        sampler_factories: list[SamplerFactory] | None = None,
    ) -> None:
        self.config = config
        self._factories = list(sampler_factories or [])
        self._collectors: dict[str, MintCollector] = {}
        self._recorder = ReportRecorder()
        # Accumulated between barriers.
        self._phase_reports: list[tuple[Stamp, Report]] = []
        self._phase_sampled: list[tuple[int, int, str, str]] = []
        # Per-node params-buffer eviction counters at the last barrier:
        # a delta within an epoch is the determinism hazard the plane
        # must fail loudly on (see _params_overflows).
        self._evicted_blocks_seen: dict[str, int] = {}
        self._evicted_bytes_seen: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Fleet
    # ------------------------------------------------------------------
    def _collector_for(self, node: str) -> MintCollector:
        collector = self._collectors.get(node)
        if collector is None:
            agent = MintAgent(
                node=node,
                config=self.config,
                extra_samplers=[factory() for factory in self._factories],
            )
            collector = MintCollector(
                agent=agent, transport=self._recorder, config=self.config
            )
            self._collectors[node] = collector
        return collector

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, cmd: tuple) -> tuple | None:
        """Run one protocol command; returns the reply or None."""
        handler = getattr(self, f"_cmd_{cmd[0]}", None)
        if handler is None:
            raise ValueError(f"unknown lane command: {cmd[0]!r}")
        return handler(*cmd[1:])

    def _cmd_warmup(self, items: list[tuple[str, list]]) -> None:
        for node, spans in items:
            self._collector_for(node).agent.warm_up(spans)
        return None

    def _cmd_ops(self, items: list[tuple[int, int, float, Any]]) -> None:
        for seq, sub_idx, now, sub_trace in items:
            collector = self._collector_for(sub_trace.node)
            self._recorder.begin(self._phase_reports, (seq, sub_idx))
            result = collector.process(sub_trace, now)
            if result.sampled:
                self._phase_sampled.append(
                    (seq, sub_idx, sub_trace.node, result.trace_id)
                )
        return None

    def _cmd_barrier(self) -> tuple:
        reports, self._phase_reports = self._phase_reports, []
        sampled, self._phase_sampled = self._phase_sampled, []
        return ("phase1", reports, sampled, self._params_overflows())

    def _params_overflows(self) -> list[dict]:
        """Params-buffer evictions since the previous barrier.

        A sequential run uploads a sampled trace's params on the
        backend's mid-epoch ``mark_sampled`` round-trip, freeing buffer
        space; a lane defers every mark to the apply barrier — so an
        in-epoch eviction here can drop records the sequential run
        would have kept, silently breaking bit-identity.  The plane
        turns any reported delta into a :class:`LaneError` naming the
        lane, epoch and buffered bytes.
        """
        out: list[dict] = []
        for node, collector in self._collectors.items():
            buffer = collector.agent.params_buffer
            blocks_before = self._evicted_blocks_seen.get(node, 0)
            if buffer.evicted_blocks > blocks_before:
                out.append(
                    {
                        "node": node,
                        "evicted_blocks": buffer.evicted_blocks - blocks_before,
                        "evicted_bytes": buffer.evicted_bytes
                        - self._evicted_bytes_seen.get(node, 0),
                        "buffered_bytes": buffer.used_bytes,
                        "capacity_bytes": buffer.capacity_bytes,
                    }
                )
            self._evicted_blocks_seen[node] = buffer.evicted_blocks
            self._evicted_bytes_seen[node] = buffer.evicted_bytes
        return out

    def _cmd_mark(self, items: list[tuple[int, str, str]]) -> tuple:
        out: list[tuple[Stamp, Report]] = []
        for order, node, trace_id in items:
            collector = self._collectors.get(node)
            if collector is None:
                continue
            self._recorder.begin(out, (order,))
            collector.mark_sampled(trace_id)
        return ("reports", out)

    def _cmd_flush(self, items: list[tuple[int, str]], now: float) -> tuple:
        out: list[tuple[Stamp, Report]] = []
        for order, node in items:
            collector = self._collectors.get(node)
            if collector is None:
                continue
            self._recorder.begin(out, (order,))
            collector.flush(now)
        return ("reports", out)

    def _cmd_pull(self, node: str, trace_id: str) -> tuple:
        out: list[tuple[Stamp, Report]] = []
        buffered = False
        collector = self._collectors.get(node)
        if collector is not None:
            self._recorder.begin(out, (0,))
            buffered = collector.request_params(trace_id)
        return ("pull", buffered, out)

    def _cmd_introspect(self, node: str) -> tuple:
        collector = self._collectors.get(node)
        if collector is None:
            return ("library", None)
        agent = collector.agent
        return (
            "library",
            {
                "node": node,
                "span_pattern_ids": agent.span_parser.library.snapshot(),
                "topo_pattern_ids": agent.trace_parser.library.snapshot(),
                "sampled_traces": len(collector.sampled_trace_ids),
            },
        )
