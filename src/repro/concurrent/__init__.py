"""Concurrent ingest: shard-parallel workers over the transport seam.

The package splits the single-threaded ingest loop into *lanes* — each
lane owns the agent/collector fleet of one host partition and runs the
parse/sample hot path off the main thread (or, behind the deployment
flag, in its own process).  The parent keeps the single-writer role:
every report crosses the real transport seam in the exact sequential
arrival order at deterministic epoch barriers, so byte tables, query
results and stored state are bit-identical to the one-thread run at
any worker count.

Layout:

* :mod:`repro.concurrent.worker` — lane-side state + report recorder;
* :mod:`repro.concurrent.lanes` — bounded thread/process channels;
* :mod:`repro.concurrent.plane` — the :class:`ParallelIngestPlane`
  single-writer orchestrator and its collector proxies;
* :mod:`repro.concurrent.snapshot` — read-only published pattern-plane
  snapshots (RCU-style: readers never see a half-applied epoch);
* :mod:`repro.concurrent.verify` — the invariance oracle shared by the
  benchmark gate, the test suite and the sim harness.
"""

from repro.concurrent.lanes import LaneError, ProcessLane, ThreadLane, make_lane
from repro.concurrent.plane import LaneCollectorProxy, ParallelIngestPlane
from repro.concurrent.snapshot import PatternPlaneSnapshot
from repro.concurrent.worker import AgentWorkerState, ReportRecorder

__all__ = [
    "AgentWorkerState",
    "LaneCollectorProxy",
    "LaneError",
    "ParallelIngestPlane",
    "PatternPlaneSnapshot",
    "ProcessLane",
    "ReportRecorder",
    "ThreadLane",
    "make_lane",
]
