"""Read-mostly pattern-plane snapshots.

The interned pattern libraries are the textbook read-mostly structure:
they grow early, then ~every span resolves against them without a
write.  The concurrent plane therefore publishes them RCU-style — the
single writer captures an immutable :class:`PatternPlaneSnapshot` at
each epoch barrier and swaps one reference; readers on any thread see
either the previous complete epoch or the new one, never a
half-applied store.  Snapshots are cheap (the pattern objects
themselves are immutable and shared; only the id→pattern mapping is
copied) and versioned, so a reader can tell whether anything changed
since it last looked.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsing.span_parser import SpanPattern
    from repro.parsing.trace_parser import TopoPattern


@dataclass(frozen=True)
class PatternPlaneSnapshot:
    """One published, immutable view of the deployment's pattern plane.

    ``version`` increments only when a pattern report actually changed
    the plane between captures — Bloom and params traffic never bumps
    it, so readers polling the version skip reconciliation on the vast
    majority of epochs.
    """

    version: int
    span_patterns: Mapping[str, "SpanPattern"]
    topo_patterns: Mapping[str, "TopoPattern"]
    pattern_bytes: int

    @classmethod
    def empty(cls) -> "PatternPlaneSnapshot":
        """The version-0 snapshot published before any epoch applies."""
        return cls(
            version=0,
            span_patterns=MappingProxyType({}),
            topo_patterns=MappingProxyType({}),
            pattern_bytes=0,
        )

    @classmethod
    def capture(cls, storage: Any, version: int) -> "PatternPlaneSnapshot":
        """Freeze the backend store's current pattern plane.

        Works over a single :class:`~repro.backend.storage.StorageEngine`
        and the sharded merged view alike — both expose iterable
        ``span_patterns`` / ``topo_patterns`` mappings and a
        ``pattern_bytes`` figure.  Only the single writer calls this,
        between epochs, so the iteration is race-free by construction.
        """
        span = {pid: storage.span_patterns.get(pid) for pid in storage.span_patterns}
        topo = {pid: storage.topo_patterns.get(pid) for pid in storage.topo_patterns}
        return cls(
            version=version,
            span_patterns=MappingProxyType(span),
            topo_patterns=MappingProxyType(topo),
            pattern_bytes=storage.pattern_bytes,
        )

    def __len__(self) -> int:
        return len(self.span_patterns) + len(self.topo_patterns)

    def get(self, pattern_id: str) -> Any:
        """Pattern by id across both planes, or None."""
        found = self.span_patterns.get(pattern_id)
        if found is not None:
            return found
        return self.topo_patterns.get(pattern_id)

    def pattern_ids(self) -> tuple[str, ...]:
        """All published pattern ids, span plane first, insertion order."""
        return tuple(self.span_patterns) + tuple(self.topo_patterns)
