"""The parallel ingest plane: shard-parallel workers, single writer.

:class:`ParallelIngestPlane` fans the ingest hot path (span parsing,
pattern interning, Bloom mounting, sampling) out over worker lanes
while keeping every side effect that the rest of the system can
observe — transport byte charges, backend stores, notification
fan-out, storage syncs — on the parent, in the exact order a
single-threaded run would have produced them.  That split is the whole
determinism argument:

* **Partitioned fleet.**  Hosts are assigned to lanes by the same
  stable hash that assigns them to shards (``shard_for_key``), so a
  host's sub-traces always land on the same lane in submission order —
  per ``(link, host)`` report order is preserved by construction, and
  ``workers == num_shards`` runs each shard's producer fleet on its own
  worker.
* **Stamped reports.**  Lanes never touch the transport; they stamp
  every would-be delivery with its sequential position
  (see :mod:`repro.concurrent.worker`).
* **Deterministic epochs.**  Every ``ingest_epoch`` traces (a count,
  never wall clock — worker-count independent) the plane barriers all
  lanes and **applies**: reports are delivered through the real
  transport sorted by stamp, sampling notifications run per trace in
  sub-trace order with their mark round-trips, and storage is synced
  per trace at that trace's timestamp.  The apply loop is the only
  writer the backend, meters and query plane ever see.
* **Published snapshots.**  After each apply the plane captures an
  immutable :class:`PatternPlaneSnapshot` and swaps one reference —
  the read-mostly pattern plane is served RCU-style, never locked.

Bit-identity with the sequential run therefore holds at any worker
count, in both lane modes.  The one bound — a params buffer must not
overflow *within* one epoch (sequential mark round-trips free buffer
space mid-epoch; the lanes only free it at the barrier) — is enforced,
not assumed: every barrier reply carries the lanes' buffer-eviction
deltas, and an in-epoch eviction raises a deterministic
:class:`~repro.concurrent.lanes.LaneError` naming the lane, epoch and
buffered bytes instead of letting the run silently diverge.  The
default 4 MB buffers hold hundreds of epochs of gate workloads, and
the invariance gate in ``run_concurrent_bench.py --check`` pins the
guarantee empirically.
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterable

from repro.agent.reports import PatternLibraryReport, Report
from repro.backend.sharded import shard_for_key
from repro.concurrent.lanes import DEFAULT_QUEUE_BOUND, LaneError, make_lane
from repro.concurrent.snapshot import PatternPlaneSnapshot
from repro.concurrent.worker import SamplerFactory, Stamp
from repro.obs.trace import NULL_OBSERVER, Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.config import MintConfig
    from repro.model.trace import Trace
    from repro.transport.plane import BackendPlane
    from repro.transport.transport import Transport

#: Sub-trace ops buffered per lane before a batch is posted — amortises
#: queue/pipe traffic without delaying work past an epoch (the barrier
#: flushes partial batches).
DEFAULT_OPS_BATCH = 32


class LaneCollectorProxy:
    """Stands in for a lane-resident collector in the parent's registry.

    The backend plane's notification fan-out and retroactive parameter
    pull only need ``node``, ``mark_sampled`` and ``request_params`` —
    this proxy forwards them to the owning lane through the plane, so
    ``BackendPlane`` runs unmodified over a partitioned fleet.
    Registration order equals node discovery order, exactly as in the
    sequential run, so fan-out visits collectors identically.
    """

    def __init__(self, plane: "ParallelIngestPlane", node: str, lane_index: int) -> None:
        self._plane = plane
        self._node = node
        self.lane_index = lane_index

    @property
    def node(self) -> str:
        """Node this (remote) collector serves."""
        return self._node

    def mark_sampled(self, trace_id: str) -> None:
        """Queue the backend's sampling mark for the owning lane."""
        self._plane._queue_mark(self, trace_id)

    def request_params(self, trace_id: str) -> bool:
        """Synchronous pull round-trip to the owning lane."""
        return self._plane._pull(self, trace_id)


class ParallelIngestPlane:
    """Shard-parallel ingest over worker lanes, applied by one writer."""

    def __init__(
        self,
        backend: "BackendPlane",
        transport: "Transport",
        config: "MintConfig",
        workers: int,
        mode: str = "thread",
        ingest_epoch: int = 32,
        set_now: Callable[[float], None] | None = None,
        sampler_factories: list[SamplerFactory] | None = None,
        queue_bound: int = DEFAULT_QUEUE_BOUND,
        ops_batch: int = DEFAULT_OPS_BATCH,
    ) -> None:
        if workers <= 0:
            raise ValueError("a parallel ingest plane needs at least one worker")
        if ingest_epoch <= 0:
            raise ValueError("ingest_epoch must be a positive trace count")
        self.backend = backend
        self.transport = transport
        self.workers = workers
        self.mode = mode
        self.ingest_epoch = ingest_epoch
        self._set_now = set_now if set_now is not None else (lambda now: None)
        self._ops_batch = ops_batch
        self._lanes = [
            make_lane(mode, i, config, sampler_factories, queue_bound)
            for i in range(workers)
        ]
        self._proxies: dict[str, LaneCollectorProxy] = {}
        self._op_buffers: list[list] = [[] for _ in range(workers)]
        # (seq, now, trace_id) of every trace submitted this epoch.
        self._epoch_meta: list[tuple[int, float, str]] = []
        self._seq = 0
        self._epochs_applied = 0
        # Marks queued by proxies during the apply loop's notifications.
        self._mark_queue: list[tuple[int, int, str, str]] = []
        self._mark_order = 0
        self._snapshot = PatternPlaneSnapshot.empty()
        self._patterns_dirty = False
        self._stopped = False
        self.bind_observer(NULL_OBSERVER)

    def bind_observer(self, observer: Observer) -> None:
        """Attach the observability plane's handle — parent side only.

        Lanes are never instrumented: the single-writer rule says a
        worker touches no shared state, and the registry is shared
        state.  All counting happens here, at the apply barrier, where
        the parent replays the lanes' stamped reports anyway.
        """
        self.observer = observer
        self._obs_epochs = observer.counter("mint_epochs_applied", plane="concurrent")
        self._obs_barrier_hist = observer.stage_histogram("epoch_barrier")
        self._obs_lane_reports = [
            observer.counter("mint_lane_reports", lane=str(i), plane="concurrent")
            for i in range(self.workers)
        ]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def warm_up(self, traces: Iterable["Trace"]) -> None:
        """Fan the offline warm-up out to the owning lanes.

        Node grouping and iteration order match the framework's
        sequential ``warm_up`` exactly, so proxies register (and lanes
        later create collectors) in the identical discovery order.
        """
        per_node: dict[str, list] = {}
        for trace in traces:
            for span in trace.spans:
                per_node.setdefault(span.node, []).append(span)
        per_lane: dict[int, list] = defaultdict(list)
        for node, spans in per_node.items():
            proxy = self._proxy_for(node)
            per_lane[proxy.lane_index].append((node, spans))
        for lane_index, items in per_lane.items():
            self._lanes[lane_index].post(("warmup", items))
        # No reply needed: per-lane FIFO ordering already guarantees the
        # warm-up lands before any op posted after this returns.

    def submit(self, trace: "Trace", now: float) -> None:
        """Queue one trace's sub-traces on their owning lanes.

        Applies the pending epoch when it fills.  The epoch boundary is
        a pure function of the trace sequence number — never of worker
        count, queue depth or timing — which is what makes every
        observable byte and store identical at any parallelism.
        """
        seq = self._seq
        self._seq += 1
        self._epoch_meta.append((seq, now, trace.trace_id))
        for sub_idx, sub_trace in enumerate(trace.sub_traces()):
            proxy = self._proxy_for(sub_trace.node)
            buffer = self._op_buffers[proxy.lane_index]
            buffer.append((seq, sub_idx, now, sub_trace))
            if len(buffer) >= self._ops_batch:
                self._lanes[proxy.lane_index].post(("ops", buffer))
                self._op_buffers[proxy.lane_index] = []
        if len(self._epoch_meta) >= self.ingest_epoch:
            self._apply_epoch()

    def quiesce(self) -> None:
        """Barrier and apply the partial epoch; lanes end up idle.

        The query plane calls this before planning so mid-run reads see
        a complete prefix of the stream, never a torn epoch.
        """
        self._apply_epoch()

    def flush_collectors(self, now: float) -> None:
        """End-of-run flush of every collector, in registration order.

        Drains the partial epoch first, then replays each collector's
        flush emissions (final pattern report, active Bloom filters,
        owed params) through the transport exactly as the sequential
        ``finalize`` loop would have.
        """
        self._apply_epoch()
        per_lane: dict[int, list] = defaultdict(list)
        for order, proxy in enumerate(self._proxies.values()):
            per_lane[proxy.lane_index].append((order, proxy.node))
        self._set_now(now)
        for lane_index, items in per_lane.items():
            self._lanes[lane_index].post(("flush", items, now))
        merged: list[tuple[Stamp, Report]] = []
        for lane_index in per_lane:
            reply = self._lanes[lane_index].collect()
            merged.extend(reply[1])
        merged.sort(key=lambda item: item[0])
        for _, report in merged:
            self._deliver(report)
        self._publish_snapshot()

    # ------------------------------------------------------------------
    # The single-writer apply step
    # ------------------------------------------------------------------
    def _apply_epoch(self) -> None:
        """Barrier all lanes and replay the epoch sequentially.

        Phase 1 (parallel, already done): lanes parsed and sampled.
        Phase 2 (here, single-writer): for each trace in sequence
        order — deliver its stamped reports through the real transport,
        run its sampling notifications (charging pings and doing the
        mark round-trips), then sync storage at its timestamp.  This is
        byte-for-byte the sequential ``_process_online`` schedule.
        """
        if not self._epoch_meta:
            return
        for lane_index, buffer in enumerate(self._op_buffers):
            if buffer:
                self._lanes[lane_index].post(("ops", buffer))
                self._op_buffers[lane_index] = []
        for lane in self._lanes:
            lane.post(("barrier",))
        observed = self.observer.enabled
        barrier_start = perf_counter() if observed else 0.0
        reports: list[tuple[Stamp, Report]] = []
        sampled: list[tuple[int, int, str, str]] = []
        overflows: list[tuple[int, dict]] = []
        for index, lane in enumerate(self._lanes):
            reply = lane.collect()
            reports.extend(reply[1])
            sampled.extend(reply[2])
            if observed and reply[1]:
                self._obs_lane_reports[index].inc(len(reply[1]))
            if len(reply) > 3 and reply[3]:
                overflows.extend((index, info) for info in reply[3])
        if observed:
            # Wall time the parent spent waiting on the slowest lane —
            # the barrier cost the McKenney-style read-mostly split is
            # supposed to keep small.
            self._obs_barrier_hist.observe(max(0.0, perf_counter() - barrier_start))
            self._obs_epochs.inc()
        if overflows:
            # Fail before any replay: a lane evicted params-buffer
            # blocks *within* this epoch, which a sequential run may
            # have kept (its mid-epoch mark round-trips free buffer
            # space the lanes only free at this barrier).  Applying the
            # epoch could silently diverge from the workers=0 run, so
            # the bound is enforced loudly and deterministically — the
            # trigger is a pure function of the stream and config.
            detail = "; ".join(
                f"lane {index} node {info['node']}: evicted "
                f"{info['evicted_blocks']} block(s) / {info['evicted_bytes']} "
                f"bytes with {info['buffered_bytes']} of "
                f"{info['capacity_bytes']} bytes still buffered"
                for index, info in overflows
            )
            raise LaneError(
                f"params buffer overflowed within ingest epoch "
                f"{self._epochs_applied}: {detail}. Raise "
                f"MintConfig.params_buffer_bytes or lower "
                f"Deployment.ingest_epoch so one epoch's parameters fit."
            )
        reports.sort(key=lambda item: item[0])
        sampled.sort(key=lambda item: (item[0], item[1]))
        reports_by_seq: dict[int, list[tuple[Stamp, Report]]] = defaultdict(list)
        for stamp, report in reports:
            reports_by_seq[stamp[0]].append((stamp, report))
        sampled_by_seq: dict[int, list[tuple[int, int, str, str]]] = defaultdict(list)
        for entry in sampled:
            sampled_by_seq[entry[0]].append(entry)
        for seq, now, _trace_id in self._epoch_meta:
            self._set_now(now)
            for _, report in reports_by_seq.get(seq, ()):
                self._deliver(report)
            for _, _, node, trace_id in sampled_by_seq.get(seq, ()):
                self.backend.notify_sampled(trace_id, origin_node=node)
            self._flush_marks()
            self.transport.sync_storage()
        self._epoch_meta = []
        self._epochs_applied += 1
        self._publish_snapshot()

    def _deliver(self, report: Report) -> None:
        self.transport.deliver(report)
        if isinstance(report, PatternLibraryReport):
            self._patterns_dirty = True

    def _queue_mark(self, proxy: LaneCollectorProxy, trace_id: str) -> None:
        order = self._mark_order
        self._mark_order += 1
        self._mark_queue.append((order, proxy.lane_index, proxy.node, trace_id))

    def _flush_marks(self) -> None:
        """Round-trip queued sampling marks and replay their uploads.

        The backend queued marks in collector-registration order; the
        stamp sort below replays the resulting params uploads in that
        same order, matching the sequential interleaving (meter buckets
        are time-keyed sums, so ping-vs-upload micro-order within the
        instant is unobservable).
        """
        if not self._mark_queue:
            return
        per_lane: dict[int, list] = defaultdict(list)
        for order, lane_index, node, trace_id in self._mark_queue:
            per_lane[lane_index].append((order, node, trace_id))
        self._mark_queue = []
        self._mark_order = 0
        for lane_index, items in per_lane.items():
            self._lanes[lane_index].post(("mark", items))
        merged: list[tuple[Stamp, Report]] = []
        for lane_index in per_lane:
            reply = self._lanes[lane_index].collect()
            merged.extend(reply[1])
        merged.sort(key=lambda item: item[0])
        for _, report in merged:
            self._deliver(report)

    def _pull(self, proxy: LaneCollectorProxy, trace_id: str) -> bool:
        """Synchronous retroactive pull against one lane collector."""
        lane = self._lanes[proxy.lane_index]
        lane.post(("pull", proxy.node, trace_id))
        _, buffered, reports = lane.collect()
        for _, report in reports:
            self._deliver(report)
        return buffered

    # ------------------------------------------------------------------
    # Fleet wiring
    # ------------------------------------------------------------------
    def _proxy_for(self, node: str) -> LaneCollectorProxy:
        proxy = self._proxies.get(node)
        if proxy is None:
            proxy = LaneCollectorProxy(self, node, shard_for_key(node, self.workers))
            self._proxies[node] = proxy
            self.backend.register_collector(proxy)
        return proxy

    @property
    def nodes(self) -> list[str]:
        """Discovered nodes, registration order."""
        return list(self._proxies)

    def lane_of(self, node: str) -> int | None:
        """Which lane owns ``node`` (None before discovery)."""
        proxy = self._proxies.get(node)
        return proxy.lane_index if proxy is not None else None

    def worker_library_stats(self, node: str) -> dict | None:
        """Introspect the owning lane's agent libraries for ``node``.

        Test/diagnostic hook: returns the lane-side interned pattern
        ids, or None when the node is unknown.  Quiesce first for a
        stable answer mid-run.
        """
        proxy = self._proxies.get(node)
        if proxy is None:
            return None
        lane = self._lanes[proxy.lane_index]
        lane.post(("introspect", node))
        return lane.collect()[1]

    # ------------------------------------------------------------------
    # Published pattern plane
    # ------------------------------------------------------------------
    def pattern_snapshot(self) -> PatternPlaneSnapshot:
        """The latest published snapshot (atomic reference read)."""
        return self._snapshot

    def _publish_snapshot(self) -> None:
        if not self._patterns_dirty:
            return
        self._snapshot = PatternPlaneSnapshot.capture(
            self.backend.storage, self._snapshot.version + 1
        )
        self._patterns_dirty = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def epochs_applied(self) -> int:
        """How many apply barriers have run (diagnostics)."""
        return self._epochs_applied

    def shutdown(self) -> None:
        """Stop every lane; idempotent, never raises."""
        if self._stopped:
            return
        self._stopped = True
        for lane in self._lanes:
            lane.stop()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass
