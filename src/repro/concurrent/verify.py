"""The worker-count invariance oracle.

One place that defines what "bit-identical to the single-threaded run"
means operationally, shared by the benchmark gate
(``run_concurrent_bench.py --check``), the test suite and the sim
harness: fingerprint a driven framework, then diff two fingerprints
into a human-readable violation list.  A fingerprint covers everything
the paper's figures read —

* the fig02/fig11 byte tables (network/storage totals plus the
  pattern/Bloom/params storage split and, when sharded, the merge
  layer's replicated pattern bytes);
* the per-minute meter series behind the MB/min panels (totals can
  collide by accident; the time series cannot);
* per-shard ledger totals (charge *attribution*, not just sums);
* the full query signature — status per trace, plus exact span counts
  and partial segment shapes, so reconstruction equivalence is pinned
  span-for-span;
* the stored trace-id set.

Event counts are deliberately *not* fingerprinted: meters are
time-keyed byte sums, and the number of ``record`` calls that built a
bucket is an implementation detail the contract does not promise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.query.result import QueryStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.framework import MintFramework


def byte_tables(framework: "MintFramework") -> dict[str, int]:
    """The fig02/fig11 byte-table row for one driven framework."""
    storage = framework.backend.storage
    tables = {
        "network_bytes": framework.network_bytes,
        "storage_bytes": framework.storage_bytes,
        "pattern_bytes": storage.pattern_bytes,
        "bloom_bytes": storage.bloom_bytes,
        "params_bytes": storage.params_bytes,
    }
    merged = getattr(framework.backend, "merged", None)
    if merged is not None:
        tables["replicated_pattern_bytes"] = merged.replicated_pattern_bytes()
    return tables


def meter_series(framework: "MintFramework") -> dict[str, list[tuple[int, int]]]:
    """Per-minute (minute, bytes) series for the MB/min panels."""
    return {
        "network": framework.ledger.network.per_minute_series(),
        "storage": framework.ledger.storage.per_minute_series(),
    }


def shard_ledger_totals(framework: "MintFramework") -> list[tuple[int, int]]:
    """(network, storage) totals per shard ledger — charge attribution."""
    return [
        (ledger.network.total_bytes, ledger.storage.total_bytes)
        for ledger in framework.shard_ledgers
    ]


def query_signature(
    framework: "MintFramework", trace_ids: Iterable[str]
) -> list[tuple[str, str]]:
    """(trace id, status detail) per trace.

    Statuses alone understate equivalence, so exact hits fold in the
    reconstructed span count and partial hits the segment shapes —
    the same oracle the sharded invariance gate uses.
    """
    signature: list[tuple[str, str]] = []
    for result in framework.query_many(trace_ids):
        detail = str(result.status)
        if result.status is QueryStatus.EXACT and result.trace is not None:
            detail += f":{len(result.trace.spans)}"
        elif result.status is QueryStatus.PARTIAL and result.approximate is not None:
            detail += ":" + ",".join(
                f"{seg.topo_pattern_id}/{seg.span_count}"
                for seg in result.approximate.segments
            )
        signature.append((result.trace_id, detail))
    return signature


def fingerprint(framework: "MintFramework", stream: list) -> dict[str, Any]:
    """Everything the invariance contract promises, in one dict.

    ``stream`` is the driven (timestamp, trace) list — the query sweep
    covers every trace in it.  Run after ``finalize``; the sweep itself
    is read-only (no retroactive pull), so fingerprinting does not
    perturb what it measures.
    """
    return {
        "byte_tables": byte_tables(framework),
        "meter_series": meter_series(framework),
        "shard_ledgers": shard_ledger_totals(framework),
        "query_signature": query_signature(
            framework, [trace.trace_id for _, trace in stream]
        ),
        "stored_trace_ids": sorted(framework.stored_trace_ids()),
    }


def compare_fingerprints(
    reference: dict[str, Any], candidate: dict[str, Any], label: str = "candidate"
) -> list[str]:
    """Diff two fingerprints into violation strings (empty == identical)."""
    violations: list[str] = []
    for key, ref_value in reference["byte_tables"].items():
        got = candidate["byte_tables"].get(key)
        if got != ref_value:
            violations.append(f"{label}: {key} {got} != reference {ref_value}")
    for meter, ref_series in reference["meter_series"].items():
        if candidate["meter_series"].get(meter) != ref_series:
            violations.append(f"{label}: {meter} per-minute series diverges")
    if candidate["shard_ledgers"] != reference["shard_ledgers"]:
        violations.append(f"{label}: per-shard ledger totals diverge")
    if candidate["query_signature"] != reference["query_signature"]:
        diverged = sum(
            1
            for ours, theirs in zip(
                candidate["query_signature"], reference["query_signature"]
            )
            if ours != theirs
        )
        violations.append(
            f"{label}: query signature diverges on {diverged} trace(s)"
        )
    if candidate["stored_trace_ids"] != reference["stored_trace_ids"]:
        violations.append(f"{label}: stored trace-id set diverges")
    return violations
