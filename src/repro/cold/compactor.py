"""The compaction pass: seal cold segments of one storage engine.

A :class:`ColdPolicy` picks *what* is cold — by recency over the
store's insertion order (``lru``: keep the newest N params buckets and
stored filters hot) or by time window (``time``: seal buckets whose
newest record is older than ``max_age``) — and *how* it is sealed
(block sizes, codec, dictionary budget).  :func:`compact_engine` runs
one pass over one engine; sharded deployments run it per shard (the
backend plane's ``compact_cold`` fans out).

Fidelity is checked at seal time twice over: every selected bucket
must survive the canonical-JSON frame round trip *before* sealing
(records that would not — exotic value types — simply stay hot and
are counted, never corrupted), and every compressed block must decode
back bit-identical before it is admitted.  Together with the ruler
split (sealing moves no logical counters) this makes the cold
bit-identity gate hold by construction.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cold.blocks import decode_params_payload, encode_params_payload
from repro.cold.codec import make_codec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.storage import StorageEngine


@dataclass(frozen=True)
class ColdPolicy:
    """What to seal and how to compress it."""

    mode: str = "lru"  # "lru" (recency over insertion order) | "time"
    keep_hot_traces: int = 0  # lru: newest N params buckets stay hot
    keep_hot_blooms: int = 0  # newest N stored filters stay hot
    max_age: float | None = None  # time: seal buckets older than now - max_age
    # Small params blocks on purpose: a read or promote decodes one
    # block, and the trained dictionary amortises across many blocks
    # (sized so the dictionary pays for itself even on the zlib
    # fallback — see the bench's trained_vs_plain table).
    block_traces: int = 2  # params buckets per sealed block
    block_blooms: int = 64  # stored filters per sealed block
    codec: str = "auto"  # "auto" | "zstd" | "zlib"
    level: int | None = None
    dict_bytes: int = 1024  # trained-dictionary budget
    train_samples: int = 256  # params records sampled into training

    def __post_init__(self) -> None:
        if self.mode not in ("lru", "time"):
            raise ValueError(f"cold policy mode must be 'lru' or 'time', got {self.mode!r}")
        if self.mode == "time" and self.max_age is None:
            raise ValueError("a time-window cold policy needs max_age seconds")
        if self.keep_hot_traces < 0 or self.keep_hot_blooms < 0:
            raise ValueError("keep_hot_* must be >= 0")
        if self.block_traces <= 0 or self.block_blooms <= 0:
            raise ValueError("block sizes must be positive")


@dataclass
class CompactionStats:
    """One compaction pass's outcome (per engine; sum across shards)."""

    blocks: int = 0
    params_traces: int = 0
    bloom_filters: int = 0
    skipped_traces: int = 0  # buckets kept hot by the fidelity check
    logical_bytes: int = 0  # store-time charges moved behind seals
    raw_bytes: int = 0  # frame bytes before compression
    physical_bytes: int = 0  # compressed block bytes added
    elapsed_seconds: float = 0.0
    codec: str = ""
    dict_bytes: int = 0
    labels: list[str] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """Logical-over-physical for the sealed segments alone."""
        return self.logical_bytes / self.physical_bytes if self.physical_bytes else 0.0

    @property
    def throughput_mb_s(self) -> float:
        """Logical MB sealed per second of compaction wall clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.logical_bytes / (1024 * 1024) / self.elapsed_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "blocks": self.blocks,
            "params_traces": self.params_traces,
            "bloom_filters": self.bloom_filters,
            "skipped_traces": self.skipped_traces,
            "logical_bytes": self.logical_bytes,
            "raw_bytes": self.raw_bytes,
            "physical_bytes": self.physical_bytes,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "ratio": round(self.ratio, 3),
            "throughput_mb_s": round(self.throughput_mb_s, 3),
            "codec": self.codec,
            "dict_bytes": self.dict_bytes,
        }

    @classmethod
    def merge(cls, parts: list["CompactionStats"]) -> "CompactionStats":
        """Sum per-engine passes into one deployment-wide figure."""
        total = cls()
        for part in parts:
            total.blocks += part.blocks
            total.params_traces += part.params_traces
            total.bloom_filters += part.bloom_filters
            total.skipped_traces += part.skipped_traces
            total.logical_bytes += part.logical_bytes
            total.raw_bytes += part.raw_bytes
            total.physical_bytes += part.physical_bytes
            total.elapsed_seconds += part.elapsed_seconds
            total.dict_bytes += part.dict_bytes
            if part.codec:
                total.codec = part.codec
        return total


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _corpus_samples(
    engine: "StorageEngine",
    selected: list[tuple[str, list[list[Any]]]],
    policy: ColdPolicy,
) -> list[bytes]:
    """Training corpus: the engine's own pattern library plus a capped,
    deterministic sample of the records about to be sealed.  Patterns
    are the templates the params records instantiate, so they are the
    highest-value dictionary content per byte."""
    samples = [_canonical(p.to_dict()) for p in engine.span_patterns.values()]
    samples += [_canonical(p.to_dict()) for p in engine.topo_patterns.values()]
    budget = policy.train_samples
    for _, bucket in selected:
        if budget <= 0:
            break
        for record in bucket[:budget]:
            samples.append(_canonical(record))
        budget -= min(len(bucket), budget)
    return samples


def _select_params(
    engine: "StorageEngine", policy: ColdPolicy, now: float
) -> list[tuple[str, list[list[Any]]]]:
    hot = [(tid, bucket) for tid, bucket in engine.params.hot_items() if bucket]
    if policy.mode == "lru":
        cut = len(hot) - policy.keep_hot_traces
        return hot[: max(cut, 0)]
    cutoff = now - (policy.max_age or 0.0)
    return [
        (tid, bucket)
        for tid, bucket in hot
        if max(record[4] for record in bucket) <= cutoff
    ]


def _select_blooms(engine: "StorageEngine", policy: ColdPolicy) -> list[int]:
    # Stored filters carry no timestamps; both modes age them by stored
    # order, keeping the newest keep_hot_blooms hot (new flushes append).
    positions = engine.blooms.hot_positions()
    cut = len(positions) - policy.keep_hot_blooms
    return positions[: max(cut, 0)]


def _chunks(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def compact_engine(
    engine: "StorageEngine", policy: ColdPolicy | None = None, now: float = 0.0
) -> CompactionStats:
    """Run one compaction pass over one engine; returns its stats.

    Safe to run repeatedly (already-sealed segments are skipped) and at
    any point of a run — the ruler split guarantees no observable byte
    table or query answer moves.
    """
    policy = policy if policy is not None else ColdPolicy()
    started = time.perf_counter()
    tier = engine.cold
    if (policy.codec != "auto" or policy.level is not None) and (
        not len(tier) and not tier.dictionary
    ):
        tier.set_codec(make_codec(policy.codec, policy.level))
    stats = CompactionStats(codec=tier.codec.name)

    selected = _select_params(engine, policy, now)
    bloom_positions = _select_blooms(engine, policy)
    if not selected and not bloom_positions:
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    tier.train(_corpus_samples(engine, selected, policy), policy.dict_bytes)

    sealable: list[tuple[str, list[list[Any]]]] = []
    for trace_id, bucket in selected:
        # Records must survive the JSON frame bit for bit; anything
        # exotic stays hot rather than coming back subtly different.
        framed = encode_params_payload({trace_id: bucket})
        if decode_params_payload(framed) == {trace_id: bucket}:
            sealable.append((trace_id, bucket))
        else:
            stats.skipped_traces += 1

    for chunk in _chunks(sealable, policy.block_traces):
        block = tier.block(engine.seal_params_block(chunk))
        stats.blocks += 1
        stats.params_traces += len(chunk)
        stats.logical_bytes += block.logical_bytes
        stats.raw_bytes += block.raw_bytes
        stats.physical_bytes += block.physical_bytes

    for chunk in _chunks(bloom_positions, policy.block_blooms):
        block = tier.block(engine.seal_bloom_block(chunk))
        stats.blocks += 1
        stats.bloom_filters += len(chunk)
        stats.logical_bytes += block.logical_bytes
        stats.raw_bytes += block.raw_bytes
        stats.physical_bytes += block.physical_bytes

    stats.dict_bytes = tier.dict_bytes
    stats.elapsed_seconds = time.perf_counter() - started
    return stats
