"""Sealed blocks: payload framing and the cold block store.

A :class:`SealedBlock` is one compressed segment of an engine's store —
a group of params buckets or a run of stored Bloom filters — plus the
metadata the hot path needs *without* decoding it: which hosts
contributed entries (segment-granular eviction), which trace ids it
holds, and the exact logical bytes its entries were charged at store
time (the conservation invariant: sealing moves no counters).

:class:`ColdTier` owns a store's blocks, its trained dictionary, and a
small LRU of decoded payloads — the lazy block index queries resolve
sealed segments through.  Decode failures raise :class:`ColdReadError`
loudly; a sealed record is never silently served stale or truncated
(every block is roundtrip-verified at seal time, so a later failure
means real corruption).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.cold.codec import make_codec
from repro.obs.trace import NULL_OBSERVER, Observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.storage import StoredBloom

PARAMS_KIND = "params"
BLOOM_KIND = "blooms"

#: Decoded blocks kept hot; a query batch touching one sealed segment
#: pays its inflation once, not per trace.
DEFAULT_CACHE_BLOCKS = 8


class ColdTierError(RuntimeError):
    """A seal operation could not uphold the cold tier's contracts."""


class ColdReadError(ColdTierError):
    """A sealed block failed to decode — corruption, never stale data."""


def encode_params_payload(buckets: dict[str, list[list[Any]]]) -> bytes:
    """Canonical-JSON frame of a params block (bucket map, key order
    preserved — Python dicts are ordered and JSON object keys keep
    insertion order through a decode round trip)."""
    return json.dumps(buckets, separators=(",", ":")).encode("utf-8")


def decode_params_payload(raw: bytes) -> dict[str, list[list[Any]]]:
    """Inverse of :func:`encode_params_payload`."""
    return json.loads(raw.decode("utf-8"))


def encode_bloom_payload(entries: list["StoredBloom"]) -> bytes:
    """Binary frame of a bloom block: one JSON header describing every
    filter's geometry, then the concatenated raw bit arrays.  The bit
    arrays are near-incompressible entropy, so they are framed (not
    JSON-inflated) and the block is compressed without the params
    dictionary."""
    meta = []
    blobs = []
    for stored in entries:
        filt = stored.filter
        payload = filt.to_bytes()
        meta.append(
            {
                "node": stored.node,
                "topo": stored.topo_pattern_id,
                "inserted": filt.inserted,
                "expected": filt.expected_insertions,
                "fpp": filt.false_positive_probability,
                "nbytes": len(payload),
            }
        )
        blobs.append(payload)
    header = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    return len(header).to_bytes(4, "big") + header + b"".join(blobs)


def decode_bloom_payload(raw: bytes) -> list["StoredBloom"]:
    """Inverse of :func:`encode_bloom_payload`."""
    from repro.backend.storage import StoredBloom
    from repro.bloom.bloom_filter import BloomFilter

    header_len = int.from_bytes(raw[:4], "big")
    meta = json.loads(raw[4 : 4 + header_len].decode("utf-8"))
    out: list[StoredBloom] = []
    offset = 4 + header_len
    for entry in meta:
        nbytes = entry["nbytes"]
        filt = BloomFilter.from_bytes(
            raw[offset : offset + nbytes],
            expected_insertions=entry["expected"],
            false_positive_probability=entry["fpp"],
            inserted=entry["inserted"],
        )
        offset += nbytes
        out.append(
            StoredBloom(node=entry["node"], topo_pattern_id=entry["topo"], filter=filt)
        )
    if offset != len(raw):
        raise ColdReadError(
            f"bloom block frame has {len(raw) - offset} trailing bytes"
        )
    return out


@dataclass(frozen=True)
class SealedBlock:
    """One compressed, immutable segment of an engine's store."""

    block_id: int
    kind: str  # PARAMS_KIND or BLOOM_KIND
    payload: bytes  # compressed frame
    raw_bytes: int  # frame size before compression
    logical_bytes: int  # exact store-time charges of the sealed entries
    hosts: frozenset[str]
    members: tuple  # params: sealed trace ids; blooms: entry count marker
    with_dictionary: bool

    @property
    def physical_bytes(self) -> int:
        """Compressed bytes this block holds on the physical side."""
        return len(self.payload)


class ColdTier:
    """A store's sealed blocks, trained dictionary and decode cache."""

    def __init__(self, codec=None, cache_blocks: int = DEFAULT_CACHE_BLOCKS) -> None:
        self.codec = codec if codec is not None else make_codec("auto")
        self.dictionary = b""
        self._blocks: dict[int, SealedBlock] = {}
        self._next_id = 0
        self._cache: OrderedDict[int, Any] = OrderedDict()
        self._cache_blocks = cache_blocks
        # Lifetime counters (monotonic — promotion does not roll back).
        self.blocks_sealed = 0
        self.blocks_promoted = 0
        self.blocks_decoded = 0
        self.bind_observer(NULL_OBSERVER)

    def bind_observer(self, observer: Observer) -> None:
        """Attach the observability plane's handle (cache + decode
        instruments cached — the decode path is a query hot path)."""
        self.observer = observer
        self._obs_cache_hits = observer.counter("mint_cold_cache_hits", plane="cold")
        self._obs_cache_misses = observer.counter(
            "mint_cold_cache_misses", plane="cold"
        )
        self._obs_decode_hist = observer.stage_histogram("cold_decode")
        self._obs_promote_hist = observer.stage_histogram("cold_promote")

    # ------------------------------------------------------------------
    # Dictionary
    # ------------------------------------------------------------------
    def set_codec(self, codec) -> None:
        """Swap the codec before anything was sealed or trained."""
        if self._blocks or self.dictionary:
            raise ColdTierError(
                "cannot change the cold codec once blocks were sealed or a "
                "dictionary was trained (sealed payloads would not decode)"
            )
        self.codec = codec

    def train(self, samples: list[bytes], max_dict_bytes: int) -> None:
        """Train the shared dictionary once, on first compaction."""
        if not self.dictionary and samples and max_dict_bytes > 0:
            self.dictionary = self.codec.train(samples, max_dict_bytes)

    @property
    def dict_bytes(self) -> int:
        """Physical cost of the trained dictionary."""
        return len(self.dictionary)

    # ------------------------------------------------------------------
    # Seal / decode / promote
    # ------------------------------------------------------------------
    def seal(
        self,
        kind: str,
        raw: bytes,
        logical_bytes: int,
        hosts: frozenset[str],
        members: tuple,
        with_dictionary: bool = True,
    ) -> int:
        """Compress one frame into a sealed block; returns its id.

        The frame is decoded back immediately and compared — a block
        that cannot reproduce its input bit for bit is never admitted,
        so :class:`ColdReadError` later always means post-seal
        corruption, not a lossy codec."""
        dictionary = self.dictionary if with_dictionary else b""
        payload = self.codec.compress(raw, dictionary)
        if self.codec.decompress(payload, dictionary) != raw:
            raise ColdTierError(
                f"codec {self.codec.name} failed the seal-time roundtrip for "
                f"a {kind} block ({len(raw)} raw bytes)"
            )
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = SealedBlock(
            block_id=block_id,
            kind=kind,
            payload=payload,
            raw_bytes=len(raw),
            logical_bytes=logical_bytes,
            hosts=hosts,
            members=members,
            with_dictionary=with_dictionary,
        )
        self.blocks_sealed += 1
        return block_id

    def block(self, block_id: int) -> SealedBlock:
        """Metadata lookup (never decodes)."""
        return self._blocks[block_id]

    def block_ids(self, kind: str | None = None) -> list[int]:
        """Ids of all sealed blocks, optionally filtered by kind."""
        return [
            block_id
            for block_id, block in self._blocks.items()
            if kind is None or block.kind == kind
        ]

    def blocks_with_host(self, host: str, kind: str | None = None) -> list[int]:
        """Ids of sealed blocks holding any entry from ``host``."""
        return [
            block_id
            for block_id, block in self._blocks.items()
            if host in block.hosts and (kind is None or block.kind == kind)
        ]

    def decode(self, block_id: int) -> Any:
        """Decoded payload of one block, through the LRU cache.

        Params blocks decode to their bucket map, bloom blocks to their
        :class:`StoredBloom` list (one materialisation per cache
        residency, so repeated probes reuse the same objects)."""
        cached = self._cache.get(block_id)
        if cached is not None:
            self._cache.move_to_end(block_id)
            self._obs_cache_hits.inc()
            return cached
        self._obs_cache_misses.inc()
        decode_start = perf_counter() if self.observer.enabled else 0.0
        block = self._blocks[block_id]
        dictionary = self.dictionary if block.with_dictionary else b""
        try:
            raw = self.codec.decompress(block.payload, dictionary)
        except Exception as exc:
            raise ColdReadError(
                f"sealed {block.kind} block {block_id} failed to decode "
                f"({len(block.payload)} compressed bytes, codec "
                f"{self.codec.name}): {exc}"
            ) from exc
        if len(raw) != block.raw_bytes:
            raise ColdReadError(
                f"sealed {block.kind} block {block_id} decoded to {len(raw)} "
                f"bytes, expected {block.raw_bytes}"
            )
        decoded = (
            decode_params_payload(raw)
            if block.kind == PARAMS_KIND
            else decode_bloom_payload(raw)
        )
        self.blocks_decoded += 1
        self._cache[block_id] = decoded
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)
        if self.observer.enabled:
            self._obs_decode_hist.observe(max(0.0, perf_counter() - decode_start))
        return decoded

    def pop(self, block_id: int) -> Any:
        """Decode and remove one block (the promote/unseal step)."""
        promote_start = perf_counter() if self.observer.enabled else 0.0
        decoded = self.decode(block_id)
        del self._blocks[block_id]
        self._cache.pop(block_id, None)
        self.blocks_promoted += 1
        if self.observer.enabled:
            self._obs_promote_hist.observe(max(0.0, perf_counter() - promote_start))
        return decoded

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def sealed_logical_bytes(self) -> int:
        """Store-time charges currently held in sealed form."""
        return sum(block.logical_bytes for block in self._blocks.values())

    def physical_bytes(self) -> int:
        """Compressed bytes actually held: block payloads plus the
        dictionary while any block needs it (an empty tier is free —
        promote-everything returns the store to its hot footprint)."""
        if not self._blocks:
            return 0
        total = sum(block.physical_bytes for block in self._blocks.values())
        if any(block.with_dictionary for block in self._blocks.values()):
            total += self.dict_bytes
        return total

    def savings_bytes(self) -> int:
        """Logical minus physical over the sealed segments (can be
        negative for degenerate tiny corpora — reported honestly)."""
        return self.sealed_logical_bytes() - self.physical_bytes()

    def stats(self) -> dict[str, Any]:
        """Counters for panels and the cold benchmark."""
        return {
            "codec": self.codec.name,
            "dict_bytes": self.dict_bytes,
            "sealed_blocks": len(self._blocks),
            "blocks_sealed": self.blocks_sealed,
            "blocks_promoted": self.blocks_promoted,
            "blocks_decoded": self.blocks_decoded,
            "sealed_logical_bytes": self.sealed_logical_bytes(),
            "physical_block_bytes": self.physical_bytes(),
            "savings_bytes": self.savings_bytes(),
        }
