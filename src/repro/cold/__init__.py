"""The cold tier: sealed, dictionary-compressed storage segments.

Hot storage in the :class:`~repro.backend.storage.StorageEngine` is
plain Python objects — parameter buckets and stored Bloom filters —
charged at canonical-JSON wire sizes.  This package seals cold
segments of that store into compressed blocks (a trained-dictionary
zstd codec when ``zstandard`` is installed, a stdlib ``zlib`` codec
with the same trained dictionary otherwise) behind containers that
keep every existing read and write path working unchanged:

* :mod:`repro.cold.codec` — the codecs and deterministic dictionary
  training;
* :mod:`repro.cold.blocks` — sealed-block payload framing and the
  :class:`~repro.cold.blocks.ColdTier` block store with its lazy
  decode index;
* :mod:`repro.cold.store` — the tiered params/bloom containers the
  engine swaps in for its plain dict and list;
* :mod:`repro.cold.compactor` — the compaction policy and pass.

The binding contract is the **ruler split**: sealing and unsealing
never move the logical byte counters (``storage_bytes`` stays the one
fig11 ruler, bit-identical to a never-sealed run), while the physical
figure — ``physical_storage_bytes`` = logical minus cold savings —
tracks what the compressed store actually holds, exactly as
``replicated_pattern_bytes`` is a derived figure next to the merged
pattern table.
"""

from repro.cold.blocks import ColdReadError, ColdTier, ColdTierError, SealedBlock
from repro.cold.codec import (
    ColdCodecError,
    ZlibCodec,
    ZstdCodec,
    make_codec,
    train_fallback_dictionary,
    zstd_available,
)
from repro.cold.compactor import ColdPolicy, CompactionStats, compact_engine
from repro.cold.store import TieredBlooms, TieredParams

__all__ = [
    "ColdCodecError",
    "ColdPolicy",
    "ColdReadError",
    "ColdTier",
    "ColdTierError",
    "CompactionStats",
    "SealedBlock",
    "TieredBlooms",
    "TieredParams",
    "ZlibCodec",
    "ZstdCodec",
    "compact_engine",
    "make_codec",
    "train_fallback_dictionary",
    "zstd_available",
]
