"""Tiered containers: the engine's dict/list, with a cold side.

:class:`TieredParams` and :class:`TieredBlooms` are drop-ins for the
``StorageEngine``'s ``params`` dict and ``blooms`` list.  Every read
path the queriers, merge layer, planner and elastic plane use keeps
working unchanged; sealed entries resolve lazily through the
:class:`~repro.cold.blocks.ColdTier`'s block index.

Tiering rules:

* **Reads read through.**  A lookup against a sealed entry decodes its
  block (LRU-cached) and answers from the decoded payload — no state
  change, no counter movement.
* **Writes promote.**  Any mutation touching a sealed entry first
  promotes (unseals) the whole containing block — segment-granular
  unseal-on-demand, so a retroactive params upload merges into a hot
  bucket exactly as it would have before sealing, and eviction moves
  hot objects only.
* **Order is preserved.**  Iteration order (params) and list positions
  (blooms) are identical to the never-sealed container's — sealing is
  invisible to any reader, including ones that enumerate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.cold.blocks import BLOOM_KIND, PARAMS_KIND, ColdTier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.storage import StoredBloom

_MISSING = object()


class TieredParams:
    """Dict-protocol params store over a hot dict plus sealed blocks.

    The key registry (``_order``) mirrors a plain dict's insertion
    semantics exactly — new keys append, deletion removes, re-insertion
    re-appends — so ``iter(engine.params)`` is bit-identical to the
    never-sealed engine's whatever was sealed in between.
    """

    def __init__(self, tier: ColdTier) -> None:
        self._tier = tier
        self._hot: dict[str, list[list[Any]]] = {}
        self._cold: dict[str, int] = {}  # trace_id -> sealed block id
        self._order: dict[str, None] = {}

    # ------------------------------------------------------------------
    # Reads (read-through, never promote)
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        bucket = self._hot.get(key, _MISSING)
        if bucket is not _MISSING:
            return bucket
        block_id = self._cold.get(key)
        if block_id is None:
            return default
        return self._tier.decode(block_id)[key]

    def __getitem__(self, key: str) -> list[list[Any]]:
        bucket = self.get(key, _MISSING)
        if bucket is _MISSING:
            raise KeyError(key)
        return bucket

    def __contains__(self, key: object) -> bool:
        return key in self._hot or key in self._cold

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> Iterator[str]:
        return iter(self._order)

    def values(self) -> Iterator[list[list[Any]]]:
        for key in self._order:
            yield self[key]

    def items(self) -> Iterator[tuple[str, list[list[Any]]]]:
        for key in self._order:
            yield key, self[key]

    # ------------------------------------------------------------------
    # Writes (promote-on-write)
    # ------------------------------------------------------------------
    def setdefault(self, key: str, default: list[list[Any]]) -> list[list[Any]]:
        block_id = self._cold.get(key)
        if block_id is not None:
            self.promote_block(block_id)
        bucket = self._hot.get(key, _MISSING)
        if bucket is not _MISSING:
            return bucket
        self._hot[key] = default
        self._order[key] = None
        return default

    def __setitem__(self, key: str, value: list[list[Any]]) -> None:
        block_id = self._cold.get(key)
        if block_id is not None:
            self.promote_block(block_id)
        if key not in self._order:
            self._order[key] = None
        self._hot[key] = value

    def __delitem__(self, key: str) -> None:
        block_id = self._cold.get(key)
        if block_id is not None:
            self.promote_block(block_id)
        del self._hot[key]
        del self._order[key]

    # ------------------------------------------------------------------
    # Tiering surface (engine/compactor only)
    # ------------------------------------------------------------------
    def is_sealed(self, key: str) -> bool:
        """True when the bucket lives in a sealed block."""
        return key in self._cold

    def sealed_count(self) -> int:
        """How many buckets are currently sealed."""
        return len(self._cold)

    def hot_items(self) -> list[tuple[str, list[list[Any]]]]:
        """Hot (sealable) buckets in global insertion order."""
        return [
            (key, self._hot[key]) for key in self._order if key in self._hot
        ]

    def seal(self, keys: list[str], block_id: int) -> None:
        """Move hot buckets into a sealed block (payload already built
        and verified by the caller).  Keys keep their registry slots —
        iteration order is untouched."""
        for key in keys:
            del self._hot[key]
            self._cold[key] = block_id

    def promote_block(self, block_id: int) -> None:
        """Unseal one block: its buckets return hot, bit-identical."""
        decoded = self._tier.pop(block_id)
        for key, bucket in decoded.items():
            if self._cold.get(key) == block_id:
                del self._cold[key]
                self._hot[key] = bucket

    def promote_host(self, host: str) -> int:
        """Unseal every block holding records from ``host`` (the
        segment-granular eviction step); returns blocks promoted."""
        block_ids = self._tier.blocks_with_host(host, PARAMS_KIND)
        for block_id in block_ids:
            self.promote_block(block_id)
        return len(block_ids)


class _SealedBloomRef:
    """Placeholder for one sealed filter: hot metadata (node, pattern,
    inserted count — what placement checks and eviction scans read),
    cold bit array (resolved through the block index)."""

    __slots__ = ("node", "topo_pattern_id", "inserted", "block_id", "index")

    def __init__(
        self, node: str, topo_pattern_id: str, inserted: int, block_id: int, index: int
    ) -> None:
        self.node = node
        self.topo_pattern_id = topo_pattern_id
        self.inserted = inserted
        self.block_id = block_id
        self.index = index


class TieredBlooms:
    """List-protocol bloom store preserving exact stored order.

    Entries are hot :class:`StoredBloom` objects or sealed refs in the
    original append positions; resolution decodes the ref's block
    through the tier's LRU cache, so a probe sweep over a sealed run of
    filters inflates each block once.
    """

    def __init__(self, tier: ColdTier) -> None:
        self._tier = tier
        self._entries: list[Any] = []

    # ------------------------------------------------------------------
    # List protocol
    # ------------------------------------------------------------------
    def append(self, stored: "StoredBloom") -> None:
        self._entries.append(stored)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator["StoredBloom"]:
        for entry in self._entries:
            yield self._resolve(entry)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._resolve(entry) for entry in self._entries[index]]
        return self._resolve(self._entries[index])

    def _resolve(self, entry: Any) -> "StoredBloom":
        if isinstance(entry, _SealedBloomRef):
            return self._tier.decode(entry.block_id)[entry.index]
        return entry

    # ------------------------------------------------------------------
    # Tiering surface (engine/compactor only)
    # ------------------------------------------------------------------
    def sealed_count(self) -> int:
        """How many stored filters are currently sealed."""
        return sum(
            1 for entry in self._entries if isinstance(entry, _SealedBloomRef)
        )

    def hot_positions(self) -> list[int]:
        """Positions of hot (sealable) entries, in stored order."""
        return [
            i
            for i, entry in enumerate(self._entries)
            if not isinstance(entry, _SealedBloomRef)
        ]

    def entries_at(self, positions: list[int]) -> list["StoredBloom"]:
        """The hot entries at ``positions`` (seal-payload assembly)."""
        return [self._entries[i] for i in positions]

    def seal(self, positions: list[int], block_id: int) -> None:
        """Replace hot entries with refs into their sealed block.

        ``positions`` must match the payload's entry order — ref index
        ``j`` resolves to the block's ``j``-th decoded filter."""
        for j, position in enumerate(positions):
            stored = self._entries[position]
            self._entries[position] = _SealedBloomRef(
                node=stored.node,
                topo_pattern_id=stored.topo_pattern_id,
                inserted=stored.filter.inserted,
                block_id=block_id,
                index=j,
            )

    def promote_block(self, block_id: int) -> None:
        """Unseal one block: refs become hot filters at their slots."""
        decoded = self._tier.pop(block_id)
        for i, entry in enumerate(self._entries):
            if isinstance(entry, _SealedBloomRef) and entry.block_id == block_id:
                self._entries[i] = decoded[entry.index]

    def promote_host(self, host: str) -> int:
        """Unseal every block holding a filter from ``host``."""
        block_ids = self._tier.blocks_with_host(host, BLOOM_KIND)
        for block_id in block_ids:
            self.promote_block(block_id)
        return len(block_ids)

    def remove_node(self, host: str) -> list["StoredBloom"]:
        """Remove and return every hot filter from ``host``.

        Callers promote the host's blocks first; any ref still carrying
        the host afterwards would mean the tier's host index lied, so
        it fails loudly instead of leaving a sealed orphan behind."""
        for entry in self._entries:
            if isinstance(entry, _SealedBloomRef) and entry.node == host:
                raise RuntimeError(
                    f"sealed bloom for host {host!r} survived promote_host "
                    f"(block {entry.block_id})"
                )
        moved = [entry for entry in self._entries if entry.node == host]
        self._entries = [entry for entry in self._entries if entry.node != host]
        return moved
