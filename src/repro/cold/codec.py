"""Cold-tier codecs: trained-dictionary block compression.

Two interchangeable codecs sit behind one three-method surface
(``train`` / ``compress`` / ``decompress``):

* :class:`ZstdCodec` — ``zstandard`` with a dictionary produced by
  ``zstd.train_dictionary`` over corpus samples (the UnifiedStateCodec
  technique: train on the data's own templated chunks, compress each
  block against the shared dictionary);
* :class:`ZlibCodec` — the stdlib fallback: ``zlib`` with a ``zdict``
  preset dictionary assembled deterministically from the same samples.

``zstandard`` is an optional dependency (the ``cold`` extras group);
importing this module never requires it, and :func:`make_codec`'s
``"auto"`` mode degrades to zlib without changing any byte-accounting
contract — only the physical compression ratio differs.

Dictionary training must be deterministic (the cold bit-identity gate
re-runs compaction and diffs byte tables), so the fallback trainer
uses only frequency counts and first-seen order, never hashing seeds
or wall-clock state.
"""

from __future__ import annotations

import zlib

try:  # pragma: no cover - exercised only where zstandard is installed
    import zstandard as _zstd
except ImportError:  # pragma: no cover - the default in bare containers
    _zstd = None


class ColdCodecError(RuntimeError):
    """A codec was requested that this environment cannot provide."""


def zstd_available() -> bool:
    """True when the optional ``zstandard`` package is importable."""
    return _zstd is not None


def train_fallback_dictionary(samples: list[bytes], max_bytes: int = 8192) -> bytes:
    """Assemble a preset dictionary from corpus samples, deterministically.

    Samples are ranked by frequency (ties broken by first-seen order,
    latest first) and concatenated most-frequent-*last*: DEFLATE
    matches against the most recent dictionary bytes most cheaply, so
    the hottest — and, among unique samples, the freshest — templates
    sit at the tail.  The corpus assembler feeds pattern text first
    and record samples after, so on the all-unique corpora typical of
    sampled params the record text wins the tail and the truncation
    (from the front, to ``max_bytes``) sheds the pattern text first.
    zlib presets beyond the 32 KB window are dead weight anyway.
    """
    counts: dict[bytes, int] = {}
    first_seen: dict[bytes, int] = {}
    for index, sample in enumerate(samples):
        if not sample:
            continue
        counts[sample] = counts.get(sample, 0) + 1
        first_seen.setdefault(sample, index)
    ranked = sorted(counts, key=lambda s: (counts[s], first_seen[s]))
    blob = b"".join(ranked)
    return blob[-max_bytes:] if max_bytes > 0 else b""


class ZlibCodec:
    """Stdlib DEFLATE with a trained ``zdict`` preset dictionary."""

    name = "zlib"

    def __init__(self, level: int = 9) -> None:
        self.level = level

    def train(self, samples: list[bytes], max_dict_bytes: int) -> bytes:
        """Build the preset dictionary (see the module trainer)."""
        return train_fallback_dictionary(samples, max_dict_bytes)

    def compress(self, data: bytes, dictionary: bytes = b"") -> bytes:
        if dictionary:
            compressor = zlib.compressobj(self.level, zdict=dictionary)
        else:
            compressor = zlib.compressobj(self.level)
        return compressor.compress(data) + compressor.flush()

    def decompress(self, blob: bytes, dictionary: bytes = b"") -> bytes:
        if dictionary:
            decompressor = zlib.decompressobj(zdict=dictionary)
        else:
            decompressor = zlib.decompressobj()
        return decompressor.decompress(blob) + decompressor.flush()


class ZstdCodec:
    """``zstandard`` with a trained dictionary (the preferred codec)."""

    name = "zstd"

    def __init__(self, level: int = 10) -> None:
        if _zstd is None:
            raise ColdCodecError(
                "the zstd codec needs the optional 'zstandard' package "
                "(pip install 'mint-repro[cold]'); use make_codec('auto') "
                "to fall back to the stdlib zlib codec"
            )
        self.level = level

    def train(self, samples: list[bytes], max_dict_bytes: int) -> bytes:
        """Train a zstd dictionary; degrade to the preset assembler when
        the sample set is too small/uniform for the trainer (zstd raises
        on degenerate inputs — a tiny corpus must still seal)."""
        usable = [s for s in samples if s]
        try:
            return _zstd.train_dictionary(max_dict_bytes, usable).as_bytes()
        except Exception:
            return train_fallback_dictionary(samples, max_dict_bytes)

    def compress(self, data: bytes, dictionary: bytes = b"") -> bytes:
        if dictionary:
            ctx = _zstd.ZstdCompressor(
                level=self.level, dict_data=_zstd.ZstdCompressionDict(dictionary)
            )
        else:
            ctx = _zstd.ZstdCompressor(level=self.level)
        return ctx.compress(data)

    def decompress(self, blob: bytes, dictionary: bytes = b"") -> bytes:
        if dictionary:
            ctx = _zstd.ZstdDecompressor(
                dict_data=_zstd.ZstdCompressionDict(dictionary)
            )
        else:
            ctx = _zstd.ZstdDecompressor()
        return ctx.decompress(blob)


def make_codec(name: str = "auto", level: int | None = None):
    """Build a codec by name: ``"zstd"``, ``"zlib"``, or ``"auto"``
    (zstd when importable, zlib otherwise — never an import error)."""
    if name == "auto":
        name = "zstd" if zstd_available() else "zlib"
    if name == "zstd":
        return ZstdCodec(level=level if level is not None else 10)
    if name == "zlib":
        return ZlibCodec(level=level if level is not None else 9)
    raise ColdCodecError(f"unknown cold codec {name!r} (want zstd, zlib or auto)")
