"""A timed event scheduler over :class:`~repro.sim.clock.SimClock`.

The network plane's single source of causality: every future effect —
a batch arriving after its link latency, an age-triggered queue flush,
a retransmission timer — is an :class:`Event` on one scheduler, and the
clock only ever moves by running events in timestamp order.  Ties break
by scheduling order (a monotonic sequence number), so runs are exactly
reproducible: same events in, same interleaving out.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.sim.clock import SimClock

Callback = Callable[[], None]


class Event:
    """One scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the scheduler skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventScheduler:
    """Min-heap of events driving a :class:`SimClock` forward.

    Running an event advances the clock to the event's timestamp first,
    so a callback always observes ``clock.now`` equal to its own due
    time — effects can never appear to precede their causes.  Cancelled
    events stay in the heap (cancellation is O(1)) and are dropped when
    they surface.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past is clamped to now: the wire can be slow,
        never prescient.
        """
        event = Event(max(time, self.clock.now), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callback) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.at(self.clock.now + delay, callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def next_time(self) -> float | None:
        """Due time of the earliest live event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> int:
        """Run every event due at or before ``time``; returns the count.

        The clock ends at ``time`` (or where it already was, if later)
        even when no events fired — callers use this to pump the plane
        up to an externally supplied now.
        """
        ran = 0
        while self._heap and self._heap[0].time <= time:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            ran += 1
        self.clock.advance_to(time)
        return ran

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Run to quiescence, advancing the clock as far as needed.

        Callbacks may schedule further events (retransmission timers
        do); ``max_events`` is the runaway backstop — a plane that does
        not quiesce within it raises rather than spinning forever.
        """
        ran = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if ran >= max_events:
                raise RuntimeError(
                    f"event scheduler did not quiesce within {max_events} events"
                )
            self.clock.advance_to(event.time)
            event.callback()
            ran += 1
        return ran
