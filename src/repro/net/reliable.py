"""Reliable delivery over a lossy wire: acks, retransmission, ordering.

One :class:`ReliableLink` per collector->backend link implements the
classic at-least-once recipe: the sender numbers batches sequentially,
keeps them in flight until acknowledged, and retransmits on a timer
with exponential backoff; the receiver acknowledges everything it sees,
delivers strictly in sequence order, and buffers ahead-of-order
arrivals — so the wire may drop, duplicate and reorder, yet the
backend observes each link's batches exactly once, in FIFO send order
(the deployment plane's ordering guarantee).

Acks are modeled as instantaneous and reliable.  That is a
simplification, not a cheat: a lost ack in a real network only causes a
spurious retransmission, which the receive-side dedup here (and the
idempotent :meth:`~repro.transport.plane.BackendPlane.receive` behind
it) already absorbs — the simulated byte accounting is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.events import Event, EventScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.reports import Report


@dataclass(frozen=True)
class Batch:
    """One numbered bundle of reports on one link."""

    link: str
    seq: int
    reports: tuple["Report", ...]
    size_bytes: int
    created_at: float


# Puts a batch on the (possibly lossy) wire; the bool marks retransmits
# so the transport can charge them on the separate retransmit meter.
Transmit = Callable[[Batch, bool], None]
# Hands an in-order, exactly-once batch up to the backend side.
Deliver = Callable[[Batch], None]


class ReliableLink:
    """Sender + receiver state of one collector->backend link."""

    def __init__(
        self,
        link: str,
        scheduler: EventScheduler,
        transmit: Transmit,
        deliver: Deliver,
        rto_s: float = 0.5,
        max_backoff_s: float = 8.0,
        on_ack: Callable[[], None] | None = None,
    ) -> None:
        if rto_s <= 0:
            raise ValueError("rto_s must be > 0")
        self.link = link
        self._scheduler = scheduler
        self._transmit = transmit
        self._deliver = deliver
        self.rto_s = rto_s
        self.max_backoff_s = max_backoff_s
        # Fired whenever an in-flight batch is acknowledged — the
        # transport's send window uses it to resume deferred flushes.
        self._on_ack = on_ack
        # Sender side.
        self._next_seq = 0
        self._unacked: dict[int, Batch] = {}
        self._timers: dict[int, Event] = {}
        self._attempts: dict[int, int] = {}
        # Receiver side.
        self._next_expected = 0
        self._reorder_buffer: dict[int, Batch] = {}
        # Counters for the delivery-metrics panels.
        self.retransmits = 0
        self.duplicate_arrivals = 0

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def send(self, reports: tuple["Report", ...], size_bytes: int) -> Batch:
        """Number a new batch, put it on the wire, arm its timer."""
        batch = Batch(
            link=self.link,
            seq=self._next_seq,
            reports=reports,
            size_bytes=size_bytes,
            created_at=self._scheduler.clock.now,
        )
        self._next_seq += 1
        self._unacked[batch.seq] = batch
        self._attempts[batch.seq] = 1
        self._transmit(batch, False)
        self._arm_timer(batch)
        return batch

    def _arm_timer(self, batch: Batch) -> None:
        # Exponential backoff: rto, 2*rto, 4*rto, ... capped — retries
        # survive long partitions without flooding the scheduler.
        attempt = self._attempts[batch.seq]
        delay = min(self.rto_s * (2 ** (attempt - 1)), self.max_backoff_s)
        self._timers[batch.seq] = self._scheduler.after(
            delay, lambda: self._on_timeout(batch.seq)
        )

    def _on_timeout(self, seq: int) -> None:
        batch = self._unacked.get(seq)
        if batch is None:
            return
        self._attempts[seq] += 1
        self.retransmits += 1
        self._transmit(batch, True)
        self._arm_timer(batch)

    def _acked(self, seq: int) -> None:
        was_in_flight = self._unacked.pop(seq, None) is not None
        self._attempts.pop(seq, None)
        timer = self._timers.pop(seq, None)
        if timer is not None:
            timer.cancel()
        if was_in_flight and self._on_ack is not None:
            self._on_ack()

    @property
    def in_flight(self) -> int:
        """Batches sent but not yet acknowledged."""
        return len(self._unacked)

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def on_arrival(self, batch: Batch) -> None:
        """Process one wire arrival: ack always, deliver in order.

        Duplicates (already delivered, or already buffered) are acked
        again and dropped; ahead-of-order batches wait in the reorder
        buffer until the gap fills — FIFO delivery per link, whatever
        the wire did.
        """
        self._acked(batch.seq)
        if batch.seq < self._next_expected or batch.seq in self._reorder_buffer:
            self.duplicate_arrivals += 1
            return
        self._reorder_buffer[batch.seq] = batch
        while self._next_expected in self._reorder_buffer:
            ready = self._reorder_buffer.pop(self._next_expected)
            self._next_expected += 1
            self._deliver(ready)

    @property
    def awaiting_delivery(self) -> int:
        """Arrived batches parked behind a sequence gap."""
        return len(self._reorder_buffer)
