"""NetTransport: the deployment plane's simulated network wire.

Implements the :class:`~repro.transport.transport.Transport` protocol
on top of the event scheduler: reports are charged at the wire exactly
as :class:`~repro.transport.transport.LocalTransport` charges them,
then queued per collector link, flushed as batches (size-, byte- or
age-triggered, with backpressure when a bounded queue fills), carried
over a per-link latency/bandwidth model through seeded chaos, and
delivered to the backend by the reliable layer — exactly once, in
per-link FIFO order.

Byte-accounting invariants, enforced by
``benchmarks/perf/run_net_bench.py --check``:

* first transmissions charge the deployment's ``network`` meter at
  *enqueue* time — so the network meter's totals are identical to
  ``LocalTransport``'s under every batching and chaos configuration,
  and its per-minute series too whenever the run's clock is driven by
  ingest alone (a mid-run retroactive pull on a lossy wire advances
  simulated time — see :meth:`NetTransport.drain`);
* retransmissions and chaos duplicates charge only the separate
  ``retransmit`` meter, keeping the fig02/fig11 byte tables untouched;
* under the default (instantaneous, lossless) descriptor, delivery is
  synchronous within ``deliver``, so storage meter series and query
  signatures are bit-identical to ``LocalTransport`` too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.net.chaos import LOSSLESS, ChaosEngine, ChaosProfile
from repro.net.events import Event, EventScheduler
from repro.net.reliable import Batch, ReliableLink
from repro.sim.clock import SimClock
from repro.sim.meters import LatencyStats, Meter, OverheadLedger
from repro.transport.transport import Clock, LocalTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.reports import Report
    from repro.transport.plane import BackendPlane


@dataclass(frozen=True)
class NetworkDescriptor:
    """Immutable description of the simulated wire.

    The default is the *lossless instantaneous* wire: zero latency,
    infinite bandwidth, every report its own batch, no chaos — the
    configuration under which ``NetTransport`` must be bit-identical to
    ``LocalTransport``.  ``bandwidth_bytes_per_s == 0`` means infinite;
    ``max_batch_bytes == 0`` and ``max_batch_age_s == 0`` disable the
    respective flush triggers.
    """

    latency_s: float = 0.0
    bandwidth_bytes_per_s: float = 0.0
    max_batch_reports: int = 1
    max_batch_bytes: int = 0
    max_batch_age_s: float = 0.0
    queue_capacity: int = 64
    max_in_flight_batches: int = 64
    rto_s: float = 0.5
    max_backoff_s: float = 8.0
    chaos: ChaosProfile = LOSSLESS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.bandwidth_bytes_per_s < 0:
            raise ValueError("bandwidth_bytes_per_s must be >= 0 (0 = infinite)")
        if self.max_batch_reports < 1:
            raise ValueError("max_batch_reports must be >= 1")
        if self.max_batch_bytes < 0 or self.max_batch_age_s < 0:
            raise ValueError("batch flush triggers must be >= 0 (0 = disabled)")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_in_flight_batches < 1:
            raise ValueError("max_in_flight_batches must be >= 1")
        if self.rto_s <= 0:
            raise ValueError("rto_s must be > 0")
        if self.rto_s <= self.latency_s:
            # Acks are instantaneous, so one-way latency is the whole
            # RTT: a timer shorter than it would mark every healthy
            # delivery as lost and retransmit 100% of traffic.
            raise ValueError("rto_s must exceed latency_s or every batch retransmits")
        if self.max_backoff_s < self.rto_s:
            raise ValueError("max_backoff_s must be >= rto_s")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def lossless(cls) -> "NetworkDescriptor":
        """The default wire: instantaneous, reliable, unbatched."""
        return cls()

    @classmethod
    def batched(
        cls,
        max_batch_reports: int = 256,
        max_batch_bytes: int = 64 * 1024,
        max_batch_age_s: float = 1.0,
        latency_s: float = 0.02,
        bandwidth_bytes_per_s: float = 0.0,
        queue_capacity: int = 128,
    ) -> "NetworkDescriptor":
        """A realistic batching wire (still lossless).

        Batches form on bytes and age; ``queue_capacity`` sits *below*
        the report-count trigger as the hard bound, so a burst of many
        small reports (which takes long to reach the byte threshold)
        hits backpressure and force-flushes instead of growing the
        queue.
        """
        return cls(
            latency_s=latency_s,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            max_batch_reports=max_batch_reports,
            max_batch_bytes=max_batch_bytes,
            max_batch_age_s=max_batch_age_s,
            queue_capacity=queue_capacity,
        )

    def with_chaos(self, chaos: ChaosProfile, seed: int = 0) -> "NetworkDescriptor":
        """A copy of this wire with a chaos profile injected."""
        return replace(self, chaos=chaos, seed=seed)

    @property
    def is_instantaneous(self) -> bool:
        """True when delivery completes inside the ``deliver`` call."""
        return (
            self.latency_s == 0.0
            and self.bandwidth_bytes_per_s == 0.0
            and self.max_batch_reports == 1
            and self.chaos.is_lossless
        )

    def describe(self) -> str:
        """Human-readable wire label."""
        if self == NetworkDescriptor():
            return "lossless-net"
        parts = []
        if self.max_batch_reports > 1 or self.max_batch_bytes or self.max_batch_age_s:
            parts.append(f"batch<={self.max_batch_reports}")
        if self.latency_s:
            parts.append(f"{self.latency_s * 1000:g}ms")
        if self.bandwidth_bytes_per_s:
            parts.append(f"{self.bandwidth_bytes_per_s / 1e6:g}MB/s")
        if not self.chaos.is_lossless:
            parts.append(f"chaos={self.chaos.name}")
        return "net[" + ",".join(parts or ["lossless"]) + "]"


# Reshard traffic rides per-host *migration links*, separate from the
# host's ingest link: migration batches queue, batch, drop and retry
# under the same wire model, but their backlog never delays live
# reports and never shows up in the autoscaler's queue-depth signal.
MIGRATION_LINK_PREFIX = "migrate::"

# Standing-query pushes ride per-subscription *push links*: the
# backend->subscriber direction gets the full wire model (batching,
# latency, chaos, reliable retries) without ever queueing behind live
# ingest or registering on the autoscaler's pressure signal — the same
# link-namespace discipline as migration traffic.
PUSH_LINK_PREFIX = "push::"

# The standard harness wire for chaos sweeps — batching and a little
# latency so the wire's mechanics are on the measured path, and a retry
# timer short enough for CI-sized streams.  The net bench, the sim
# harnesses and the examples all inject their chaos profiles into this
# one descriptor, so every layer measures the same wire.
CHAOS_WIRE = NetworkDescriptor(
    max_batch_reports=8, max_batch_age_s=0.5, latency_s=0.01, rto_s=0.3
)


@dataclass
class LinkStats:
    """Delivery metrics of one collector->backend link (fig15-style)."""

    sent_batches: int = 0
    sent_reports: int = 0
    transmissions: int = 0
    retransmits: int = 0
    dropped: int = 0
    duplicated: int = 0
    duplicate_arrivals: int = 0
    backpressure_flushes: int = 0
    delivered_batches: int = 0
    delivered_reports: int = 0
    max_queue_depth: int = 0
    latency: LatencyStats = field(default_factory=lambda: LatencyStats("link"))

    def as_dict(self) -> dict[str, object]:
        """Snapshot for machine-readable reports."""
        return {
            "sent_batches": self.sent_batches,
            "sent_reports": self.sent_reports,
            "transmissions": self.transmissions,
            "retransmits": self.retransmits,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "duplicate_arrivals": self.duplicate_arrivals,
            "backpressure_flushes": self.backpressure_flushes,
            "delivered_batches": self.delivered_batches,
            "delivered_reports": self.delivered_reports,
            "max_queue_depth": self.max_queue_depth,
            "latency_p50_s": self.latency.p50,
            "latency_p99_s": self.latency.p99,
        }


class NetTransport(LocalTransport):
    """The simulated network plane behind the ``Transport`` seam.

    Subclasses :class:`LocalTransport` for the ledger double
    bookkeeping, notify metering and storage sync, and replaces the
    synchronous ``deliver`` with the queued/batched/lossy/retried wire.
    The transport owns its own :class:`SimClock`; every public call
    first pumps the event scheduler up to the caller's clock, so
    in-flight effects land exactly when (in simulated time) they are
    due, and :meth:`drain` runs the plane to quiescence — advancing
    simulated time past the caller's now if retries need it.
    """

    def __init__(
        self,
        backend: "BackendPlane",
        ledger: OverheadLedger,
        clock: Clock | None = None,
        shard_ledgers: list[OverheadLedger] | None = None,
        network: NetworkDescriptor | None = None,
    ) -> None:
        self.network = network if network is not None else NetworkDescriptor()
        self._ext_clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._sim = SimClock()
        self._scheduler = EventScheduler(self._sim)
        self._chaos = ChaosEngine(self.network.chaos, seed=self.network.seed)
        # The parent charges every meter through our simulated clock, so
        # delayed effects (a batch landing after its latency) are
        # stamped at their true simulated time, not the caller's.
        super().__init__(
            backend, ledger, clock=lambda: self._sim.now, shard_ledgers=shard_ledgers
        )
        self.retransmit = Meter("retransmit")
        self._queues: dict[str, list[tuple["Report", int]]] = {}
        self._queue_bytes: dict[str, int] = {}
        self._age_timers: dict[str, Event] = {}
        self._flush_pending: set[str] = set()
        self._links: dict[str, ReliableLink] = {}
        self._link_busy_until: dict[str, float] = {}
        self.link_stats: dict[str, LinkStats] = {}
        # The retroactive pull re-queries storage immediately after
        # asking collectors to upload; with in-flight batching those
        # uploads are only queued, so the plane needs a way to force
        # them through first.  Claimed like the notify meter: an
        # explicit hook is never overwritten.
        if backend.flush_transport is None:
            backend.flush_transport = self.drain

    # ------------------------------------------------------------------
    # The wire (Transport protocol)
    # ------------------------------------------------------------------
    def deliver(self, report: "Report") -> None:
        """Charge the report at the wire, then queue it on its link.

        The network meter (and the owning shard's ledger) is charged at
        enqueue time — when the collector commits the bytes to the wire
        — which is the same instant ``LocalTransport`` charges, so the
        fig02/fig11 network tables are invariant under batching and
        chaos alike.
        """
        self._advance()
        size = report.size_bytes()
        self._charge_report(report.node, size, self._sim.now)
        self._enqueue(report.node, report, size)

    def deliver_migration(self, report: "Report") -> None:
        """Queue one resharding report on the host's migration link.

        Charged on the ``migration`` meter only — the byte tables must
        be shard-map invariant — and carried over its own link so the
        wire model (batching, chaos, retries) applies to migration
        traffic without it ever queueing behind, or being mistaken for,
        live ingest.
        """
        self._advance()
        self.migration.record(report.size_bytes(), self._sim.now)
        self._enqueue(MIGRATION_LINK_PREFIX + report.node, report, report.size_bytes())

    def deliver_push(self, message) -> None:
        """Queue one push notification on its subscription's push link.

        Charged on the ``push`` meter only, at enqueue time — the same
        instant ``LocalTransport`` charges — so the push meter's totals
        are batching- and chaos-invariant like the network meter's.
        The batch then rides the ordinary reliable machinery: chaos can
        drop or duplicate it, retries re-carry it, and the per-link
        sequence numbers give the subscriber's sink a deterministic
        message id for its own idempotence check.  (Like ``deliver``,
        this is never called from inside the scheduler — the live plane
        pushes from the ingest/finalize path — so ``_enqueue``'s
        immediate pump cannot re-enter.)
        """
        self._advance()
        self.push.record(message.size_bytes(), self._sim.now)
        self._obs_push_messages.inc()
        self._enqueue(
            PUSH_LINK_PREFIX + message.subscription_id, message, message.size_bytes()
        )

    def wire_now(self) -> float:
        """The simulated-network clock — read-only, never pumps.

        The failover supervisor reads this from *inside* a commit (mid
        ``_deliver_batch`` loop).  Running the scheduler here would
        deliver the next due batch re-entrantly, advancing the channel
        watermark past the rest of the current batch's reports and
        silently discarding them — a clock read must have no side
        effects.
        """
        return max(self._ext_clock(), self._sim.now)

    def queue_depths(self) -> dict[str, int]:
        """Reports waiting per ingest link (migration/push links excluded).

        This is the autoscaler's pressure signal: the backlog a shard's
        hosts have committed to the wire but the plane has not flushed.
        Migration links are deliberately invisible here — resharding
        pressure must not retrigger the autoscaler that caused it —
        and push links likewise: a popular standing query is analyst
        load, not ingest pressure.
        """
        return {
            link: len(queue)
            for link, queue in self._queues.items()
            if queue
            and not link.startswith(MIGRATION_LINK_PREFIX)
            and not link.startswith(PUSH_LINK_PREFIX)
        }

    def _enqueue(self, link: str, report: "Report", size: int) -> None:
        """Queue one charged report on ``link`` and apply flush triggers."""
        queue = self._queues.setdefault(link, [])
        queue.append((report, size))
        self._queue_bytes[link] = self._queue_bytes.get(link, 0) + size
        stats = self._stats_for(link)
        stats.max_queue_depth = max(stats.max_queue_depth, len(queue))
        net = self.network
        batch_full = len(queue) >= net.max_batch_reports or (
            net.max_batch_bytes > 0 and self._queue_bytes[link] >= net.max_batch_bytes
        )
        if batch_full:
            self._flush(link)
        elif len(queue) >= net.queue_capacity:
            # Backpressure: the bounded queue is full, so the sender
            # blocks until it drains — in simulation, a forced flush.
            # Counted only when the send window can actually emit a
            # batch; with the window exhausted (an outage) the flush is
            # a deferral, and counting it would inflate the panel by
            # one per delivered report.
            if self._link_for(link).in_flight < net.max_in_flight_batches:
                stats.backpressure_flushes += 1
            self._flush(link)
        elif len(queue) == 1 and net.max_batch_age_s > 0:
            self._age_timers[link] = self._scheduler.after(
                net.max_batch_age_s, lambda: self._flush(link)
            )
        # Run anything that became due *now* — on the instantaneous
        # lossless wire the arrival is due immediately, which makes
        # delivery synchronous within this call, exactly like
        # LocalTransport.  (deliver is never called from inside the
        # scheduler, so this cannot re-enter.)
        self._scheduler.run_until(self._sim.now)

    def notify(self, node: str, nbytes: int) -> None:
        """Meter one control ping (modeled as out-of-band and reliable).

        Control messages ride the backend->collector direction, which
        stays synchronous: delaying ``mark_sampled`` would change *what*
        is sampled, and the network plane's contract is to perturb
        delivery timing only, never sampling decisions.
        """
        self._advance()
        super().notify(node, nbytes)

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _flush(self, link: str) -> None:
        """Move queued reports onto the wire, within the send window.

        Batches of at most ``max_batch_reports`` are emitted while the
        link has in-flight budget (``max_in_flight_batches``); anything
        beyond waits in the queue and resumes on the next ack.  The
        window is what bounds *wire-side* state — unacked batches and
        their retransmission timers — during an outage: without it a
        partition would accumulate one backoff timer per batch sent
        into the void.  (The send queue itself must absorb the outage
        backlog: at-least-once delivery forbids dropping, and blocking
        the producer would shift meter timestamps, breaking the
        byte-table invariance the gates pin.)
        """
        timer = self._age_timers.pop(link, None)
        if timer is not None:
            timer.cancel()
        queue = self._queues.get(link)
        if not queue:
            return
        channel = self._link_for(link)
        stats = self._stats_for(link)
        while queue and channel.in_flight < self.network.max_in_flight_batches:
            take = min(len(queue), self.network.max_batch_reports)
            items = queue[:take]
            del queue[:take]
            nbytes = sum(size for _, size in items)
            self._queue_bytes[link] -= nbytes
            stats.sent_batches += 1
            stats.sent_reports += take
            channel.send(tuple(report for report, _ in items), nbytes)
        if queue:
            # Send window exhausted: the backlog resumes on ack.
            self._flush_pending.add(link)

    def _resume_flush(self, link: str) -> None:
        """Ack callback: a window slot freed; continue a deferred flush."""
        if link in self._flush_pending:
            self._flush_pending.discard(link)
            self._flush(link)

    # ------------------------------------------------------------------
    # Physical layer: latency/bandwidth model + chaos
    # ------------------------------------------------------------------
    def _transmit(self, batch: Batch, retransmit: bool) -> None:
        """Put one batch copy on the wire (fresh send or retransmit)."""
        now = self._sim.now
        stats = self._stats_for(batch.link)
        stats.transmissions += 1
        if retransmit:
            stats.retransmits += 1
            self.retransmit.record(batch.size_bytes, now)
        if self._chaos.drops(batch.link, now):
            stats.dropped += 1
            return
        arrival = self._arrival_time(batch)
        self._scheduler.at(arrival, lambda: self._links[batch.link].on_arrival(batch))
        if self._chaos.duplicates():
            # The wire copied the packet: extra bytes crossed the
            # network, charged on the retransmit meter like any other
            # redundant transmission.
            stats.duplicated += 1
            self.retransmit.record(batch.size_bytes, now)
            self._scheduler.at(
                arrival + self._chaos.extra_delay(),
                lambda: self._links[batch.link].on_arrival(batch),
            )

    def _arrival_time(self, batch: Batch) -> float:
        net = self.network
        start = max(self._sim.now, self._link_busy_until.get(batch.link, 0.0))
        if net.bandwidth_bytes_per_s > 0:
            done = start + batch.size_bytes / net.bandwidth_bytes_per_s
            # The link serializes: the next transmission queues behind us.
            self._link_busy_until[batch.link] = done
        else:
            done = start
        return done + net.latency_s + self._chaos.extra_delay()

    def _deliver_batch(self, batch: Batch) -> None:
        """Reliable-layer callback: an in-order, exactly-once batch.

        Each report carries a deterministic (link, seq, index) message
        id into :meth:`BackendPlane.receive`, whose idempotent dedup is
        the second line of defence behind the reliable layer — a
        duplicate that slips through any future transport can never
        perturb storage.
        """
        stats = self._stats_for(batch.link)
        stats.delivered_batches += 1
        stats.delivered_reports += len(batch.reports)
        queue_wait = max(0.0, self._sim.now - batch.created_at)
        stats.latency.record(queue_wait)
        if self.observer.enabled:
            # Sim-domain stage: enqueue -> delivery through the wire
            # model.  The clock is read (the scheduler put us here),
            # never pumped — the wire_now discipline — so the series is
            # bit-reproducible across identical seeded runs.
            self.observer.observe_sim("net_queue_wait", queue_wait, link=batch.link)
        if batch.link.startswith(PUSH_LINK_PREFIX):
            # Push batches route to the subscription plane's sink, not
            # the backend store.  The (link, seq, index) id rides along
            # so the sink's per-(subscription, trace) dedup has the
            # same second line of defence ``BackendPlane.receive`` has.
            if self.push_sink is not None:
                for index, message in enumerate(batch.reports):
                    self.push_sink(message, (batch.link, batch.seq, index))
            return
        for index, report in enumerate(batch.reports):
            self.backend.receive(report, message_id=(batch.link, batch.seq, index))

    # ------------------------------------------------------------------
    # Pumping and quiescence
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Run the plane up to the caller's clock (never backwards)."""
        self._scheduler.run_until(max(self._ext_clock(), self._sim.now))

    def sync_storage(self) -> None:
        """Pump due deliveries, then charge storage growth as usual."""
        self._advance()
        super().sync_storage()

    def drain(self) -> None:
        """Flush every queue and run the plane to quiescence.

        Retransmission timers keep the scheduler busy while anything is
        unacked, so running the event heap dry is exactly the
        all-delivered, all-acked condition.  Simulated time advances as
        far as the retries need (e.g. past a partition window's end);
        with ``drop_rate < 1`` and finite partitions this terminates.

        That time advance is the model, not an artifact: a *mid-run*
        drain on a lossy wire (the retroactive pull's
        ``flush_transport`` hook) ratchets this transport's clock past
        the caller's, so charges after it are stamped at the later
        simulated time — forced delivery through a lossy wire takes
        time, and pretending otherwise would falsify the latency
        panels.  On the lossless wire nothing is pending and no time
        passes, which is why the per-minute bit-identity gate is
        unaffected; per-minute series under chaos are comparable to
        ``LocalTransport`` runs only when pulls happen after
        ``finalize`` (as every shipped harness does).  Totals are
        invariant regardless.
        """
        self._advance()
        for link in list(self._queues):
            self._flush(link)
        # Deferred (window-held) backlogs flush from inside the ack
        # callbacks as run_all delivers, so the heap only empties once
        # every queue has drained through the wire.
        self._scheduler.run_all()
        leftovers = {
            link: (len(self._queues.get(link, [])), channel.in_flight)
            for link, channel in self._links.items()
            if self._queues.get(link) or channel.in_flight
        }
        if leftovers:  # pragma: no cover - defensive
            raise RuntimeError(f"network failed to quiesce: {leftovers}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _link_for(self, link: str) -> ReliableLink:
        channel = self._links.get(link)
        if channel is None:
            channel = ReliableLink(
                link,
                self._scheduler,
                transmit=self._transmit,
                deliver=self._deliver_batch,
                rto_s=self.network.rto_s,
                max_backoff_s=self.network.max_backoff_s,
                on_ack=lambda link=link: self._resume_flush(link),
            )
            self._links[link] = channel
        return channel

    def _stats_for(self, link: str) -> LinkStats:
        stats = self.link_stats.get(link)
        if stats is None:
            stats = LinkStats(latency=LatencyStats(link))
            self.link_stats[link] = stats
        return stats

    @property
    def queued_reports(self) -> int:
        """Reports waiting in send queues right now."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def in_flight_batches(self) -> int:
        """Batches sent but not yet acknowledged, across links."""
        return sum(channel.in_flight for channel in self._links.values())

    def stats_summary(self) -> dict[str, object]:
        """Aggregate delivery metrics for fig15-style panels.

        Totals are folded field-by-field from the dataclass definition
        (counters sum, the queue high-water mark takes the max, latency
        samples merge), so a counter added to :class:`LinkStats` is
        aggregated automatically.
        """
        totals = LinkStats(latency=LatencyStats("all-links"))
        counter_names = [
            f.name
            for f in fields(LinkStats)
            if f.name not in ("max_queue_depth", "latency")
        ]
        # Receive-side duplicate counts live on the reliable layer;
        # copy them into the panel rows before folding totals.
        for link, channel in self._links.items():
            self._stats_for(link).duplicate_arrivals = channel.duplicate_arrivals
        for stats in self.link_stats.values():
            for name in counter_names:
                setattr(totals, name, getattr(totals, name) + getattr(stats, name))
            totals.max_queue_depth = max(
                totals.max_queue_depth, stats.max_queue_depth
            )
            totals.latency.merge(stats.latency)
        return {
            "network": self.network.describe(),
            "links": len(self.link_stats),
            "queued_reports": self.queued_reports,
            "in_flight_batches": self.in_flight_batches,
            "retransmit_bytes": self.retransmit.total_bytes,
            "push_bytes": self.push.total_bytes,
            "totals": totals.as_dict(),
            "per_link": {
                link: stats.as_dict() for link, stats in sorted(self.link_stats.items())
            },
        }
