"""The simulated network plane: what the wire does to the bytes.

:mod:`repro.transport` defined *where* bytes are charged — one
``Transport`` seam between the collector fleet and the backend plane.
This package supplies the first transport that is not instantaneous and
lossless: an event-driven simulation of the queueing, loss and
retransmission that dominate real deployments.

* :mod:`repro.net.events` — a timed event scheduler over
  :class:`~repro.sim.clock.SimClock`, the plane's single source of
  causality;
* :mod:`repro.net.chaos` — seeded drop/duplicate/delay/partition
  profiles, deterministic per (profile, seed);
* :mod:`repro.net.reliable` — ack-based at-least-once retransmission
  with per-link sequence numbers, restoring exactly-once in-order
  delivery on top of a lossy wire;
* :mod:`repro.net.transport` — :class:`NetTransport`, the
  :class:`~repro.transport.transport.Transport` implementation tying
  them together: per-link latency/bandwidth models, bounded per-collector
  send queues with size/age-triggered batch flushing and backpressure.

Two gates pin the plane's correctness
(``benchmarks/perf/run_net_bench.py --check``):

* **lossless equivalence** — under the default (zero-latency, lossless)
  :class:`NetworkDescriptor`, byte tables, per-minute meter series and
  query signatures are bit-identical to ``LocalTransport``;
* **chaos convergence** — under every chaos profile with retries
  enabled, query results converge to the lossless answer, with the
  overhead visible only on the separate ``retransmit`` meter.
"""

from repro.net.chaos import CHAOS_PROFILES, LOSSLESS, ChaosProfile, PartitionWindow, fit_partitions
from repro.net.events import Event, EventScheduler
from repro.net.reliable import Batch, ReliableLink
from repro.net.transport import CHAOS_WIRE, LinkStats, NetTransport, NetworkDescriptor

__all__ = [
    "CHAOS_PROFILES",
    "CHAOS_WIRE",
    "LOSSLESS",
    "ChaosProfile",
    "PartitionWindow",
    "fit_partitions",
    "Event",
    "EventScheduler",
    "Batch",
    "ReliableLink",
    "LinkStats",
    "NetTransport",
    "NetworkDescriptor",
]
