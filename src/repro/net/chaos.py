"""Seeded chaos injection: what an unreliable wire does to packets.

A :class:`ChaosProfile` is an immutable description of a failure mode —
random drops, random duplicates, delay jitter, and timed partition
windows — and a :class:`ChaosEngine` is that profile bound to a seeded
RNG, so every decision (drop this batch? duplicate it? how much extra
delay?) is deterministic per (profile, seed) and reproducible across
runs.  Chaos only ever acts on the wire between send and arrival; it
never touches queues, sequence numbers or acks, which is what lets the
reliable layer converge under any profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PartitionWindow:
    """A timed link outage: sends during [start_s, end_s) are lost.

    ``nodes`` restricts the outage to the named origin nodes; None
    partitions every link (the full network split).
    """

    start_s: float
    end_s: float
    nodes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("partition window must end after it starts")

    def covers(self, node: str, now: float) -> bool:
        """True when ``node``'s link is down at ``now``."""
        if not self.start_s <= now < self.end_s:
            return False
        return self.nodes is None or node in self.nodes


@dataclass(frozen=True)
class ChaosProfile:
    """One failure mode, as immutable configuration.

    ``drop_rate`` must stay below 1.0: at-least-once retransmission
    converges only if every retry has a positive chance of landing
    (partitions may be total, but they end).
    """

    name: str
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_jitter_s: float = 0.0
    partitions: tuple[PartitionWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1) so retries can converge")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if self.delay_jitter_s < 0.0:
            raise ValueError("delay_jitter_s must be >= 0")

    @property
    def is_lossless(self) -> bool:
        """True when the profile perturbs nothing."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.delay_jitter_s == 0.0
            and not self.partitions
        )


class ChaosEngine:
    """A profile bound to a seeded RNG: the wire's adversary.

    One RNG drives every decision in call order, so two engines built
    from the same (profile, seed) replay the identical fault sequence.
    """

    def __init__(self, profile: ChaosProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = random.Random(f"{seed}:{profile.name}")

    def partitioned(self, node: str, now: float) -> bool:
        """True when ``node``'s link is inside a partition window."""
        return any(w.covers(node, now) for w in self.profile.partitions)

    def drops(self, node: str, now: float) -> bool:
        """Decide whether a transmission on ``node``'s link is lost.

        Partition outages are deterministic (no RNG draw), so partition
        profiles perturb time, never the fault sequence of other links.
        """
        if self.partitioned(node, now):
            return True
        return (
            self.profile.drop_rate > 0.0
            and self._rng.random() < self.profile.drop_rate
        )

    def duplicates(self) -> bool:
        """Decide whether the wire spontaneously copies a transmission."""
        return (
            self.profile.duplicate_rate > 0.0
            and self._rng.random() < self.profile.duplicate_rate
        )

    def extra_delay(self) -> float:
        """Extra per-transmission latency drawn from [0, jitter)."""
        if self.profile.delay_jitter_s <= 0.0:
            return 0.0
        return self._rng.random() * self.profile.delay_jitter_s


def fit_partitions(
    profile: ChaosProfile,
    duration_s: float,
    start_frac: float = 0.2,
    end_frac: float = 0.5,
) -> ChaosProfile:
    """Rescale a profile's partition windows into a stream's lifetime.

    Partition windows are absolute simulated times; a window placed for
    a ten-minute run never fires on a five-second CI stream.  Harnesses
    call this with the stream's duration so every outage actually
    overlaps the traffic.  Each window is mapped *proportionally* from
    the profile's own span ``[0, max end]`` into
    ``[start_frac, end_frac] * duration_s``, so multi-window profiles
    keep their relative timing and disjoint outages stay disjoint (node
    restrictions are preserved); profiles without partitions pass
    through unchanged.

    A window that *starts inside* the stream's lifetime but extends
    past it is a different case: proportional rescaling would drag its
    start toward zero on the window's (irrelevantly large) end time.
    Such windows are clamped to end at ``duration_s`` instead — the
    outage the stream actually experiences — and windows already inside
    the lifetime are kept verbatim alongside them.
    """
    if not profile.partitions or duration_s <= 0:
        return profile
    if any(
        window.start_s < duration_s <= window.end_s
        for window in profile.partitions
    ):
        return replace(
            profile,
            partitions=tuple(
                PartitionWindow(
                    window.start_s, min(window.end_s, duration_s), window.nodes
                )
                for window in profile.partitions
                if window.start_s < duration_s
            ),
        )
    span = max(window.end_s for window in profile.partitions)
    lo = start_frac * duration_s
    hi = max(end_frac * duration_s, lo + 1e-6)

    def rescale(t: float) -> float:
        return lo + (t / span) * (hi - lo)

    return replace(
        profile,
        partitions=tuple(
            PartitionWindow(rescale(window.start_s), rescale(window.end_s), window.nodes)
            for window in profile.partitions
        ),
    )


# The no-op profile: the NetTransport default, and the wire under which
# the lossless-equivalence gate must hold bit-identically.
LOSSLESS = ChaosProfile("lossless")

# The standard chaos suite for the convergence gate and load scenarios.
# Partition windows are chosen inside the first simulated minutes so
# reduced CI workloads still cross them.
CHAOS_PROFILES: dict[str, ChaosProfile] = {
    "drop": ChaosProfile("drop", drop_rate=0.15),
    "duplicate": ChaosProfile("duplicate", duplicate_rate=0.25),
    "delay": ChaosProfile("delay", delay_jitter_s=0.75),
    "partition": ChaosProfile(
        "partition",
        partitions=(PartitionWindow(start_s=5.0, end_s=20.0),),
    ),
}
