"""The sharded multi-agent collection plane.

Scales the Mint backend from one box to N shards, each owning a
hash-partition of the deployment's hosts (and thereby of the services
placed on them).  Every host keeps its own agent + collector exactly as
in the single-backend deployment; a collector's reports land on the
shard that owns its host, into that shard's private
:class:`~repro.backend.storage.StorageEngine`.

The merge layer on top restores the single-backend view:

* **Pattern libraries** union by content-hash id.  Pattern ids are
  SHA1-of-repr, so the same span/topo shape observed on different
  shards carries the same id and is charged for storage exactly once
  globally — identical to what one backend would charge.
* **Bloom filters** of compatible geometry are OR'd into one merged
  filter per topo pattern.  The merged filter is a strict superset of
  every constituent, so it is used only as a *negative* pre-screen:
  a trace absent from the merged filter is provably absent from every
  shard's filters, and candidates are still confirmed against the
  individual stored filters — query answers stay bit-identical to the
  single backend's.
* **Sampled-trace notifications** are reconciled across shards: a
  sampling decision on any shard is broadcast to every registered
  collector on every shard (minus the origin host), so the paper's
  trace-coherence guarantee ("backend notifies all hosts") holds for
  the whole fleet, with one idempotent notification per trace id.

The correctness contract is *shard-count invariance*: for the same
ingest stream, ``ShardedBackend(num_shards=1)`` behaves exactly like
:class:`~repro.backend.backend.MintBackend`, and query results plus
byte tables are identical for any shard count
(tests/test_backend_sharded.py pins this for N in {1, 2, 4, 8}).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.agent.reports import BloomReport, PatternLibraryReport, Report
from repro.backend.querier import Querier, QueryResult
from repro.backend.storage import StorageEngine, StoredBloom
from repro.bloom.bloom_filter import BloomFilter
from repro.model.encoding import encoded_size
from repro.parsing.span_parser import SpanPattern
from repro.parsing.trace_parser import TopoPattern
from repro.transport.plane import BackendPlane
from repro.transport.wire import NotifyMeter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agent.collector import MintCollector


def shard_for_key(key: str, num_shards: int) -> int:
    """Stable hash-partition of an owner key (host or service name).

    Content-derived (blake2b of the key), so placement is reproducible
    across processes and restarts — the property that lets per-shard
    state be rebuilt and re-merged deterministically.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


class _MergedParams:
    """Read-only fan-out view of every shard's params store.

    A multi-host trace's parameter records are scattered across the
    shards owning its hosts; ``get`` concatenates the per-shard buckets.
    Records are deduplicated at store time by (span_id, node) and a
    host belongs to exactly one shard, so concatenation introduces no
    duplicates — the merged bucket equals the single backend's.
    """

    def __init__(self, shards: list[StorageEngine]) -> None:
        self._shards = shards

    def get(self, trace_id: str, default: Any = None) -> Any:
        combined: list[list[Any]] = []
        for shard in self._shards:
            bucket = shard.params.get(trace_id)
            if bucket:
                combined.extend(bucket)
        return combined if combined else default

    def __contains__(self, trace_id: str) -> bool:
        return any(trace_id in shard.params for shard in self._shards)

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for shard in self._shards:
            for trace_id in shard.params:
                if trace_id not in seen:
                    seen.add(trace_id)
                    yield trace_id

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _MergedPatterns:
    """Fan-out lookup over the shards' interned pattern dicts.

    Ids are content hashes: any shard's copy of an id is structurally
    identical to every other shard's, so first hit wins.
    """

    def __init__(self, shards: list[StorageEngine], attr: str) -> None:
        self._shards = shards
        self._attr = attr

    def get(self, pattern_id: str, default: Any = None) -> Any:
        for shard in self._shards:
            found = getattr(shard, self._attr).get(pattern_id)
            if found is not None:
                return found
        return default

    def __contains__(self, pattern_id: str) -> bool:
        return any(pattern_id in getattr(shard, self._attr) for shard in self._shards)

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for shard in self._shards:
            for pattern_id in getattr(shard, self._attr):
                if pattern_id not in seen:
                    seen.add(pattern_id)
                    yield pattern_id

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _MergedSampledIds:
    """Live, mutable union view of the fleet's sampled trace ids.

    Reads union every shard's set with the merge layer's own marks;
    ``add`` records on the merge layer — so the MintBackend idiom
    ``storage.sampled_trace_ids.add(trace_id)`` works unchanged against
    the merged view instead of silently mutating a temporary set.
    """

    def __init__(self, shards: list[StorageEngine], extra: set[str]) -> None:
        self._shards = shards
        self._extra = extra

    def add(self, trace_id: str) -> None:
        self._extra.add(trace_id)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._extra or any(
            trace_id in shard.sampled_trace_ids for shard in self._shards
        )

    def __iter__(self) -> Iterator[str]:
        seen = set(self._extra)
        yield from seen
        for shard in self._shards:
            for trace_id in shard.sampled_trace_ids:
                if trace_id not in seen:
                    seen.add(trace_id)
                    yield trace_id

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _MergedNumericRanges:
    """Min/max union of per-shard numeric display ranges.

    The single backend folds successive reports with min/max; min/max
    is associative and commutative, so folding per shard first and
    merging on read yields the same bounds.
    """

    def __init__(self, shards: list[StorageEngine]) -> None:
        self._shards = shards

    def get(
        self, pattern_id: str, default: Any = None
    ) -> dict[str, tuple[float, float]] | Any:
        merged: dict[str, tuple[float, float]] | None = None
        for shard in self._shards:
            ranges = shard.numeric_ranges.get(pattern_id)
            if not ranges:
                continue
            if merged is None:
                merged = dict(ranges)
                continue
            for key, (lower, upper) in ranges.items():
                current = merged.get(key)
                if current is None:
                    merged[key] = (lower, upper)
                else:
                    merged[key] = (min(current[0], lower), max(current[1], upper))
        return merged if merged is not None else default


class MergedStorageView:
    """The merge layer: one StorageEngine-shaped view over N shards.

    Duck-types everything :class:`~repro.backend.querier.Querier` and
    the analysis layers read from a storage engine, backed by fan-out
    over the shard stores plus two pieces of incremental merge state
    maintained by :meth:`observe_report`:

    * global pattern-byte accounting with cross-shard content-id dedup
      (a pattern reported by hosts on two shards is charged once, as
      the single backend would);
    * the OR'd Bloom pre-screen index, one merged filter per
      (topo pattern, filter geometry).
    """

    def __init__(self, shards: list[StorageEngine]) -> None:
        self.shards = shards
        self.params = _MergedParams(shards)
        self.span_patterns = _MergedPatterns(shards, "span_patterns")
        self.topo_patterns = _MergedPatterns(shards, "topo_patterns")
        self.numeric_ranges = _MergedNumericRanges(shards)
        self._pattern_bytes = 0
        self._seen_span_pattern_ids: set[str] = set()
        self._seen_topo_pattern_ids: set[str] = set()
        # topo_pattern_id -> geometry -> OR of every reported filter.
        self._merged_blooms: dict[str, dict[tuple[int, int], BloomFilter]] = {}
        # Patterns whose accumulator saturated past usefulness: treated
        # as unconditional candidates (see _absorb_filter).
        self._prescreen_saturated: set[str] = set()
        self._extra_sampled: set[str] = set()
        self.sampled_trace_ids = _MergedSampledIds(shards, self._extra_sampled)

    # ------------------------------------------------------------------
    # Incremental merge state (fed by ShardedBackend.receive)
    # ------------------------------------------------------------------
    def observe_report(self, report: Report, shard: StorageEngine) -> None:
        """Fold one routed (and already stored) report into the global
        merge state.

        Pattern dedup keys are re-derived from the pattern *content*
        (exactly as the shard's
        :meth:`StorageEngine.store_pattern_report` does) rather than
        read from the report, so the merged accounting can never
        disagree with the stores about identity.  Pattern reports
        shrink to nothing once libraries converge, so the re-derivation
        is off the steady-state hot path.

        Bloom reports reuse the filter the shard just stored (the tail
        of ``shard.blooms``) instead of deserialising the payload a
        second time — flushed filters are the steady-state report
        traffic, so this keeps merge overhead off the wire-size path.
        """
        if isinstance(report, PatternLibraryReport):
            for data in report.span_patterns:
                pattern_id = SpanPattern.from_dict(data).pattern_id
                if pattern_id not in self._seen_span_pattern_ids:
                    self._seen_span_pattern_ids.add(pattern_id)
                    self._pattern_bytes += encoded_size(data)
            for data in report.topo_patterns:
                pattern_id = TopoPattern.from_dict(data).pattern_id
                if pattern_id not in self._seen_topo_pattern_ids:
                    self._seen_topo_pattern_ids.add(pattern_id)
                    self._pattern_bytes += encoded_size(data)
        elif isinstance(report, BloomReport):
            self._absorb_filter(report.topo_pattern_id, shard.blooms[-1].filter)

    # Beyond this saturation an accumulator's false-positive rate is so
    # high it prunes nothing; the pattern is then treated as a
    # candidate unconditionally and the accumulator memory is freed.
    _PRESCREEN_MAX_SATURATION = 0.5

    def _absorb_filter(self, pattern_id: str, filt: BloomFilter) -> None:
        """OR a stored filter into the pre-screen index.

        Accumulators never alias stored filters (mutating one would
        corrupt exact membership checks), so the first absorb pays one
        copy into a fresh filter of the same geometry.  Filters of a
        different geometry (heterogeneously configured shard engines)
        get their own accumulator, never a lossy mix.  Accumulators
        that saturate past :data:`_PRESCREEN_MAX_SATURATION` are
        dropped: the pattern becomes an unconditional candidate, which
        is always correct (the pre-screen is only ever a negative
        filter) and caps both memory and pointless probe work on
        long-running streams.
        """
        if pattern_id in self._prescreen_saturated:
            return
        groups = self._merged_blooms.setdefault(pattern_id, {})
        accumulator = groups.get(filt.geometry())
        if accumulator is None:
            accumulator = BloomFilter(
                filt.expected_insertions, filt.false_positive_probability
            )
            groups[filt.geometry()] = accumulator
        accumulator.absorb(filt)
        if accumulator.saturation > self._PRESCREEN_MAX_SATURATION:
            self._prescreen_saturated.add(pattern_id)
            del self._merged_blooms[pattern_id]

    # ------------------------------------------------------------------
    # StorageEngine-shaped lookups
    # ------------------------------------------------------------------
    def prescreen_candidates(self, trace_id: str) -> set[str]:
        """Topo patterns the merged OR index cannot rule out for a trace.

        The public face of the negative pre-screen: patterns whose
        accumulator saturated out of the index are unconditional
        candidates, the rest are candidates only when some merged
        accumulator (any geometry) reports the trace.  The query
        planner pushes this down per batch — a pattern absent here
        needs no probing on any shard.
        """
        candidates: set[str] = set(self._prescreen_saturated)
        for pattern_id, groups in self._merged_blooms.items():
            if any(trace_id in merged for merged in groups.values()):
                candidates.add(pattern_id)
        return candidates

    def patterns_matching_trace(self, trace_id: str) -> list[StoredBloom]:
        """All stored filters (across shards) that may contain the trace.

        The merged OR index screens whole topo patterns out first: if
        ``trace_id`` misses every merged accumulator of a pattern it
        provably misses each constituent filter, and none of them need
        be probed.  Survivors (and patterns whose accumulator saturated
        out of the index) are confirmed filter by filter, so the result
        set is exactly the single backend's.
        """
        candidates = self.prescreen_candidates(trace_id)
        if not candidates:
            return []
        return [
            stored
            for shard in self.shards
            for stored in shard.blooms
            if stored.topo_pattern_id in candidates and trace_id in stored.filter
        ]

    def has_params(self, trace_id: str) -> bool:
        """True when some shard holds the trace's exact parameters."""
        return trace_id in self.params

    def mark_sampled(self, trace_id: str) -> None:
        """Record a sampling decision that has no params report (yet)."""
        self._extra_sampled.add(trace_id)

    @property
    def blooms(self) -> list[StoredBloom]:
        """Every stored filter, shard-major (for introspection)."""
        return [stored for shard in self.shards for stored in shard.blooms]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def pattern_bytes(self) -> int:
        """Globally deduplicated pattern bytes — the merged table."""
        return self._pattern_bytes

    @property
    def bloom_bytes(self) -> int:
        """Bloom bytes across shards (every upload is persisted)."""
        return sum(shard.bloom_bytes for shard in self.shards)

    @property
    def params_bytes(self) -> int:
        """Parameter bytes across shards (host-disjoint, no dedup gap)."""
        return sum(shard.params_bytes for shard in self.shards)

    def storage_bytes(self) -> int:
        """The merged Fig. 11 storage metric, single-backend-identical."""
        return self.pattern_bytes + self.bloom_bytes + self.params_bytes

    def replicated_pattern_bytes(self) -> int:
        """Merge overhead: pattern bytes held redundantly across shards.

        The sum of per-shard pattern bytes minus the deduplicated
        merged figure — what the fleet physically stores beyond the
        logical (single-backend) table because the same content-id was
        learned on more than one shard.
        """
        return sum(shard.pattern_bytes for shard in self.shards) - self._pattern_bytes

    def cold_savings_bytes(self) -> int:
        """Cold-tier savings across shards (derived, like
        :meth:`replicated_pattern_bytes` — never part of the ruler)."""
        return sum(shard.cold_savings_bytes() for shard in self.shards)

    def physical_storage_bytes(self) -> int:
        """The merged physical split: the logical ruler minus every
        shard's cold-tier savings.  Identical to :meth:`storage_bytes`
        while nothing is sealed."""
        return self.storage_bytes() - self.cold_savings_bytes()

    def cold_stats(self) -> dict[str, Any]:
        """Summed per-shard cold-tier counters (codec from shard 0)."""
        merged: dict[str, Any] = {}
        for shard in self.shards:
            for key, value in shard.cold_stats().items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
                elif key not in merged:
                    merged[key] = value
        merged["logical_storage_bytes"] = self.storage_bytes()
        merged["physical_storage_bytes"] = self.physical_storage_bytes()
        return merged


class ShardedQuerier(Querier):
    """Fans a trace query across every shard and merges the answers.

    Inherits the reference query logic unchanged and points it at the
    :class:`MergedStorageView`, whose fan-out reads *are* the per-shard
    queries: exact reconstruction unions parameter records from the
    shards owning the trace's hosts (resolving span patterns through
    the merged library, so a pattern learned on one shard reconstructs
    records stored on another), and approximate reconstruction unions
    Bloom matches across shards before the usual verify-and-stitch.
    Sharing the reference implementation is what makes "merged result
    == single-backend result" hold by construction rather than by
    re-implementation.
    """

    def __init__(self, merged: MergedStorageView) -> None:
        super().__init__(merged)  # type: ignore[arg-type]
        self.merged = merged

    def query_shard(self, shard_index: int, trace_id: str) -> QueryResult:
        """One shard's partial answer (diagnostics / partition probes)."""
        return Querier(self.merged.shards[shard_index]).query(trace_id)


@dataclass
class ShardSummary:
    """Per-shard meter snapshot for the scaling experiments."""

    shard: int
    hosts: list[str]
    pattern_bytes: int
    bloom_bytes: int
    params_bytes: int
    storage_bytes: int
    sampled_traces: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "hosts": list(self.hosts),
            "pattern_bytes": self.pattern_bytes,
            "bloom_bytes": self.bloom_bytes,
            "params_bytes": self.params_bytes,
            "storage_bytes": self.storage_bytes,
            "sampled_traces": self.sampled_traces,
        }


class ShardedBackend(BackendPlane):
    """N hash-partitioned shards behind a MintBackend-shaped facade.

    Drop-in for :class:`~repro.backend.backend.MintBackend`: both run
    the same :class:`~repro.transport.plane.BackendPlane` code for
    collector registry, report dispatch, fleet-wide idempotent
    notification and queries — this class only supplies the topology:
    reports route to the shard owning their origin host
    (:meth:`_engine_for`), every stored report folds into the merge
    layer (:meth:`_observe_stored`), and queries are answered by the
    :class:`ShardedQuerier` over the merged view.  Sampling
    notifications broadcast to the whole fleet because the dedup set
    and collector registry live in the plane, above the shards.
    """

    def __init__(
        self,
        num_shards: int = 1,
        bloom_buffer_bytes: int = 4096,
        bloom_fpp: float = 0.01,
        notify_meter: NotifyMeter | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        super().__init__(notify_meter=notify_meter)
        self.num_shards = num_shards
        self.shards = [
            StorageEngine(bloom_buffer_bytes=bloom_buffer_bytes, bloom_fpp=bloom_fpp)
            for _ in range(num_shards)
        ]
        self.merged = MergedStorageView(self.shards)
        self.querier = ShardedQuerier(self.merged)
        self._collector_shards: list[int] = []

    # The framework and tests read ``backend.storage`` for byte tables
    # and stored-trace enumeration; the merged view plays that role.
    @property
    def storage(self) -> MergedStorageView:
        """The single-backend-equivalent merged storage view."""
        return self.merged

    # ------------------------------------------------------------------
    # Topology (the BackendPlane contract)
    # ------------------------------------------------------------------
    def shard_for(self, node: str) -> int:
        """The shard owning ``node`` (stable hash partition)."""
        return shard_for_key(node, self.num_shards)

    def _engine_for(self, node: str) -> StorageEngine:
        """Route to the engine of the shard owning the origin host."""
        return self.shards[self.shard_for(node)]

    def _observe_stored(self, report: Report, engine: StorageEngine) -> None:
        """Fold every routed, stored report into the merge layer."""
        self.merged.observe_report(report, engine)

    # ------------------------------------------------------------------
    # Collector plane
    # ------------------------------------------------------------------
    def register_collector(self, collector: "MintCollector") -> None:
        """Attach a host's collector to the shard owning the host.

        Registration order is preserved globally so notification
        fan-out visits collectors exactly as one backend would.
        """
        super().register_collector(collector)
        self._collector_shards.append(self.shard_for(collector.node))

    def collectors_on_shard(self, shard: int) -> list["MintCollector"]:
        """The collectors whose hosts the shard owns."""
        return [
            collector
            for collector, owner in zip(self._collectors, self._collector_shards)
            if owner == shard
        ]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def shard_summaries(self) -> list[ShardSummary]:
        """Per-shard byte tables for the scaling experiments."""
        hosts_by_shard: dict[int, list[str]] = {i: [] for i in range(self.num_shards)}
        for collector, owner in zip(self._collectors, self._collector_shards):
            hosts_by_shard[owner].append(collector.node)
        return [
            ShardSummary(
                shard=i,
                hosts=sorted(hosts_by_shard[i]),
                pattern_bytes=shard.pattern_bytes,
                bloom_bytes=shard.bloom_bytes,
                params_bytes=shard.params_bytes,
                storage_bytes=shard.storage_bytes(),
                sampled_traces=len(shard.sampled_trace_ids),
            )
            for i, shard in enumerate(self.shards)
        ]
