"""The backend's distributed trace storage engine.

Stores the three parts Mint separates (paper Section 3.4): pattern
libraries (merged across nodes by content id), Bloom filters (indexed by
topo pattern), and variable parameters of sampled traces.  Every stored
byte is accounted, because storage overhead is one of the paper's two
headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport
from repro.bloom.bloom_filter import BloomFilter, sized_for_bytes
from repro.model.encoding import encoded_size
from repro.parsing.span_parser import SpanPattern
from repro.parsing.trace_parser import TopoPattern


@dataclass
class StoredBloom:
    """A reported Bloom filter indexed under its topo pattern."""

    node: str
    topo_pattern_id: str
    filter: BloomFilter


class StorageEngine:
    """In-memory storage engine with strict byte accounting."""

    def __init__(self, bloom_buffer_bytes: int = 4096, bloom_fpp: float = 0.01) -> None:
        self.bloom_buffer_bytes = bloom_buffer_bytes
        self.bloom_fpp = bloom_fpp
        self.span_patterns: dict[str, SpanPattern] = {}
        self.numeric_ranges: dict[str, dict[str, tuple[float, float]]] = {}
        self.topo_patterns: dict[str, TopoPattern] = {}
        self.blooms: list[StoredBloom] = []
        # trace_id -> compact param records (see ParsedSpan.compact_record)
        self.params: dict[str, list[list[Any]]] = {}
        self.sampled_trace_ids: set[str] = set()
        self._pattern_bytes = 0
        self._bloom_bytes = 0
        self._params_bytes = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def store_pattern_report(self, report: PatternLibraryReport) -> None:
        """Merge a pattern library report; duplicate ids cost nothing."""
        for data in report.span_patterns:
            pattern = SpanPattern.from_dict(data)
            if pattern.pattern_id not in self.span_patterns:
                self.span_patterns[pattern.pattern_id] = pattern
                self._pattern_bytes += encoded_size(data)
            reported_ranges = data.get("numeric_ranges", {})
            if reported_ranges:
                merged = self.numeric_ranges.setdefault(pattern.pattern_id, {})
                for key, bounds in reported_ranges.items():
                    lower, upper = float(bounds[0]), float(bounds[1])
                    current = merged.get(key)
                    if current is None:
                        merged[key] = (lower, upper)
                    else:
                        merged[key] = (
                            min(current[0], lower),
                            max(current[1], upper),
                        )
        for data in report.topo_patterns:
            pattern = TopoPattern.from_dict(data)
            if pattern.pattern_id not in self.topo_patterns:
                self.topo_patterns[pattern.pattern_id] = pattern
                self._pattern_bytes += encoded_size(data)

    def store_bloom_report(self, report: BloomReport) -> None:
        """Index a flushed Bloom filter under its topo pattern."""
        reference = sized_for_bytes(self.bloom_buffer_bytes, self.bloom_fpp)
        filt = BloomFilter.from_bytes(
            report.payload,
            expected_insertions=reference.expected_insertions,
            false_positive_probability=self.bloom_fpp,
            inserted=report.inserted,
        )
        self.blooms.append(
            StoredBloom(
                node=report.node,
                topo_pattern_id=report.topo_pattern_id,
                filter=filt,
            )
        )
        self._bloom_bytes += report.size_bytes()

    def store_params_report(self, report: ParamsReport) -> None:
        """Persist a sampled trace's parameters from one node.

        Records are compact positional lists
        (``[span_id, parent_id, node, pattern_id, start_time, values]``);
        they stay compact at rest and are expanded lazily at query time.
        """
        bucket = self.params.setdefault(report.trace_id, [])
        known = {(r[0], r[2]) for r in bucket}
        for record in report.records:
            key = (record[0], record[2])
            if key in known:
                continue
            bucket.append(record)
            known.add(key)
            self._params_bytes += encoded_size(record)
        self.sampled_trace_ids.add(report.trace_id)

    def evict_host(self, host: str) -> tuple[list[StoredBloom], dict[str, list[list[Any]]]]:
        """Remove and return everything this engine stores for ``host``.

        The reshard snapshot: the host's Bloom filters and parameter
        records leave this engine in one step, and the byte counters
        are decremented by exactly the wire sizes the reports were
        charged at store time — so re-storing the returned state on
        another engine conserves the merged byte tables bit for bit.
        Parameter buckets of multi-host traces keep the other hosts'
        records; a bucket emptied by the eviction also releases its
        sampled-id mark (the destination's store re-adds it).
        Patterns stay: they are content-addressed and resolve through
        the merged fan-out from any shard.
        """
        moved_blooms = [b for b in self.blooms if b.node == host]
        if moved_blooms:
            self.blooms = [b for b in self.blooms if b.node != host]
            for stored in moved_blooms:
                header = encoded_size(
                    {
                        "node": stored.node,
                        "topo_pattern_id": stored.topo_pattern_id,
                        "inserted": stored.filter.inserted,
                    }
                )
                self._bloom_bytes -= header + len(stored.filter.to_bytes())
        moved_params: dict[str, list[list[Any]]] = {}
        for trace_id in list(self.params):
            bucket = self.params[trace_id]
            moving = [record for record in bucket if record[2] == host]
            if not moving:
                continue
            moved_params[trace_id] = moving
            for record in moving:
                self._params_bytes -= encoded_size(record)
            remaining = [record for record in bucket if record[2] != host]
            if remaining:
                self.params[trace_id] = remaining
            else:
                del self.params[trace_id]
                self.sampled_trace_ids.discard(trace_id)
        return moved_blooms, moved_params

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def patterns_matching_trace(self, trace_id: str) -> list[StoredBloom]:
        """All stored Bloom filters that (probably) contain ``trace_id``."""
        return [b for b in self.blooms if trace_id in b.filter]

    def has_params(self, trace_id: str) -> bool:
        """True when the exact parameters of the trace are stored."""
        return bool(self.params.get(trace_id))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def pattern_bytes(self) -> int:
        """Bytes spent on span + topo patterns."""
        return self._pattern_bytes

    @property
    def bloom_bytes(self) -> int:
        """Bytes spent on Bloom filters (trace metadata of all traces)."""
        return self._bloom_bytes

    @property
    def params_bytes(self) -> int:
        """Bytes spent on sampled traces' variable parameters."""
        return self._params_bytes

    def storage_bytes(self) -> int:
        """Total persisted bytes — the Fig. 11 storage metric."""
        return self._pattern_bytes + self._bloom_bytes + self._params_bytes
