"""The backend's distributed trace storage engine.

Stores the three parts Mint separates (paper Section 3.4): pattern
libraries (merged across nodes by content id), Bloom filters (indexed by
topo pattern), and variable parameters of sampled traces.  Every stored
byte is accounted, because storage overhead is one of the paper's two
headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport
from repro.bloom.bloom_filter import BloomFilter, sized_for_bytes
from repro.cold.blocks import (
    BLOOM_KIND,
    PARAMS_KIND,
    ColdTier,
    encode_bloom_payload,
    encode_params_payload,
)
from repro.cold.store import TieredBlooms, TieredParams
from repro.model.encoding import encoded_size
from repro.parsing.span_parser import SpanPattern
from repro.parsing.trace_parser import TopoPattern


@dataclass
class StoredBloom:
    """A reported Bloom filter indexed under its topo pattern."""

    node: str
    topo_pattern_id: str
    filter: BloomFilter


class StorageEngine:
    """In-memory storage engine with strict byte accounting.

    Storage is tiered: ``params`` and ``blooms`` are tiered containers
    whose cold side is the engine's :class:`~repro.cold.blocks.ColdTier`
    of sealed, dictionary-compressed blocks.  Sealing never moves the
    logical byte counters — ``storage_bytes`` stays the one fig11
    ruler — while :meth:`physical_storage_bytes` reports what the
    compressed store actually holds.
    """

    def __init__(self, bloom_buffer_bytes: int = 4096, bloom_fpp: float = 0.01) -> None:
        self.bloom_buffer_bytes = bloom_buffer_bytes
        self.bloom_fpp = bloom_fpp
        self.span_patterns: dict[str, SpanPattern] = {}
        self.numeric_ranges: dict[str, dict[str, tuple[float, float]]] = {}
        self.topo_patterns: dict[str, TopoPattern] = {}
        self.cold = ColdTier()
        self.blooms: TieredBlooms = TieredBlooms(self.cold)
        # trace_id -> compact param records (see ParsedSpan.compact_record)
        self.params: TieredParams = TieredParams(self.cold)
        self.sampled_trace_ids: set[str] = set()
        self._pattern_bytes = 0
        self._bloom_bytes = 0
        self._params_bytes = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def store_pattern_report(self, report: PatternLibraryReport) -> None:
        """Merge a pattern library report; duplicate ids cost nothing."""
        for data in report.span_patterns:
            pattern = SpanPattern.from_dict(data)
            if pattern.pattern_id not in self.span_patterns:
                self.span_patterns[pattern.pattern_id] = pattern
                self._pattern_bytes += encoded_size(data)
            reported_ranges = data.get("numeric_ranges", {})
            if reported_ranges:
                merged = self.numeric_ranges.setdefault(pattern.pattern_id, {})
                for key, bounds in reported_ranges.items():
                    lower, upper = float(bounds[0]), float(bounds[1])
                    current = merged.get(key)
                    if current is None:
                        merged[key] = (lower, upper)
                    else:
                        merged[key] = (
                            min(current[0], lower),
                            max(current[1], upper),
                        )
        for data in report.topo_patterns:
            pattern = TopoPattern.from_dict(data)
            if pattern.pattern_id not in self.topo_patterns:
                self.topo_patterns[pattern.pattern_id] = pattern
                self._pattern_bytes += encoded_size(data)

    def store_bloom_report(self, report: BloomReport) -> None:
        """Index a flushed Bloom filter under its topo pattern."""
        reference = sized_for_bytes(self.bloom_buffer_bytes, self.bloom_fpp)
        filt = BloomFilter.from_bytes(
            report.payload,
            expected_insertions=reference.expected_insertions,
            false_positive_probability=self.bloom_fpp,
            inserted=report.inserted,
        )
        self.blooms.append(
            StoredBloom(
                node=report.node,
                topo_pattern_id=report.topo_pattern_id,
                filter=filt,
            )
        )
        self._bloom_bytes += report.size_bytes()

    def store_params_report(self, report: ParamsReport) -> None:
        """Persist a sampled trace's parameters from one node.

        Records are compact positional lists
        (``[span_id, parent_id, node, pattern_id, start_time, values]``);
        they stay compact at rest and are expanded lazily at query time.
        """
        bucket = self.params.setdefault(report.trace_id, [])
        known = {(r[0], r[2]) for r in bucket}
        for record in report.records:
            key = (record[0], record[2])
            if key in known:
                continue
            bucket.append(record)
            known.add(key)
            self._params_bytes += encoded_size(record)
        self.sampled_trace_ids.add(report.trace_id)

    def evict_host(self, host: str) -> tuple[list[StoredBloom], dict[str, list[list[Any]]]]:
        """Remove and return everything this engine stores for ``host``.

        The reshard snapshot: the host's Bloom filters and parameter
        records leave this engine in one step, and the byte counters
        are decremented by exactly the wire sizes the reports were
        charged at store time — so re-storing the returned state on
        another engine conserves the merged byte tables bit for bit.
        Parameter buckets of multi-host traces keep the other hosts'
        records; a bucket emptied by the eviction also releases its
        sampled-id mark (the destination's store re-adds it).
        Patterns stay: they are content-addressed and resolve through
        the merged fan-out from any shard.

        Sealed segments are handled segment-granularly: every cold
        block holding any of the host's state is promoted (unsealed)
        first — blocks provably without the host stay sealed and are
        skipped — so the eviction below always moves hot objects and
        the counter decrements stay exactly the store-time charges.
        """
        self.params.promote_host(host)
        self.blooms.promote_host(host)
        moved_blooms = self.blooms.remove_node(host)
        for stored in moved_blooms:
            self._bloom_bytes -= self._stored_bloom_charge(stored)
        moved_params: dict[str, list[list[Any]]] = {}
        for trace_id in list(self.params):
            if self.params.is_sealed(trace_id):
                # Still-sealed buckets live in blocks whose host set
                # excluded ``host`` — nothing of theirs is moving.
                continue
            bucket = self.params[trace_id]
            moving = [record for record in bucket if record[2] == host]
            if not moving:
                continue
            moved_params[trace_id] = moving
            for record in moving:
                self._params_bytes -= encoded_size(record)
            remaining = [record for record in bucket if record[2] != host]
            if remaining:
                self.params[trace_id] = remaining
            else:
                del self.params[trace_id]
                self.sampled_trace_ids.discard(trace_id)
        return moved_blooms, moved_params

    # ------------------------------------------------------------------
    # Cold tier (sealing surface; selection lives in repro.cold.compactor)
    # ------------------------------------------------------------------
    @staticmethod
    def _stored_bloom_charge(stored: StoredBloom) -> int:
        """The exact bytes a stored filter was charged at store time
        (the one formula eviction and sealing both decrement/carry)."""
        header = encoded_size(
            {
                "node": stored.node,
                "topo_pattern_id": stored.topo_pattern_id,
                "inserted": stored.filter.inserted,
            }
        )
        return header + len(stored.filter.to_bytes())

    def seal_params_block(self, items: list[tuple[str, list[list[Any]]]]) -> int:
        """Seal hot params buckets into one compressed block.

        Logical counters do not move — the block carries the buckets'
        exact store-time charges so unsealing (and eviction through
        promotion) conserves every byte table bit for bit.
        """
        buckets = dict(items)
        raw = encode_params_payload(buckets)
        logical = sum(
            encoded_size(record) for bucket in buckets.values() for record in bucket
        )
        hosts = frozenset(
            record[2] for bucket in buckets.values() for record in bucket
        )
        block_id = self.cold.seal(
            PARAMS_KIND, raw, logical, hosts, tuple(buckets), with_dictionary=True
        )
        self.params.seal(list(buckets), block_id)
        return block_id

    def seal_bloom_block(self, positions: list[int]) -> int:
        """Seal stored Bloom filters (by position) into one block.

        Bit arrays are high-entropy, so the block skips the trained
        dictionary; node/pattern/inserted metadata stays hot on the
        sealed refs for placement checks and eviction scans.
        """
        entries = self.blooms.entries_at(positions)
        raw = encode_bloom_payload(entries)
        logical = sum(self._stored_bloom_charge(stored) for stored in entries)
        hosts = frozenset(stored.node for stored in entries)
        block_id = self.cold.seal(
            BLOOM_KIND, raw, logical, hosts, (len(entries),), with_dictionary=False
        )
        self.blooms.seal(positions, block_id)
        return block_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def patterns_matching_trace(self, trace_id: str) -> list[StoredBloom]:
        """All stored Bloom filters that (probably) contain ``trace_id``."""
        return [b for b in self.blooms if trace_id in b.filter]

    def has_params(self, trace_id: str) -> bool:
        """True when the exact parameters of the trace are stored.

        Sealed buckets answer from hot metadata (only non-empty buckets
        are ever sealed), so the common probe never decodes a block."""
        if self.params.is_sealed(trace_id):
            return True
        return bool(self.params.get(trace_id))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def pattern_bytes(self) -> int:
        """Bytes spent on span + topo patterns."""
        return self._pattern_bytes

    @property
    def bloom_bytes(self) -> int:
        """Bytes spent on Bloom filters (trace metadata of all traces)."""
        return self._bloom_bytes

    @property
    def params_bytes(self) -> int:
        """Bytes spent on sampled traces' variable parameters."""
        return self._params_bytes

    def storage_bytes(self) -> int:
        """Total persisted bytes — the Fig. 11 storage metric.

        This is the *logical* figure: sealing segments into compressed
        cold blocks never moves it (the one-ruler contract).  The
        compressed reality is :meth:`physical_storage_bytes`."""
        return self._pattern_bytes + self._bloom_bytes + self._params_bytes

    def cold_savings_bytes(self) -> int:
        """Logical bytes saved by the cold tier (sealed store-time
        charges minus compressed block + dictionary bytes).  Zero while
        nothing is sealed; honest (possibly negative) on degenerate
        tiny corpora."""
        return self.cold.savings_bytes()

    def physical_storage_bytes(self) -> int:
        """What the store physically holds: the logical ruler minus the
        cold tier's savings — hot state at its charged size, sealed
        segments at their compressed size (plus the shared trained
        dictionary)."""
        return self.storage_bytes() - self.cold_savings_bytes()

    def cold_stats(self) -> dict[str, Any]:
        """Cold-tier counters plus the tiering split, for panels."""
        stats = self.cold.stats()
        stats["sealed_params_traces"] = self.params.sealed_count()
        stats["sealed_bloom_filters"] = self.blooms.sealed_count()
        stats["logical_storage_bytes"] = self.storage_bytes()
        stats["physical_storage_bytes"] = self.physical_storage_bytes()
        return stats
