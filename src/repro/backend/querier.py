"""Query logic: exact traces for sampled requests, approximate traces
for everything else (paper Section 4.3 and Fig. 10).

For a queried trace id, the querier checks every stored Bloom filter.
Matching filters identify the topo patterns the trace's sub-traces
belong to; those segments are stitched into an *approximate trace* by
matching exit operations against entry operations (paper Section 6.2).
If the trace was sampled, its exact parameters are substituted into the
patterns to reconstruct the original spans.
"""

from __future__ import annotations

from typing import Any

from repro.backend.storage import StorageEngine
from repro.model.trace import Trace
from repro.parsing.span_parser import ParsedSpan, approximate_span_view, reconstruct_exact_span
from repro.parsing.trace_parser import TopoNode, TopoPattern
from repro.query.result import (
    ApproximateSegment,
    ApproximateTrace,
    QueryResult,
    QueryStatus,
)

__all__ = [
    "ApproximateSegment",
    "ApproximateTrace",
    "Querier",
    "QueryResult",
    "QueryStatus",
]


class Querier:
    """Answers trace-id queries against a :class:`StorageEngine`."""

    def __init__(self, storage: StorageEngine) -> None:
        self.storage = storage

    def query(self, trace_id: str) -> QueryResult:
        """Return the exact trace, an approximate trace, or a miss."""
        if self.storage.has_params(trace_id):
            trace = self._reconstruct_exact(trace_id)
            if trace is not None:
                return QueryResult(
                    trace_id=trace_id, status=QueryStatus.EXACT, trace=trace
                )
        approximate = self._reconstruct_approximate(trace_id)
        if approximate is not None:
            return QueryResult(
                trace_id=trace_id, status=QueryStatus.PARTIAL, approximate=approximate
            )
        return QueryResult(trace_id=trace_id, status=QueryStatus.MISS)

    # ------------------------------------------------------------------
    # Exact reconstruction
    # ------------------------------------------------------------------
    def _reconstruct_exact(self, trace_id: str) -> Trace | None:
        records = self.storage.params.get(trace_id, [])
        spans = []
        for record in records:
            pattern = self.storage.span_patterns.get(record[3])
            if pattern is None:
                continue
            parsed = ParsedSpan.from_compact_record(trace_id, record, pattern)
            spans.append(reconstruct_exact_span(pattern, parsed))
        if not spans:
            return None
        spans.sort(key=lambda s: (s.start_time, s.span_id))
        return Trace(trace_id=trace_id, spans=spans)

    # ------------------------------------------------------------------
    # Approximate reconstruction
    # ------------------------------------------------------------------
    def _reconstruct_approximate(self, trace_id: str) -> ApproximateTrace | None:
        matches = self.storage.patterns_matching_trace(trace_id)
        if not matches:
            return None
        by_pattern: dict[str, list[str]] = {}
        for stored in matches:
            by_pattern.setdefault(stored.topo_pattern_id, []).append(stored.node)
        segments: list[ApproximateSegment] = []
        for pattern_id, nodes in sorted(by_pattern.items()):
            pattern = self.storage.topo_patterns.get(pattern_id)
            if pattern is None:
                continue
            segments.append(self._render_segment(pattern, sorted(set(nodes))))
        if not segments:
            return None
        segments = _drop_unconnected_false_positives(segments)
        ordered = _stitch_segments(segments)
        return ApproximateTrace(trace_id=trace_id, segments=ordered)

    def _render_segment(
        self, pattern: TopoPattern, nodes: list[str]
    ) -> ApproximateSegment:
        spans: list[dict[str, Any]] = []

        def visit(node: TopoNode, depth: int) -> None:
            span_pattern = self.storage.span_patterns.get(node[0])
            if span_pattern is not None:
                ranges = self.storage.numeric_ranges.get(node[0])
                view = approximate_span_view(span_pattern, ranges)
                view["depth"] = depth
                spans.append(view)
            for child in node[1]:
                visit(child, depth + 1)

        for root in pattern.roots:
            visit(root, 0)
        return ApproximateSegment(
            topo_pattern_id=pattern.pattern_id,
            nodes_reporting=nodes,
            spans=spans,
            entry_ops=[tuple(op) for op in pattern.entry_ops],
            exit_ops=[tuple(op) for op in pattern.exit_ops],
        )


def _drop_unconnected_false_positives(
    segments: list[ApproximateSegment],
) -> list[ApproximateSegment]:
    """Upstream/downstream verification of Bloom matches (Section 3.3).

    Bloom filters can falsely place a trace in an unrelated pattern.
    A false-positive segment usually has no entry/exit relationship
    with any other matched segment, so when at least two segments *are*
    mutually connected, segments connected to nothing are discarded.
    (With zero or one connection in total there is nothing to verify
    against, and every match is kept — the no-miss property wins.)
    """
    if len(segments) <= 1:
        return segments
    connected: set[int] = set()
    for i, a in enumerate(segments):
        for j, b in enumerate(segments):
            if i == j:
                continue
            if set(a.exit_ops) & set(b.entry_ops):
                connected.add(i)
                connected.add(j)
    if len(connected) < 2:
        return segments
    return [seg for i, seg in enumerate(segments) if i in connected]


def _stitch_segments(segments: list[ApproximateSegment]) -> list[ApproximateSegment]:
    """Order segments by upstream/downstream matching (Section 6.2).

    Segment A precedes segment B when one of A's exit operations names
    B's entry operation (matching callee service and operation name).
    A topological-ish greedy order is produced; unmatched segments keep
    their original relative order at the end.
    """
    if len(segments) <= 1:
        return segments
    entry_index: dict[tuple[str, str], list[int]] = {}
    for i, seg in enumerate(segments):
        for op in seg.entry_ops:
            entry_index.setdefault(op, []).append(i)
    successors: dict[int, set[int]] = {i: set() for i in range(len(segments))}
    indegree = [0] * len(segments)
    for i, seg in enumerate(segments):
        for op in seg.exit_ops:
            for j in entry_index.get(op, []):
                if j != i and j not in successors[i]:
                    successors[i].add(j)
                    indegree[j] += 1
    ordered: list[int] = []
    ready = sorted(i for i in range(len(segments)) if indegree[i] == 0)
    visited: set[int] = set()
    while ready:
        current = ready.pop(0)
        if current in visited:
            continue
        visited.add(current)
        ordered.append(current)
        for nxt in sorted(successors[current]):
            indegree[nxt] -= 1
            if indegree[nxt] <= 0 and nxt not in visited:
                ready.append(nxt)
    for i in range(len(segments)):
        if i not in visited:
            ordered.append(i)
    return [segments[i] for i in ordered]
