"""Mint backend: distributed trace storage engine and querier.

Receives collector reports, merges pattern libraries across nodes,
indexes Bloom filters, stores sampled traces' parameters, and answers
trace queries with exact or approximate traces (paper Section 4.3).
"""

from repro.backend.backend import MintBackend
from repro.backend.explorer import (
    BatchAnalysis,
    FlameNode,
    batch_analyze,
    flame_graph,
    render_flame_graph,
)
from repro.backend.querier import ApproximateSegment, ApproximateTrace, Querier, QueryResult
from repro.backend.sharded import (
    MergedStorageView,
    ShardedBackend,
    ShardedQuerier,
    ShardSummary,
    shard_for_key,
)
from repro.backend.storage import StorageEngine, StoredBloom

__all__ = [
    "StorageEngine",
    "StoredBloom",
    "Querier",
    "QueryResult",
    "ApproximateTrace",
    "ApproximateSegment",
    "MintBackend",
    "MergedStorageView",
    "ShardedBackend",
    "ShardedQuerier",
    "ShardSummary",
    "shard_for_key",
    "FlameNode",
    "flame_graph",
    "render_flame_graph",
    "BatchAnalysis",
    "batch_analyze",
]
