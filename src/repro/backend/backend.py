"""The Mint backend: report ingestion and cross-agent coordination.

Implements the backend half of paper Fig. 9: receives pattern, Bloom
and parameter reports; when any node marks a trace sampled, notifies
every registered collector so parameters scattered across hosts are all
uploaded ("Backend notifies hosts to report all parameters of the
sampled trace"), preserving trace coherence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.agent.reports import (
    BloomReport,
    ParamsReport,
    PatternLibraryReport,
    Report,
)
from repro.backend.querier import Querier, QueryResult
from repro.backend.storage import StorageEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agent.collector import MintCollector

# Called with (collector_node, payload_bytes) whenever the backend sends
# a control message to a collector, so simulations can charge the
# backend->agent direction of the network.
NotifyMeter = Callable[[str, int], None]

_NOTIFY_MESSAGE_BYTES = 64  # trace id + header, the paper's "check and report" ping


class MintBackend:
    """Unified backend with storage engine and querier."""

    def __init__(
        self,
        bloom_buffer_bytes: int = 4096,
        bloom_fpp: float = 0.01,
        notify_meter: NotifyMeter | None = None,
    ) -> None:
        self.storage = StorageEngine(
            bloom_buffer_bytes=bloom_buffer_bytes, bloom_fpp=bloom_fpp
        )
        self.querier = Querier(self.storage)
        self._collectors: list["MintCollector"] = []
        self._notify_meter = notify_meter
        self._notified_trace_ids: set[str] = set()

    def register_collector(self, collector: "MintCollector") -> None:
        """Attach a collector for cross-agent parameter pulls."""
        self._collectors.append(collector)

    def receive(self, report: Report) -> None:
        """Ingest one report from a collector."""
        if isinstance(report, PatternLibraryReport):
            self.storage.store_pattern_report(report)
        elif isinstance(report, BloomReport):
            self.storage.store_bloom_report(report)
        elif isinstance(report, ParamsReport):
            self.storage.store_params_report(report)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown report type: {type(report)!r}")

    def notify_sampled(self, trace_id: str, origin_node: str | None = None) -> None:
        """Propagate a sampling decision to every other collector.

        Idempotent per trace id; each notified collector uploads its
        buffered parameters for the trace (if any).
        """
        if trace_id in self._notified_trace_ids:
            return
        self._notified_trace_ids.add(trace_id)
        self.storage.sampled_trace_ids.add(trace_id)
        for collector in self._collectors:
            if origin_node is not None and collector.node == origin_node:
                continue
            if self._notify_meter is not None:
                self._notify_meter(collector.node, _NOTIFY_MESSAGE_BYTES)
            collector.mark_sampled(trace_id)

    def query(self, trace_id: str, pull_params: bool = False) -> QueryResult:
        """Answer a user trace query (exact / partial / miss).

        With ``pull_params`` (the 'Query Trace ID' arrow into sampling
        in paper Fig. 9), a partial result triggers a retroactive
        parameter pull: the backend asks every collector to upload the
        trace's parameters if they are still buffered, upgrading the
        answer to exact when the buffers cooperate.
        """
        result = self.querier.query(trace_id)
        if not pull_params or result.status != "partial":
            return result
        pulled = False
        for collector in self._collectors:
            if collector.request_params(trace_id):
                pulled = True
        if pulled:
            self.storage.sampled_trace_ids.add(trace_id)
            return self.querier.query(trace_id)
        return result

    def storage_bytes(self) -> int:
        """Total persisted bytes."""
        return self.storage.storage_bytes()
