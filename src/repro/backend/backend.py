"""The Mint backend: report ingestion and cross-agent coordination.

Implements the backend half of paper Fig. 9: receives pattern, Bloom
and parameter reports; when any node marks a trace sampled, notifies
every registered collector so parameters scattered across hosts are all
uploaded ("Backend notifies hosts to report all parameters of the
sampled trace"), preserving trace coherence.

All deployment-shared behaviour (collector registry, report dispatch,
idempotent notify, query with retroactive pull) lives in
:class:`~repro.transport.plane.BackendPlane`; this class binds it to
the degenerate topology — one storage engine owning every node.
"""

from __future__ import annotations

from repro.backend.querier import Querier
from repro.backend.storage import StorageEngine
from repro.transport.plane import BackendPlane
from repro.transport.wire import NotifyMeter


class MintBackend(BackendPlane):
    """Unified backend with storage engine and querier."""

    def __init__(
        self,
        bloom_buffer_bytes: int = 4096,
        bloom_fpp: float = 0.01,
        notify_meter: NotifyMeter | None = None,
    ) -> None:
        super().__init__(notify_meter=notify_meter)
        self.storage = StorageEngine(
            bloom_buffer_bytes=bloom_buffer_bytes, bloom_fpp=bloom_fpp
        )
        self.querier = Querier(self.storage)

    def _engine_for(self, node: str) -> StorageEngine:
        """Every node routes to the one engine (the N=1 case)."""
        return self.storage
