"""Trace Explorer: the query/visualisation features of Mint's frontend.

Paper Section 6.3 describes the production use cases approximate traces
serve: **UC 1** (trace exploration — execution path, flame graph, types
and approximate content of each operation) and **UC 2** (batch analysis
— latency scatter plots, aggregated topology across many traces).

This module renders both from :class:`~repro.backend.querier.QueryResult`
objects, uniformly for exact and approximate traces.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.model.trace import Trace
from repro.query.result import ApproximateTrace, QueryResult, QueryStatus


@dataclass
class FlameNode:
    """One bar of a flame graph."""

    label: str
    service: str
    duration_text: str
    depth: int
    children: list["FlameNode"] = field(default_factory=list)


def flame_graph_from_trace(trace: Trace) -> list[FlameNode]:
    """Flame nodes (forest) for an exact trace."""
    by_parent: dict[str | None, list] = defaultdict(list)
    span_ids = {s.span_id for s in trace.spans}
    for span in trace.spans:
        parent = span.parent_id if span.parent_id in span_ids else None
        by_parent[parent].append(span)

    def build(span, depth: int) -> FlameNode:
        node = FlameNode(
            label=span.name,
            service=span.service,
            duration_text=f"{span.duration:.2f}ms",
            depth=depth,
        )
        for child in sorted(
            by_parent.get(span.span_id, []), key=lambda s: (s.start_time, s.span_id)
        ):
            node.children.append(build(child, depth + 1))
        return node

    return [
        build(root, 0)
        for root in sorted(by_parent[None], key=lambda s: (s.start_time, s.span_id))
    ]


def flame_graph_from_approximate(approx: ApproximateTrace) -> list[FlameNode]:
    """Flame nodes for an approximate trace (durations are bucket text)."""
    roots: list[FlameNode] = []
    for segment in approx.segments:
        stack: list[FlameNode] = []
        for view in segment.spans:
            node = FlameNode(
                label=view["name"],
                service=view["service"],
                duration_text=view.get("duration") or "<num>",
                depth=view.get("depth", 0),
            )
            while stack and stack[-1].depth >= node.depth:
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
    return roots


def flame_graph(result: QueryResult) -> list[FlameNode]:
    """Flame nodes for any query result (exact preferred)."""
    if result.trace is not None:
        return flame_graph_from_trace(result.trace)
    if result.approximate is not None:
        return flame_graph_from_approximate(result.approximate)
    return []


def render_flame_graph(result: QueryResult, width: int = 100) -> str:
    """Text rendering of the flame graph (UC 1's visualisation)."""
    lines = [f"trace {result.trace_id}  [{result.status}]"]

    def visit(node: FlameNode, depth: int) -> None:
        indent = "  " * depth
        text = f"{indent}▇ {node.service} :: {node.label} ({node.duration_text})"
        lines.append(text[:width])
        for child in node.children:
            visit(child, depth + 1)

    for root in flame_graph(result):
        visit(root, 0)
    return "\n".join(lines)


@dataclass
class BatchAnalysis:
    """Aggregates over many query results (UC 2)."""

    traces_seen: int = 0
    exact_traces: int = 0
    partial_traces: int = 0
    spans_available: int = 0
    path_counts: Counter = field(default_factory=Counter)
    service_duration_buckets: dict[str, Counter] = field(
        default_factory=lambda: defaultdict(Counter)
    )
    service_error_counts: Counter = field(default_factory=Counter)

    @property
    def top_paths(self) -> list[tuple[str, int]]:
        """Most common aggregated execution paths."""
        return self.path_counts.most_common(10)

    @classmethod
    def from_cursor(cls, cursor: Iterable[QueryResult]) -> "BatchAnalysis":
        """Fold a streaming query cursor into one analysis.

        The natural UC 2 pipeline since PR 5: build a
        :class:`~repro.query.spec.QuerySpec` (batch or predicate),
        ``execute`` it, and aggregate the cursor — one result is in
        memory at a time, so windows of thousands of traces stream
        straight into the panels.
        """
        return batch_analyze(cursor)


def batch_analyze(results: Iterable[QueryResult]) -> BatchAnalysis:
    """UC 2: run batch aggregation over a window of query results.

    Accepts any iterable of results — a list, or a streaming
    :class:`~repro.query.cursor.QueryCursor` consumed lazily.
    Approximate traces contribute execution paths, duration buckets and
    error flags — the paper's point is that this multiplies the
    analysable span population versus sampled-only data.
    """
    out = BatchAnalysis()
    for result in results:
        if result.status is QueryStatus.MISS:
            continue
        out.traces_seen += 1
        if result.trace is not None:
            out.exact_traces += 1
            out.spans_available += len(result.trace.spans)
            out.path_counts[" -> ".join(sorted(result.trace.services))] += 1
            for span in result.trace.spans:
                bucket = f"{span.duration:.0f}ms"
                out.service_duration_buckets[span.service][bucket] += 1
                if span.status.value == "error":
                    out.service_error_counts[span.service] += 1
        elif result.approximate is not None:
            out.partial_traces += 1
            approx = result.approximate
            out.spans_available += approx.span_count
            out.path_counts[" -> ".join(sorted(approx.services))] += 1
            for segment in approx.segments:
                for view in segment.spans:
                    bucket = view.get("duration") or "<num>"
                    out.service_duration_buckets[view["service"]][bucket] += 1
                    if view.get("status") == "error":
                        out.service_error_counts[view["service"]] += 1
    return out
