"""CLP-style compression (Rodrigues et al., OSDI 2021).

CLP parses each message into a *logtype* (the constant text), a list of
*dictionary variables* (tokens mixing letters and digits, stored once in
a dictionary and referenced by id) and *non-dictionary variables*
(plain numbers, encoded in place).  Searches run directly over the
compressed representation — the property the paper's experiment
requires of every contender.
"""

from __future__ import annotations

import re

from repro.compression.base import CompressionResult, Compressor
from repro.compression.corpus import corpus_raw_bytes, spans_as_lines
from repro.model.encoding import encoded_size
from repro.model.trace import Trace

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")
_HEX_RE = re.compile(r"^[0-9a-f]{4,16}$")
_DICT_VAR_RE = re.compile(r"^(?=.*\d)[\w.\-:/=]+$")


def classify_token(token: str) -> str:
    """CLP token classes: 'number', 'encoded' or 'dictvar' vs 'logtype'.

    CLP stores variables representable in 64 bits as *non-dictionary*
    (inline-encoded) values; hex ids up to 16 digits qualify.  Treating
    them as dictionary variables instead would balloon the dictionary
    with never-repeating ids.
    """
    if _NUMBER_RE.match(token):
        return "number"
    if _HEX_RE.match(token):
        return "encoded"
    if _DICT_VAR_RE.match(token):
        return "dictvar"
    return "logtype"


class CLPCompressor(Compressor):
    """Logtype + dictionary/non-dictionary variable encoding."""

    name = "CLP"

    def compress(self, traces: list[Trace]) -> CompressionResult:
        lines = spans_as_lines(traces)
        raw = corpus_raw_bytes(traces)
        logtypes: dict[str, int] = {}
        var_dict: dict[str, int] = {}
        residual_bytes = 0
        for line in lines:
            # CLP tokenises on punctuation as well as spaces; splitting
            # key=value pairs lets the constant key join the logtype
            # while only the value is treated as a variable.
            tokens = []
            for piece in line.split(" "):
                if "=" in piece:
                    key, _, value = piece.partition("=")
                    tokens.append(f"{key}=")
                    if value:
                        tokens.append(value)
                else:
                    tokens.append(piece)
            logtype_parts: list[str] = []
            dict_ids: list[int] = []
            numbers: list[float] = []
            for token in tokens:
                # Peel punctuation affixes (quotes, parens, commas) so a
                # token like ``('4f2a1b',`` classifies by its core; the
                # affixes stay in the logtype as constant text.
                core = token.strip("'\"(),;[]{}")
                prefix_len = token.find(core) if core else len(token)
                prefix = token[:prefix_len]
                suffix = token[prefix_len + len(core):] if core else ""
                cls = classify_token(core) if core else "logtype"
                if cls == "number":
                    logtype_parts.append(f"{prefix}\\f{suffix}")
                    numbers.append(float(core))
                elif cls == "encoded":
                    logtype_parts.append(f"{prefix}\\x{suffix}")
                    numbers.append(int(core, 16))
                elif cls == "dictvar":
                    logtype_parts.append(f"{prefix}\\d{suffix}")
                    var_id = var_dict.get(core)
                    if var_id is None:
                        var_id = len(var_dict)
                        var_dict[core] = var_id
                    dict_ids.append(var_id)
                else:
                    logtype_parts.append(token)
            logtype = " ".join(logtype_parts)
            logtype_id = logtypes.get(logtype)
            if logtype_id is None:
                logtype_id = len(logtypes)
                logtypes[logtype] = logtype_id
            residual_bytes += encoded_size([logtype_id, dict_ids, numbers])
        dictionary_bytes = encoded_size(list(logtypes)) + encoded_size(
            list(var_dict)
        )
        compressed = dictionary_bytes + residual_bytes
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=compressed,
            details={
                "logtypes": len(logtypes),
                "dictionary_entries": len(var_dict),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": residual_bytes,
            },
        )
