"""LogReducer-style compression (Wei et al., FAST 2021).

LogReducer is a parser-based log compressor whose wins over plain
template extraction come from variable-side tricks: delta encoding for
numeric variables and a dictionary for repeated string variables.  The
reimplementation applies both on top of the same template split LogZip
uses, preserving the relative ordering the paper's Table 4 reports.
"""

from __future__ import annotations

from collections import defaultdict

from repro.compression.base import CompressionResult, Compressor
from repro.compression.corpus import corpus_raw_bytes, spans_as_lines
from repro.compression.logzip import WILDCARD, _tokens, extract_line_template
from repro.model.encoding import encoded_size
from repro.model.trace import Trace


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


class LogReducerCompressor(Compressor):
    """Template compression plus numeric-delta and string dictionaries."""

    name = "LogReducer"

    def compress(self, traces: list[Trace]) -> CompressionResult:
        lines = spans_as_lines(traces)
        raw = corpus_raw_bytes(traces)
        buckets: dict[tuple[int, str], list[list[str]]] = defaultdict(list)
        for line in lines:
            tokens = _tokens(line)
            anchor = tokens[1] if len(tokens) > 1 else tokens[0]
            buckets[(len(tokens), anchor)].append(tokens)
        templates = 0
        dictionary: dict[str, int] = {}
        residual_bytes = 0
        template_texts: list[str] = []
        for _, group in sorted(buckets.items()):
            template = extract_line_template(group)
            templates += 1
            template_texts.append(" ".join(template))
            # Per-variable-column state for delta encoding.
            last_numeric: dict[int, float] = {}
            for tokens in group:
                encoded_vars: list = [templates - 1]
                column = 0
                for tok, tmpl in zip(tokens, template):
                    if tmpl != WILDCARD:
                        continue
                    if _is_number(tok):
                        value = float(tok)
                        prev = last_numeric.get(column)
                        delta = value if prev is None else value - prev
                        last_numeric[column] = value
                        encoded_vars.append(round(delta, 6))
                    else:
                        var_id = dictionary.get(tok)
                        if var_id is None:
                            var_id = len(dictionary)
                            dictionary[tok] = var_id
                        encoded_vars.append(var_id)
                    column += 1
                residual_bytes += encoded_size(encoded_vars)
        dictionary_bytes = encoded_size(list(dictionary)) + encoded_size(
            template_texts
        )
        compressed = dictionary_bytes + residual_bytes
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=compressed,
            details={
                "templates": templates,
                "dictionary_entries": len(dictionary),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": residual_bytes,
            },
        )
