"""Lossless trace compression: Mint vs. log-specific compressors.

Reproduces the Table 4 comparison: LogZip, LogReducer and CLP (log
compressors applied to serialised trace lines) against Mint's
trace-aware two-level parsing, plus the two ablations (without
inter-span parsing, without inter-trace parsing).

All compressors share one rule from the paper: compressed data must
remain directly queryable — no opaque byte-stream entropy coding — so
every "compressed size" here is the canonical encoded size of the
template dictionaries plus the per-record residuals.
"""

from repro.compression.base import CompressionResult, Compressor
from repro.compression.clp import CLPCompressor
from repro.compression.corpus import corpus_raw_bytes, spans_as_lines
from repro.compression.logreducer import LogReducerCompressor
from repro.compression.logzip import LogZipCompressor
from repro.compression.mint_compressor import MintCompressor

__all__ = [
    "Compressor",
    "CompressionResult",
    "spans_as_lines",
    "corpus_raw_bytes",
    "LogZipCompressor",
    "LogReducerCompressor",
    "CLPCompressor",
    "MintCompressor",
]
