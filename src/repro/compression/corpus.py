"""Rendering traces as log lines for the log-compressor baselines.

Log compressors have no notion of topology: they see a flat stream of
text lines.  Each span becomes one line carrying all of its fields —
the same information content the trace encoding carries, so compression
ratios of log-style and trace-style schemes are comparable.
"""

from __future__ import annotations

from repro.model.encoding import encoded_size
from repro.model.span import Span
from repro.model.trace import Trace


def span_as_line(span: Span) -> str:
    """One flat, log-like text line for a span."""
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    return (
        f"{span.start_time:.6f} {span.service} {span.name} "
        f"trace={span.trace_id} span={span.span_id} parent={span.parent_id or '-'} "
        f"kind={span.kind.value} status={span.status.value} node={span.node} "
        f"duration={span.duration} {attrs}"
    )


def spans_as_lines(traces: list[Trace]) -> list[str]:
    """Flatten a corpus to log lines, one per span."""
    return [span_as_line(span) for trace in traces for span in trace.spans]


def corpus_raw_bytes(traces: list[Trace]) -> int:
    """Canonical raw size of the corpus — the numerator of every ratio."""
    return sum(encoded_size(trace) for trace in traces)
