"""LogZip-style compression (Liu et al., ASE 2019).

LogZip extracts hidden structures via iterative clustering: lines are
grouped into templates, and each line is stored as a template id plus
its variable fields.  Our reimplementation keeps the information layout
(template dictionary + per-line residual) without the byte-level
entropy coding, per the evaluation's "queryable compression" ground
rule.
"""

from __future__ import annotations

from collections import defaultdict

from repro.compression.base import CompressionResult, Compressor
from repro.compression.corpus import corpus_raw_bytes, spans_as_lines
from repro.model.encoding import encoded_size
from repro.model.trace import Trace

WILDCARD = "<*>"


def _tokens(line: str) -> list[str]:
    return line.split(" ")


def extract_line_template(lines_tokens: list[list[str]]) -> list[str]:
    """Position-wise template over same-length token lists: a token is
    kept when all lines agree, else replaced with ``<*>``."""
    first = lines_tokens[0]
    template = list(first)
    for tokens in lines_tokens[1:]:
        for i, token in enumerate(tokens):
            if template[i] != WILDCARD and template[i] != token:
                template[i] = WILDCARD
    return template


class LogZipCompressor(Compressor):
    """Iterative-clustering template compression for log lines."""

    name = "LogZip"

    def __init__(self, max_cluster_rounds: int = 3) -> None:
        self.max_cluster_rounds = max_cluster_rounds

    def compress(self, traces: list[Trace]) -> CompressionResult:
        lines = spans_as_lines(traces)
        raw = corpus_raw_bytes(traces)
        # Round 1: bucket by token count (LogZip's coarse structure).
        buckets: dict[int, list[list[str]]] = defaultdict(list)
        for line in lines:
            tokens = _tokens(line)
            buckets[len(tokens)].append(tokens)
        templates: list[list[str]] = []
        encoded_lines = 0
        for _, group in sorted(buckets.items()):
            # Round 2: split each bucket by its first diverging prefix
            # token (LogZip's iterative refinement, bounded rounds).
            subgroups: dict[str, list[list[str]]] = defaultdict(list)
            for tokens in group:
                anchor = tokens[1] if len(tokens) > 1 else tokens[0]
                subgroups[anchor].append(tokens)
            for _, sub in sorted(subgroups.items()):
                template = extract_line_template(sub)
                template_id = len(templates)
                templates.append(template)
                for tokens in sub:
                    variables = [
                        tok
                        for tok, tmpl in zip(tokens, template)
                        if tmpl == WILDCARD
                    ]
                    encoded_lines += encoded_size([template_id, variables])
        dictionary_bytes = encoded_size([" ".join(t) for t in templates])
        compressed = dictionary_bytes + encoded_lines
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=compressed,
            details={
                "templates": len(templates),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": encoded_lines,
            },
        )
