"""Compressor interface and shared accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.model.trace import Trace


@dataclass
class CompressionResult:
    """Outcome of compressing one corpus of traces."""

    compressor: str
    raw_bytes: int
    compressed_bytes: int
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Raw size over compressed size (higher is better)."""
        if self.compressed_bytes <= 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes


class Compressor(abc.ABC):
    """One queryable-compression scheme over a trace corpus."""

    name: str = "compressor"

    @abc.abstractmethod
    def compress(self, traces: list[Trace]) -> CompressionResult:
        """Compress the corpus and account every stored byte."""
