"""Mint's lossless trace compression, with the Table 4 ablations.

Three modes:

* ``full`` — both parsing levels.  Span patterns and topo patterns form
  the dictionary; each sub-trace stores only its trace id, topo pattern
  id, span ids in canonical (pattern tree pre-order) order, entry-span
  parent links, start times and parameter values.  Parent relations and
  per-span pattern ids are *not* stored per span — they are implied by
  the topo pattern, which is where trace-aware compression beats
  log-style template compression.
* ``no_span`` (paper's w/o S_p) — topology is deduplicated but span
  attributes are stored raw.
* ``no_trace`` (paper's w/o T_p) — spans are templated but topology is
  stored explicitly per span (parent ids + pattern ids).
"""

from __future__ import annotations

from typing import Any

from repro.compression.base import CompressionResult, Compressor
from repro.compression.corpus import corpus_raw_bytes
from repro.model.encoding import encoded_size
from repro.model.span import Span, SpanKind
from repro.model.trace import SubTrace, Trace
from repro.parsing.span_parser import ParsedSpan, SpanParser, reconstruct_exact_span
from repro.parsing.trace_parser import (
    TopoNode,
    TopoPattern,
    TopoPatternLibrary,
    extract_topo_pattern,
)

_MODES = ("full", "no_span", "no_trace")


def canonical_span_order(
    sub_trace: SubTrace, pattern_key: dict[str, str]
) -> list[str]:
    """Span ids of a sub-trace in the topo pattern's canonical pre-order.

    ``pattern_key`` maps span id -> the identity used in the topo tree
    (the span pattern id, or a coarse structural key in ``no_span``
    mode).  Mirrors :func:`extract_topo_pattern`'s child ordering so the
    i-th stored record corresponds to the i-th tree node.
    """

    def build(span_id: str) -> tuple[TopoNode, list[str]]:
        child_results = [
            build(child.span_id) for child in sub_trace.local_children(span_id)
        ]
        child_results.sort(key=lambda item: repr(item[0]))
        node: TopoNode = (
            pattern_key[span_id],
            tuple(item[0] for item in child_results),
        )
        order = [span_id]
        for _, child_order in child_results:
            order.extend(child_order)
        return node, order

    entries = [build(s.span_id) for s in sub_trace.entry_spans()]
    entries.sort(key=lambda item: repr(item[0]))
    out: list[str] = []
    for _, order in entries:
        out.extend(order)
    return out


class MintCompressor(Compressor):
    """Commonality + variability compression over a trace corpus."""

    def __init__(
        self,
        mode: str = "full",
        similarity_threshold: float = 0.8,
        alpha: float = 0.5,
        warmup_sample: int = 500,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.similarity_threshold = similarity_threshold
        self.alpha = alpha
        self.warmup_sample = warmup_sample

    @property
    def name(self) -> str:  # type: ignore[override]
        return {"full": "Mint", "no_span": "Mint w/o Sp", "no_trace": "Mint w/o Tp"}[
            self.mode
        ]

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, traces: list[Trace]) -> CompressionResult:
        raw = corpus_raw_bytes(traces)
        if self.mode == "no_span":
            return self._compress_no_span(traces, raw)
        span_parser = SpanParser(
            similarity_threshold=self.similarity_threshold, alpha=self.alpha
        )
        warmup_spans = [
            span for trace in traces[: self.warmup_sample] for span in trace.spans
        ]
        span_parser.warm_up(warmup_spans[: self.warmup_sample * 4])
        if self.mode == "no_trace":
            return self._compress_no_trace(traces, raw, span_parser)
        return self._compress_full(traces, raw, span_parser)

    def _compress_full(
        self, traces: list[Trace], raw: int, span_parser: SpanParser
    ) -> CompressionResult:
        topo_library = TopoPatternLibrary()
        topo_index: dict[str, int] = {}
        records: list[list[Any]] = []
        residual_bytes = 0
        for trace in traces:
            for sub in trace.sub_traces():
                parsed = {s.span_id: span_parser.parse(s) for s in sub}
                pattern = extract_topo_pattern(sub, parsed)
                topo_id = topo_library.register(pattern)
                topo_idx = topo_index.setdefault(topo_id, len(topo_index))
                key_map = {sid: p.pattern_id for sid, p in parsed.items()}
                order = canonical_span_order(sub, key_map)
                local = {s.span_id for s in sub}
                base_time = min(parsed[sid].start_time for sid in order)
                span_ids: list[str] = []
                entry_parents: dict[str, str | None] = {}
                starts: list[float] = []
                values: list[Any] = []
                for index, span_id in enumerate(order):
                    p = parsed[span_id]
                    span_ids.append(span_id)
                    if p.parent_id is None or p.parent_id not in local:
                        entry_parents[str(index)] = p.parent_id
                    # Start times are millisecond deltas from the
                    # sub-trace base — a few digits instead of a full
                    # epoch float per span.
                    starts.append(round(p.start_time - base_time, 3))
                    sp = span_parser.library.get(p.pattern_id)
                    # Values are flattened across spans: the topo pattern
                    # fixes each span's pattern and therefore its
                    # parameter count, so boundaries are implied.
                    values.extend(p.params[key] for key, _, _ in sp.attributes)
                record = [
                    trace.trace_id,
                    sub.node,
                    topo_idx,
                    round(base_time, 6),
                    # Span ids are fixed-width hex; packing them into one
                    # string drops the per-id quoting overhead.
                    "".join(span_ids),
                    entry_parents,
                    starts,
                    values,
                ]
                records.append(record)
                residual_bytes += encoded_size(record)
        dictionary_bytes = span_parser.library.size_bytes() + topo_library.size_bytes()
        topo_by_index = {idx: pid for pid, idx in topo_index.items()}
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=dictionary_bytes + residual_bytes,
            details={
                "span_patterns": len(span_parser.library),
                "topo_patterns": len(topo_library),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": residual_bytes,
                "records": records,
                "span_parser": span_parser,
                "topo_library": topo_library,
                "topo_by_index": topo_by_index,
            },
        )

    def _compress_no_trace(
        self, traces: list[Trace], raw: int, span_parser: SpanParser
    ) -> CompressionResult:
        residual_bytes = 0
        for trace in traces:
            for span in trace.spans:
                parsed = span_parser.parse(span)
                pattern = span_parser.library.get(parsed.pattern_id)
                # Without inter-trace parsing there is no sub-trace
                # grouping: every span is an independent row that must
                # repeat its full topology part, trace id included.
                record = [trace.trace_id] + parsed.compact_record(pattern)
                residual_bytes += encoded_size(record)
        dictionary_bytes = span_parser.library.size_bytes()
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=dictionary_bytes + residual_bytes,
            details={
                "span_patterns": len(span_parser.library),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": residual_bytes,
            },
        )

    def _compress_no_span(self, traces: list[Trace], raw: int) -> CompressionResult:
        topo_library = TopoPatternLibrary()
        # Even without span parsing, identical attribute values are
        # stored once and referenced by id — plain dictionary coding.
        # What this ablation lacks is template extraction: any value
        # with a variable part is a fresh dictionary entry every time.
        value_dict: dict[str, int] = {}
        residual_bytes = 0
        for trace in traces:
            for sub in trace.sub_traces():
                key_map = {
                    s.span_id: f"{s.service}|{s.name}|{s.kind.value}|{s.status.value}"
                    for s in sub
                }
                pattern = _coarse_topo_pattern(sub, key_map)
                topo_id = topo_library.register(pattern)
                order = canonical_span_order(sub, key_map)
                local = {s.span_id for s in sub}
                spans_by_id = {s.span_id: s for s in sub}
                payload: list[Any] = [trace.trace_id, sub.node, topo_id]
                for index, span_id in enumerate(order):
                    span = spans_by_id[span_id]
                    entry_parent = (
                        span.parent_id
                        if (span.parent_id is None or span.parent_id not in local)
                        else None
                    )
                    encoded_attrs: dict[str, Any] = {}
                    for key, value in sorted(span.attributes.items()):
                        if isinstance(value, str):
                            var_id = value_dict.get(value)
                            if var_id is None:
                                var_id = len(value_dict)
                                value_dict[value] = var_id
                            encoded_attrs[key] = var_id
                        else:
                            encoded_attrs[key] = value
                    payload.append(
                        [
                            span_id,
                            entry_parent,
                            round(span.start_time, 6),
                            span.duration,
                            encoded_attrs,
                        ]
                    )
                residual_bytes += encoded_size(payload)
        dictionary_bytes = topo_library.size_bytes() + encoded_size(list(value_dict))
        return CompressionResult(
            compressor=self.name,
            raw_bytes=raw,
            compressed_bytes=dictionary_bytes + residual_bytes,
            details={
                "topo_patterns": len(topo_library),
                "dictionary_bytes": dictionary_bytes,
                "residual_bytes": residual_bytes,
            },
        )

    # ------------------------------------------------------------------
    # Decompression (losslessness check for the full mode)
    # ------------------------------------------------------------------
    @staticmethod
    def decompress_full(result: CompressionResult) -> list[Trace]:
        """Rebuild the corpus from a ``full``-mode result.

        Uses the artifacts kept in ``details``; spans come back with
        their original ids, topology, attributes and durations (start
        times rounded to the stored precision).
        """
        span_parser: SpanParser = result.details["span_parser"]
        topo_library: TopoPatternLibrary = result.details["topo_library"]
        topo_by_index: dict[int, str] = result.details["topo_by_index"]
        spans_by_trace: dict[str, list[Span]] = {}
        for record in result.details["records"]:
            (
                trace_id,
                node,
                topo_idx,
                base_time,
                packed_ids,
                entry_parents,
                starts,
                values,
            ) = record
            pattern = topo_library.get(topo_by_index[topo_idx])
            flat = _preorder_nodes(pattern)
            span_ids = [
                packed_ids[i : i + 16] for i in range(0, len(packed_ids), 16)
            ]
            bucket = spans_by_trace.setdefault(trace_id, [])
            parent_of: dict[int, int] = {}
            cursor = 0
            for root in pattern.roots:
                cursor = _assign_parents(root, None, cursor, parent_of)
            value_cursor = 0
            for index, (pattern_id, _) in enumerate(flat):
                sp = span_parser.library.get(pattern_id)
                n_attrs = len(sp.attributes)
                span_values = values[value_cursor : value_cursor + n_attrs]
                value_cursor += n_attrs
                params = {
                    key: span_values[i]
                    for i, (key, _, _) in enumerate(sp.attributes)
                }
                parent_index = parent_of.get(index)
                if str(index) in entry_parents:
                    parent_id = entry_parents[str(index)]
                elif parent_index is not None:
                    parent_id = span_ids[parent_index]
                else:
                    parent_id = None
                parsed = ParsedSpan(
                    trace_id=trace_id,
                    span_id=span_ids[index],
                    parent_id=parent_id,
                    node=node,
                    start_time=round(base_time + starts[index], 6),
                    pattern_id=pattern_id,
                    params=params,
                )
                bucket.append(reconstruct_exact_span(sp, parsed))
        return [
            Trace(trace_id=tid, spans=sorted(spans, key=lambda s: (s.start_time, s.span_id)))
            for tid, spans in sorted(spans_by_trace.items())
        ]


def _coarse_topo_pattern(sub: SubTrace, key_map: dict[str, str]) -> TopoPattern:
    """Topo pattern over coarse structural keys (w/o S_p ablation)."""

    def build(span_id: str) -> TopoNode:
        children = [build(c.span_id) for c in sub.local_children(span_id)]
        children.sort(key=repr)
        return (key_map[span_id], tuple(children))

    entries = sub.entry_spans()
    roots = tuple(sorted((build(s.span_id) for s in entries), key=repr))
    entry_ops = tuple(sorted({(s.service, s.name) for s in entries}))
    exit_ops = tuple(
        sorted(
            {
                (str(s.attributes.get("peer.service", "")), s.name)
                for s in sub
                if s.kind in (SpanKind.CLIENT, SpanKind.PRODUCER)
            }
        )
    )
    return TopoPattern(roots=roots, entry_ops=entry_ops, exit_ops=exit_ops)


def _preorder_nodes(pattern: TopoPattern) -> list[tuple[str, int]]:
    """(pattern_id, depth) pairs in pre-order across the forest."""
    out: list[tuple[str, int]] = []

    def visit(node: TopoNode, depth: int) -> None:
        out.append((node[0], depth))
        for child in node[1]:
            visit(child, depth + 1)

    for root in pattern.roots:
        visit(root, 0)
    return out


def _assign_parents(
    node: TopoNode, parent_index: int | None, cursor: int, out: dict[int, int]
) -> int:
    """Record each pre-order index's parent index; returns next cursor."""
    index = cursor
    if parent_index is not None:
        out[index] = parent_index
    cursor += 1
    for child in node[1]:
        cursor = _assign_parents(child, index, cursor, out)
    return cursor
