"""The Mint framework — the system under test, behind the common
:class:`~repro.baselines.base.TracingFramework` interface.

(Until PR 5 this class lived in ``repro.baselines.mint_framework``;
it is *compared against* the baselines but is not one of them, so it
now sits at the package root.  The old import path keeps working as a
deprecated re-export.)

Deploys one agent + collector per application node (nodes are
discovered from incoming spans), a backend plane built from a
:class:`~repro.transport.deployment.Deployment` descriptor, and the
descriptor's transport — the in-process
:class:`~repro.transport.transport.LocalTransport`, or the simulated
network plane when ``deployment.network`` is set — charging the
network and storage meters at the wire.  Storage is whatever the
backend's storage engine actually persists — patterns, Bloom filters
and sampled parameters.

There is no sharded subclass: ``MintFramework(deployment=
Deployment.sharded(4))`` runs the identical agent/collector fleet over
four backend shards, with per-shard ledgers charged by the same
transport.  Topology never perturbs parsing or sampling — query
results and byte tables are invariant across deployments by contract.

Queries go through the unified query plane: ``execute`` accepts any
:class:`~repro.query.spec.QuerySpec` (point, batch, predicate) and the
backend plane compiles it into shard-fanout plans with the Bloom
pre-screen pushed down; ``query``/``query_many`` are the point/batch
shorthands.  Every answer is the one
:class:`~repro.query.result.QueryResult` model — exact reconstruction,
approximate trace, or miss.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.samplers import Sampler
from repro.backend.sharded import ShardSummary
from repro.baselines.base import TracingFramework
from repro.model.span import Span
from repro.model.trace import Trace
from repro.obs.trace import NULL_OBSERVER, Observer
from repro.query.cursor import QueryCursor
from repro.query.result import QueryResult
from repro.query.spec import QuerySpec
from repro.sim.meters import OverheadLedger, ShardLedgerRow
from repro.transport import Deployment

SamplerFactory = Callable[[], Sampler]


class MintFramework(TracingFramework):
    """The full Mint deployment as one comparable framework.

    ``deployment`` selects the topology (default: the single reference
    backend).  A sharded deployment additionally keeps one
    :class:`OverheadLedger` per shard, charged by the transport in
    lockstep with the deployment-wide ledger, giving the per-shard
    MB/min panels of the scaling experiments.
    """

    name = "Mint"

    def __init__(
        self,
        config: MintConfig | None = None,
        extra_sampler_factories: list[SamplerFactory] | None = None,
        auto_warmup_traces: int = 100,
        deployment: Deployment | None = None,
    ) -> None:
        super().__init__()
        self.deployment = deployment if deployment is not None else Deployment.single()
        self.config = config or MintConfig()
        self._extra_factories = list(extra_sampler_factories or [])
        self._collectors: dict[str, MintCollector] = {}
        self._now = 0.0
        self._warmed_up = False
        self._auto_warmup_traces = auto_warmup_traces
        self._warmup_queue: list[Trace] = []
        self.shard_ledgers = [
            OverheadLedger() for _ in range(self.deployment.ledger_count)
        ]
        # The self-observability plane: one live registry per framework
        # (benches run reference and candidate side by side — a global
        # registry would cross-contaminate), or the shared null observer
        # when the deployment turns it off.  Observability on vs off is
        # bit-identical on byte tables, meter series and query
        # signatures — the obs bench gates it.
        self.observer: Observer = (
            Observer() if self.deployment.observability else NULL_OBSERVER
        )
        self.backend = self.deployment.build_backend(self.config)
        # The transport is the deployment's only metering point: it
        # claims the backend's notify meter and charges report bytes,
        # control pings and storage growth on every attached ledger.
        # The descriptor picks the wire — in-process LocalTransport, or
        # the simulated network plane when ``deployment.network`` is set.
        self.transport = self.deployment.build_transport(
            backend=self.backend,
            ledger=self.ledger,
            clock=lambda: self._now,
            shard_ledgers=self.shard_ledgers,
        )
        # Wire the observer through every instrumented seam (transport,
        # backend query path, per-engine cold tiers); the parse-stage
        # instruments are cached here so the ingest hot path pays one
        # attribute check per trace when observability is off.
        self.backend.bind_observer(self.observer)
        self.transport.bind_observer(self.observer)
        for engine in self.backend.storage_engines():
            engine.cold.bind_observer(self.observer)
        self._obs_parse_hist = self.observer.stage_histogram("parse")
        self._obs_traces = self.observer.counter("mint_ingest_traces", plane="ingest")
        self._obs_subtraces = self.observer.counter(
            "mint_ingest_subtraces", plane="ingest"
        )
        self._obs_sampled = self.observer.counter(
            "mint_ingest_sampled_traces", plane="ingest"
        )
        # The concurrent ingest plane (deployment.workers > 0) moves the
        # parse/sample hot path onto worker lanes; the framework stays
        # the single writer — every report still crosses self.transport
        # here, in sequential order, at the plane's apply barriers.
        # The live query plane (standing-query subscriptions) is built
        # lazily on the first ``subscribe`` — a framework without
        # analysts pays nothing, and the on_sampled/push_sink seams
        # stay unclaimed for other layers to observe.
        self._live = None
        self._plane = None
        if self.deployment.is_parallel:
            from repro.concurrent.plane import ParallelIngestPlane

            self._plane = ParallelIngestPlane(
                backend=self.backend,
                transport=self.transport,
                config=self.config,
                workers=self.deployment.workers,
                mode=self.deployment.worker_mode,
                ingest_epoch=self.deployment.ingest_epoch,
                set_now=self._set_now,
                sampler_factories=self._extra_factories,
            )
            self._plane.bind_observer(self.observer)
        if self.deployment.is_elastic:
            if self.deployment.reshard_to is not None:
                self.name = (
                    f"Mint-Elastic({self.deployment.num_shards}->"
                    f"{self.deployment.reshard_to})"
                )
            else:
                self.name = f"Mint-Elastic({self.deployment.num_shards})"
            # The failover supervisor stamps outage detection and
            # backoff probes in wire time, so parked reports replay at
            # honest simulated instants on any transport.
            supervisor = getattr(self.backend, "supervisor", None)
            if supervisor is not None:
                supervisor.bind_clock(self.transport.wire_now)
                supervisor.bind_observer(self.observer)
        elif self.deployment.is_sharded:
            self.name = f"Mint-Sharded({self.deployment.num_shards})"
        if self.deployment.is_parallel:
            self.name += (
                f"+{self.deployment.workers}w-{self.deployment.worker_mode}"
            )

    def _set_now(self, now: float) -> None:
        """Clock hook the concurrent plane drives during epoch replay."""
        self._now = now

    # ------------------------------------------------------------------
    # Warm-up (paper Section 3.2.1 offline stage)
    # ------------------------------------------------------------------
    def warm_up(self, traces: Iterable[Trace]) -> None:
        """Run the offline warm-up on sampled raw traces.

        Spans are routed to their node's agent; each agent builds its
        attribute parsers from its local sample.  Warm-up happens before
        any metering — the paper treats it as an offline bootstrap.
        """
        if self._plane is not None:
            self._plane.warm_up(traces)
            self._warmed_up = True
            return
        per_node: dict[str, list[Span]] = {}
        for trace in traces:
            for span in trace.spans:
                per_node.setdefault(span.node, []).append(span)
        for node, spans in per_node.items():
            collector = self._collector_for(node)
            collector.agent.warm_up(spans)
        self._warmed_up = True

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        self._now = now
        if not self._warmed_up:
            self._warmup_queue.append(trace)
            if len(self._warmup_queue) >= self._auto_warmup_traces:
                self._drain_warmup_queue()
            return
        self._process_online(trace, now)

    def _drain_warmup_queue(self) -> None:
        queued = self._warmup_queue
        self._warmup_queue = []
        self.warm_up(queued)
        for trace in queued:
            self._process_online(trace, self._now)

    def _process_online(self, trace: Trace, now: float) -> None:
        if self._plane is not None:
            if self.observer.enabled:
                # Trace/subtrace ingest counts stay parent-side under
                # parallel ingest (lanes never touch the registry); the
                # parse stage itself runs on the lanes and is covered
                # by the plane's epoch-barrier histogram instead.
                self._obs_traces.inc()
                self._obs_subtraces.inc(len({span.node for span in trace.spans}))
            # Notifications and storage syncs run inside the plane's
            # apply barrier, in this exact per-trace schedule.
            self._plane.submit(trace, now)
            return
        observed = self.observer.enabled
        parse_start = perf_counter() if observed else 0.0
        sampled_on: list[str] = []
        subtraces = 0
        for sub_trace in trace.sub_traces():
            subtraces += 1
            collector = self._collector_for(sub_trace.node)
            result = collector.process(sub_trace, now)
            if result.sampled:
                sampled_on.append(sub_trace.node)
        if observed:
            # The parse stage covers parse/intern/sample only — the
            # notification fan-out and storage sync below are metered at
            # their own seams (transport notify counters, storage gauges).
            self._obs_parse_hist.observe(max(0.0, perf_counter() - parse_start))
            self._obs_traces.inc()
            self._obs_subtraces.inc(subtraces)
            if sampled_on:
                self._obs_sampled.inc()
        for node in sampled_on:
            self.backend.notify_sampled(trace.trace_id, origin_node=node)
        self.transport.sync_storage()

    def finalize(self, now: float = 0.0) -> None:
        """Flush warm-up queue, pattern reports, Bloom filters, params.

        A networked transport is then drained to quiescence — pending
        batches flushed, in-flight retries delivered and acked — before
        the final storage sync, so queries after ``finalize`` always
        see the converged store.
        """
        self._now = now
        if not self._warmed_up and self._warmup_queue:
            self._drain_warmup_queue()
        if self._plane is not None:
            self._plane.flush_collectors(now)
        else:
            for collector in self._collectors.values():
                collector.flush(now)
        self.transport.drain()
        # Elastic backends replay their parked redelivery queues here —
        # after the wire quiesced (so replays are not interleaved with
        # in-flight traffic) and before the final storage sync (so the
        # recovered bytes are metered).  A backend without a failover
        # supervisor settles as a no-op.
        self.backend.settle()
        if self._live is not None:
            # The standing-query catch-up sweep runs against the settled
            # store, then its pushes are drained through the wire — so a
            # finalized subscription's hit set equals the post-hoc batch
            # query by construction.
            self._live.settle()
            self.transport.drain()
        self.transport.sync_storage()

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------
    def execute(self, spec: QuerySpec) -> QueryCursor:
        """Run one declarative spec through the backend's planner.

        This overrides the base engine with the real thing: shard-aware
        plans, the OR'd Bloom pre-screen pushed down per batch, and the
        retroactive parameter pull when ``spec.pull_params`` is set.
        """
        self._quiesce()
        return self.backend.execute(spec)

    def query(self, trace_id: str) -> QueryResult:
        """Point lookup: exact reconstruction, approximate trace, or miss.

        Returns the full :class:`QueryResult` — status plus payloads —
        for any deployment topology.
        """
        self._quiesce()
        return self.backend.query(trace_id)

    def query_many(self, trace_ids: Iterable[str]) -> QueryCursor:
        """Batch lookup over one amortised shard-fanout plan."""
        self._quiesce()
        return self.backend.query_many(trace_ids)

    def _quiesce(self) -> None:
        """Apply the concurrent plane's partial epoch before a read.

        Queries mid-run must observe a complete prefix of the ingest
        stream — exactly what the single-threaded loop guarantees — so
        a parallel deployment barriers its lanes first.  A no-op
        everywhere else."""
        if self._plane is not None:
            self._plane.quiesce()

    def query_full(self, trace_id: str) -> QueryResult:
        """Deprecated alias of :meth:`query`, which now returns the
        reconstructed payloads itself (the historical split between a
        status-only ``query`` and a payload ``query_full`` is gone)."""
        return self.query(trace_id)

    def stored_trace_ids(self) -> set[str]:
        self._quiesce()
        return set(self.backend.storage.params)

    # ------------------------------------------------------------------
    # Live query plane (standing-query subscriptions)
    # ------------------------------------------------------------------
    def subscribe(self, spec: QuerySpec, on_push=None):
        """Register ``spec`` as a standing query; returns the
        :class:`~repro.live.subscription.Subscription` handle.

        New sampled traces matching the spec stream to the handle as
        push notifications — over the simulated wire (dedicated
        ``push::`` links, the separate ``push`` meter) on a networked
        deployment, synchronously in-process otherwise.  The handle's
        accumulated hit set after :meth:`finalize` is bit-identical to
        running the same spec through :meth:`execute`.
        """
        return self._live_plane().subscribe(spec, on_push=on_push)

    def unsubscribe(self, sub) -> None:
        """Deactivate one standing query (handle or subscription id)."""
        self._live_plane().unsubscribe(sub)

    def _live_plane(self):
        """The lazily built live query plane (one per framework)."""
        if self._live is None:
            from repro.live.plane import LiveQueryPlane

            d = self.deployment
            # Time-window specs may only commit mid-stream when nothing
            # can still be in flight at evaluation time: reports queued
            # on a latent wire, parked by shard chaos, or buffered in
            # worker lanes could all move a trace's reconstructed
            # envelope after an eager push — and pushes are
            # irrevocable.  Everything else streams on any topology.
            eager_time_range = (
                d.workers == 0
                and d.shard_chaos is None
                and (d.network is None or d.network.is_instantaneous)
            )
            self._live = LiveQueryPlane(
                self.backend,
                self.transport,
                observer=self.observer,
                eager_time_range=eager_time_range,
            )
        return self._live

    def live_stats(self) -> dict | None:
        """The live plane's counters, or None before any ``subscribe``."""
        return self._live.stats() if self._live is not None else None

    @property
    def push_bytes(self) -> int:
        """Standing-query push traffic, confined to the ``push`` meter.

        Streaming matches to analysts is real network work, but it
        must never perturb the fig02/fig11 byte tables — the same
        separation discipline as :attr:`retransmit_bytes` and
        :attr:`migration_bytes`.  Always 0 without subscriptions.
        """
        return self.transport.push.total_bytes

    # ------------------------------------------------------------------
    # Concurrent-plane surface (parallel deployments only)
    # ------------------------------------------------------------------
    def pattern_snapshot(self):
        """The published read-only pattern-plane snapshot, or None.

        Parallel deployments publish an immutable
        :class:`~repro.concurrent.snapshot.PatternPlaneSnapshot` after
        every apply barrier; readers on any thread may hold it without
        locking.  None on single-threaded deployments (read the backend
        store directly there)."""
        if self._plane is None:
            return None
        return self._plane.pattern_snapshot()

    def close(self) -> None:
        """Release run resources (worker lanes); idempotent.

        Single-threaded deployments hold nothing, so this is a no-op
        there; parallel ones stop their lanes.  Harnesses that build
        many frameworks in a loop must call this (or results stay
        correct but threads/processes linger until GC)."""
        if self._plane is not None:
            self._plane.shutdown()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _collector_for(self, node: str) -> MintCollector:
        collector = self._collectors.get(node)
        if collector is not None:
            return collector
        agent = MintAgent(
            node=node,
            config=self.config,
            extra_samplers=[factory() for factory in self._extra_factories],
        )
        collector = MintCollector(
            agent=agent,
            transport=self.transport,
            config=self.config,
        )
        self._collectors[node] = collector
        self.backend.register_collector(collector)
        return collector

    # ------------------------------------------------------------------
    # Network-plane panels (zero / None for the in-process wire)
    # ------------------------------------------------------------------
    @property
    def retransmit_bytes(self) -> int:
        """Redundant wire bytes (retransmissions + chaos duplicates).

        Charged on the network plane's separate retransmit meter, never
        on the network meter — the fig02/fig11 byte tables are loss-
        invariant by construction.  Always 0 on ``LocalTransport``.
        """
        meter = self.transport.retransmit
        return meter.total_bytes if meter is not None else 0

    @property
    def migration_bytes(self) -> int:
        """Reshard traffic, confined to the wire's migration meter.

        Moving a host's stored state between shards is real network
        work, but it must never perturb the fig02/fig11 byte tables —
        the same separation discipline as :attr:`retransmit_bytes`.
        Always 0 until a reshard runs.
        """
        return self.transport.migration.total_bytes

    def net_stats(self) -> dict | None:
        """The network plane's delivery metrics, when one is deployed."""
        return self.transport.stats_summary()

    # ------------------------------------------------------------------
    # Observability plane
    # ------------------------------------------------------------------
    def obs_report(self, deterministic: bool = False) -> dict:
        """One structured snapshot of every plane's panels.

        Unifies the ad-hoc stats surfaces — ledger totals,
        ``net_stats()``, ``elastic_stats()``, ``cold_stats()``, the
        query plane's cumulative :class:`~repro.query.planner.PlanStats`
        and per-shard rows — with the live metrics registry under one
        schema.  ``deterministic=True`` strips wall-clock durations
        (machine noise) but keeps their counts, yielding a snapshot
        that is bit-identical across two identical seeded runs.
        """
        from repro.obs.report import build_report

        return build_report(self, deterministic=deterministic)

    def obs_prometheus(self) -> str:
        """The registry as Prometheus-style text exposition (empty when
        the deployment disabled observability)."""
        from repro.obs.export import render_prometheus

        if not self.observer.enabled:
            return ""
        return render_prometheus(self.observer.registry)

    def obs_json(self, deterministic: bool = False, indent: int | None = 2) -> str:
        """The :meth:`obs_report` snapshot as canonical JSON."""
        from repro.obs.export import report_to_json

        return report_to_json(
            self.obs_report(deterministic=deterministic), indent=indent
        )

    # ------------------------------------------------------------------
    # Cold tier (tiered storage)
    # ------------------------------------------------------------------
    def compact(self, policy=None, now: float | None = None):
        """Seal cold storage segments into compressed blocks.

        Runs one :func:`~repro.cold.compactor.compact_engine` pass per
        backend engine (per shard when sharded) under ``policy``
        (default :class:`~repro.cold.ColdPolicy`), then syncs storage
        so the physical meter sees the new split.  Safe at any point of
        a run: queries read through seal boundaries and the logical
        byte tables never move.  Returns the per-engine
        :class:`~repro.cold.CompactionStats`.
        """
        if now is None:
            now = self._now
        self._quiesce()
        stats = self.backend.compact_cold(policy, now=now)
        self.transport.sync_storage()
        return stats

    @property
    def physical_storage_bytes(self) -> int:
        """The physical side of the storage split: hot bytes at their
        charged size plus sealed blocks at their compressed size.
        Equals the logical ``storage_bytes`` until a compaction runs."""
        return self.backend.physical_storage_bytes()

    def cold_stats(self) -> dict:
        """Cold-tier counters (codec, blocks, sealed/physical bytes)."""
        self._quiesce()
        return self.backend.cold_stats()

    # ------------------------------------------------------------------
    # Elastic operations (elastic deployments only)
    # ------------------------------------------------------------------
    def reshard(self, to_shards: int | None = None):
        """Run one live reshard to ``to_shards`` (default: the
        deployment descriptor's ``reshard_to`` target) and return its
        :class:`~repro.elastic.reshard.MigrationStats`.

        The uninterleaved convenience: harnesses that migrate host by
        host between ingest batches drive a
        :class:`~repro.elastic.reshard.ReshardCoordinator` directly.
        """
        from repro.elastic.reshard import ReshardCoordinator

        target = to_shards if to_shards is not None else self.deployment.reshard_to
        if target is None:
            raise ValueError(
                "no reshard target: pass to_shards or build the framework "
                "from Deployment.resharded(from_n, to_n)"
            )
        coordinator = ReshardCoordinator(self.backend, self.transport, target)
        return coordinator.run()

    def elastic_stats(self) -> dict | None:
        """Failover-supervisor counters, when the deployment has one."""
        supervisor = getattr(self.backend, "supervisor", None)
        if supervisor is None:
            return None
        return supervisor.stats.as_dict()

    # ------------------------------------------------------------------
    # Per-shard panels (empty for the single deployment)
    # ------------------------------------------------------------------
    def shard_summaries(self) -> list[ShardSummary]:
        """Per-shard storage tables from the backend."""
        if not self.deployment.is_sharded:
            return []
        self._quiesce()
        return self.backend.shard_summaries()

    def shard_meter_rows(self) -> list[ShardLedgerRow]:
        """Per-shard network/storage totals (physical, not deduplicated).

        Summed shard storage can exceed the deployment ledger's figure:
        the gap is exactly the merge layer's replicated pattern bytes
        (``backend.merged.replicated_pattern_bytes()``).
        """
        return [
            ShardLedgerRow(
                shard=i,
                network_bytes=ledger.network.total_bytes,
                storage_bytes=ledger.storage.total_bytes,
            )
            for i, ledger in enumerate(self.shard_ledgers)
        ]
