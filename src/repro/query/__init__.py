"""The unified query plane (paper Section 4.3, Figs. 3 and 12).

One declarative surface for every after-the-fact trace query, shared by
the Mint framework and all baselines:

* :class:`QuerySpec` — a frozen description of *what* to fetch: a point
  lookup, a batch of trace ids, or a predicate query (service,
  operation, error status, time window, topo-pattern id), plus options
  (retroactive parameter pull, result limit);
* :class:`QueryPlanner` — compiles a spec into per-shard plans that
  push the OR'd Bloom negative pre-screen and the predicate filters
  down to each shard, amortising the per-shard filter scans across a
  whole batch;
* :class:`QueryCursor` — a streaming iterator of typed results, so a
  batch over thousands of ids never materialises the full result set;
* :class:`QueryResult` / :class:`QueryStatus` — the one result model:
  ``exact`` (full reconstruction), ``partial`` (approximate trace) or
  ``miss``, replacing both the backend's stringly status and the
  baselines' parallel ``FrameworkQueryResult`` wrapper;
* :class:`QueryEngine` — the protocol every framework implements
  (``execute`` / ``query`` / ``query_many``).

Correctness contract (the bit-identity gate,
``benchmarks/perf/run_query_bench.py --check``): a point lookup
compiled through the planner returns exactly the reference
:class:`~repro.backend.querier.Querier` answer — same status, same
reconstructed spans, same approximate segments — for every deployment
topology, and batch execution is pure amortisation: it may skip probes
the pre-screen proves fruitless, never change an answer.
"""

from repro.query.cursor import QueryCursor
from repro.query.engine import QueryEngine
from repro.query.planner import PlanStats, QueryPlanner
from repro.query.result import (
    ApproximateSegment,
    ApproximateTrace,
    QueryResult,
    QueryStatus,
)
from repro.query.spec import QuerySpec, matches_result

__all__ = [
    "ApproximateSegment",
    "ApproximateTrace",
    "PlanStats",
    "QueryCursor",
    "QueryEngine",
    "QueryPlanner",
    "QueryResult",
    "QuerySpec",
    "QueryStatus",
    "matches_result",
]
