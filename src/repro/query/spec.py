"""Declarative query specifications.

A :class:`QuerySpec` is a frozen value describing *what* to fetch —
never *how*: compilation into per-shard probe plans is the
:class:`~repro.query.planner.QueryPlanner`'s job, and every engine
(Mint's backend plane, each baseline) accepts the same spec grammar.

Spec grammar
------------

* **Targets** — ``trace_ids`` names the traces to fetch.  With no
  predicates it is a point/batch lookup: one result per id, in request
  order, misses included (the Fig. 12 contract — the analyst asked
  about *that* id and deserves an answer either way).  With
  predicates, ``trace_ids`` is the *candidate universe* and only
  matching hits are yielded.
* **Predicates** — ``service`` / ``operation`` / ``error_only`` are
  span-level and conjunctive: a trace matches when some single span
  satisfies all three (the "error traces *of* service X" reading,
  which is the one RCA wants).  ``time_range`` is trace-level and
  tests the reconstructed envelope's start; approximate traces store
  no timestamps at rest, so the window never excludes them — a
  false miss would break Mint's headline no-miss property, a false
  hit only costs the analyst a glance.  ``topo_pattern_id`` matches
  on pattern evidence: an approximate segment of that pattern, or
  (on pattern-based engines) confirmed Bloom membership.
* **Candidate universe** — pattern-based stores cannot enumerate
  trace ids (Bloom filters only answer membership — that is the
  paper's whole storage bargain), so a predicate spec with empty
  ``trace_ids`` is evaluated over the engine's *enumerable* stored
  population (exact-capable ids).  Analysts with a request log —
  the paper's after-the-fact setting — should build the spec from it:
  see :func:`repro.workloads.queries.incident_window_spec`.
* **Options** — ``pull_params`` requests the retroactive parameter
  pull on partial hits (paper Fig. 9); ``limit`` caps *yielded*
  results and lets the streaming cursor stop early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.model.span import SpanStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.result import QueryResult


@dataclass(frozen=True)
class QuerySpec:
    """One declarative trace query (see module docstring for grammar)."""

    trace_ids: tuple[str, ...] = ()
    service: str | None = None
    operation: str | None = None
    error_only: bool = False
    time_range: tuple[float, float] | None = None
    topo_pattern_id: str | None = None
    pull_params: bool = False
    limit: int | None = None

    def __post_init__(self) -> None:
        # Accept any iterable of ids; store the canonical tuple.  A bare
        # string would silently iterate into per-character "ids" (and
        # query as that many misses) — reject it loudly instead.
        if isinstance(self.trace_ids, str):
            raise TypeError(
                "trace_ids must be an iterable of trace ids, not a single "
                "string — use QuerySpec.point(trace_id) for one lookup"
            )
        if not isinstance(self.trace_ids, tuple):
            object.__setattr__(self, "trace_ids", tuple(self.trace_ids))
        if self.limit is not None and self.limit <= 0:
            raise ValueError(f"limit must be positive, got {self.limit}")
        if self.time_range is not None:
            start, end = self.time_range
            if end < start:
                raise ValueError(f"time_range end {end} precedes start {start}")
            object.__setattr__(self, "time_range", (float(start), float(end)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, trace_id: str, pull_params: bool = False) -> "QuerySpec":
        """A single-id lookup — the historical ``query(trace_id)``."""
        return cls(trace_ids=(trace_id,), pull_params=pull_params)

    @classmethod
    def batch(
        cls,
        trace_ids: Iterable[str],
        pull_params: bool = False,
        limit: int | None = None,
    ) -> "QuerySpec":
        """A batch lookup: one result per id, request order, misses kept."""
        return cls(trace_ids=trace_ids, pull_params=pull_params, limit=limit)

    @classmethod
    def where(
        cls,
        candidates: Iterable[str] = (),
        service: str | None = None,
        operation: str | None = None,
        error_only: bool = False,
        time_range: tuple[float, float] | None = None,
        topo_pattern_id: str | None = None,
        pull_params: bool = False,
        limit: int | None = None,
    ) -> "QuerySpec":
        """A predicate query over ``candidates`` (or the engine's
        enumerable stored population when empty)."""
        return cls(
            trace_ids=candidates,
            service=service,
            operation=operation,
            error_only=error_only,
            time_range=time_range,
            topo_pattern_id=topo_pattern_id,
            pull_params=pull_params,
            limit=limit,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_predicates(self) -> bool:
        """True when results are filtered (vs a pure point/batch fetch)."""
        return (
            self.service is not None
            or self.operation is not None
            or self.error_only
            or self.time_range is not None
            or self.topo_pattern_id is not None
        )

    def describe(self) -> str:
        """Human-readable one-liner (benchmark tables, logs)."""
        parts = [f"ids={len(self.trace_ids)}"]
        for name in ("service", "operation", "topo_pattern_id"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.error_only:
            parts.append("error_only")
        if self.time_range is not None:
            parts.append(f"t=[{self.time_range[0]:g},{self.time_range[1]:g})")
        if self.pull_params:
            parts.append("pull_params")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return "QuerySpec(" + ", ".join(parts) + ")"


def _span_facts(result: "QueryResult") -> Iterable[tuple[str, str, bool]]:
    """(service, operation, is_error) per available span, either kind."""
    if result.trace is not None:
        for span in result.trace.spans:
            yield span.service, span.name, span.status is SpanStatus.ERROR
    elif result.approximate is not None:
        for segment in result.approximate.segments:
            for view in segment.spans:
                yield view["service"], view["name"], view.get("status") == "error"


def matches_result(
    spec: QuerySpec,
    result: "QueryResult",
    pattern_member: Callable[[str, str], bool] | None = None,
) -> bool:
    """Evaluate the spec's predicates against a reconstructed result.

    ``pattern_member(trace_id, topo_pattern_id)`` is the engine's
    confirmed Bloom-membership test, used to evaluate
    ``topo_pattern_id`` on exact results (whose spans carry no pattern
    ids); engines without pattern storage pass None and exact results
    can then only match through approximate segment evidence.
    Misses never match a predicate spec.
    """
    if not result.is_hit:
        return False
    if spec.service is not None or spec.operation is not None or spec.error_only:
        for service, operation, is_error in _span_facts(result):
            if spec.service is not None and service != spec.service:
                continue
            if spec.operation is not None and operation != spec.operation:
                continue
            if spec.error_only and not is_error:
                continue
            break
        else:
            return False
    if spec.time_range is not None and result.trace is not None:
        # Approximate traces store no timestamps — the window can only
        # exclude exact reconstructions (see module docstring).
        start, end = spec.time_range
        if result.trace.spans:
            first = min(span.start_time for span in result.trace.spans)
            if not start <= first < end:
                return False
    if spec.topo_pattern_id is not None:
        if result.approximate is not None:
            return any(
                segment.topo_pattern_id == spec.topo_pattern_id
                for segment in result.approximate.segments
            )
        if pattern_member is not None:
            return pattern_member(result.trace_id, spec.topo_pattern_id)
        return False
    return True


__all__ = ["QuerySpec", "matches_result"]
