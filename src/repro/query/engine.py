"""The engine protocol every queryable framework implements.

``execute`` is the one entry point — point lookups and ``query_many``
are sugar over specs — so harnesses, benches and the explorer can be
written once against :class:`QueryEngine` and run unchanged over Mint
(any deployment topology) and every baseline.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.query.cursor import QueryCursor
from repro.query.result import QueryResult
from repro.query.spec import QuerySpec


@runtime_checkable
class QueryEngine(Protocol):
    """Anything that answers :class:`QuerySpec` queries."""

    def execute(self, spec: QuerySpec) -> QueryCursor:
        """Compile and run one spec, returning a streaming cursor."""
        ...  # pragma: no cover - protocol

    def query(self, trace_id: str) -> QueryResult:
        """Point lookup: the single result for one trace id."""
        ...  # pragma: no cover - protocol

    def query_many(self, trace_ids: Iterable[str]) -> QueryCursor:
        """Batch lookup: one result per id, request order, misses kept."""
        ...  # pragma: no cover - protocol
