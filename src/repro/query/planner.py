"""Spec compilation: batched shard-fanout plans with Bloom pushdown.

The planner turns a :class:`~repro.query.spec.QuerySpec` into an
executable plan over a StorageEngine-shaped store (the single engine,
or the sharded deployment's merged view).  Two pushdowns happen here:

* **Bloom negative pre-screen.**  When the store exposes the merged
  OR'd accumulators (``prescreen_candidates`` — the sharded merge
  layer), each trace id is screened once against the per-pattern
  accumulators; patterns the pre-screen rules out are never probed on
  any shard.  A miss in an OR'd accumulator proves a miss in every
  constituent filter, so pruning can only skip fruitless probes —
  answers are bit-identical to probing everything (the PR 2 contract,
  re-used here as a *batch* pushdown).
* **Amortised per-shard scans.**  A batch builds one per-pattern index
  over every shard's stored filters (one pass over ``storage.blooms``),
  so each of the batch's ids touches only its candidate patterns'
  filters instead of rescanning the whole filter list per query — the
  reason ``query_many`` beats looped point lookups.  Point lookups
  skip the index build and read the live store exactly like the
  reference querier always has.

Reconstruction itself is *not* re-implemented: the plan points the
reference :class:`~repro.backend.querier.Querier` at a view whose only
override is the amortised/pushed-down ``patterns_matching_trace``.
Same code, same answers — bit-identity by construction, which is what
``run_query_bench.py --check`` pins across deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.query.result import QueryResult, QueryStatus
from repro.query.spec import QuerySpec, matches_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.storage import StoredBloom


@dataclass
class PlanStats:
    """Execution counters of one plan (live while the cursor drains).

    ``filters_probed`` / ``filters_pruned`` partition the stored-filter
    probes a naive per-id scan would make: probed ones actually tested
    membership, pruned ones were skipped because the Bloom pre-screen
    (or the batch index) proved them fruitless.  Nonzero pruning on
    sharded runs is asserted by the query bench gate.
    """

    candidates: int = 0
    yielded: int = 0
    filters_probed: int = 0
    filters_pruned: int = 0
    predicate_rejected: int = 0
    params_pulled: int = 0
    cache_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "candidates": self.candidates,
            "yielded": self.yielded,
            "filters_probed": self.filters_probed,
            "filters_pruned": self.filters_pruned,
            "predicate_rejected": self.predicate_rejected,
            "params_pulled": self.params_pulled,
            "cache_hits": self.cache_hits,
        }


class _PlannedView:
    """A storage view with the batch's filter index pushed underneath.

    Everything except ``patterns_matching_trace`` delegates to the
    wrapped store (params reads stay live), so the reference querier
    runs unchanged on top.  Filter membership is answered from the
    per-pattern index snapshot taken at plan time — queries execute
    against a settled store (after ``finalize``), matching the
    semantics of the historical one-shot lookups.
    """

    def __init__(self, storage: Any, stats: PlanStats) -> None:
        self._storage = storage
        self.stats = stats
        index: dict[str, list["StoredBloom"]] = {}
        for stored in storage.blooms:
            index.setdefault(stored.topo_pattern_id, []).append(stored)
        self._index = index
        self._total_filters = sum(len(group) for group in index.values())
        # The sharded merge layer's OR'd accumulators; None on a single
        # engine, whose semantics are probe-everything.
        self._prescreen = getattr(storage, "prescreen_candidates", None)

    def patterns_matching_trace(self, trace_id: str) -> list["StoredBloom"]:
        if self._prescreen is not None:
            candidates = self._prescreen(trace_id)
        else:
            candidates = self._index.keys()
        matched: list["StoredBloom"] = []
        probed = 0
        for pattern_id in candidates:
            for stored in self._index.get(pattern_id, ()):
                probed += 1
                if trace_id in stored.filter:
                    matched.append(stored)
        self.stats.filters_probed += probed
        self.stats.filters_pruned += self._total_filters - probed
        return matched

    def pattern_member(self, trace_id: str, pattern_id: str) -> bool:
        """Confirmed membership of a trace in one topo pattern."""
        group = self._index.get(pattern_id, ())
        self.stats.filters_probed += len(group)
        return any(trace_id in stored.filter for stored in group)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._storage, name)


@dataclass
class QueryPlan:
    """A compiled spec: candidate ids + the querier to run them through.

    ``upgrade`` is the engine's retroactive-pull hook (the backend
    plane claims it when ``spec.pull_params`` is set): it runs on each
    partial reconstruction *before* predicate evaluation, so predicates
    judge the best answer the fleet can produce, not the stale pre-pull
    one — exactly what a looped ``query(pull_params=True)`` per id
    would have judged.
    """

    spec: QuerySpec
    querier: Any  # reference Querier over the (possibly planned) view
    stats: PlanStats
    view: _PlannedView | None = None
    upgrade: Callable[[QueryResult], QueryResult] | None = None

    def candidate_ids(self) -> tuple[str, ...]:
        """The id universe this plan sweeps.

        Explicit targets win; a predicate spec without them falls back
        to the store's enumerable population (exact-capable ids) — a
        pattern-based store cannot enumerate what it only holds Bloom
        evidence for (see the spec grammar).
        """
        if self.spec.trace_ids:
            return self.spec.trace_ids
        if self.spec.has_predicates:
            return tuple(sorted(self.querier.storage.params))
        return ()

    def _pattern_member(self, trace_id: str, pattern_id: str) -> bool:
        # Only reachable during predicate evaluation, and the planner
        # always builds an indexed view for predicate specs.
        assert self.view is not None
        return self.view.pattern_member(trace_id, pattern_id)

    def results(self) -> Iterator[QueryResult]:
        """Lazily execute the plan (one reconstruction per ``next()``).

        Analyst query streams draw ids with replacement (the Fig. 12
        model keeps returning to the incident's traces), so a batch
        memoises per trace id: a repeated id re-yields the first
        reconstruction — the *same* result object, not a fresh copy,
        so cursor results are to be treated as read-only (every
        consumer in this repo folds or renders them) — instead of
        rebuilding it span by span.  The cache is per-plan — it can
        never serve stale answers across batches — and is disabled
        when ``pull_params`` is set, because a pull upgrades storage
        mid-batch and a repeat must then see the upgraded answer,
        exactly as looped lookups would.
        """
        spec = self.spec
        memo: dict[str, QueryResult] | None = None
        if self.view is not None and not spec.pull_params:
            memo = {}
        for trace_id in self.candidate_ids():
            if spec.limit is not None and self.stats.yielded >= spec.limit:
                return
            self.stats.candidates += 1
            if memo is not None and trace_id in memo:
                self.stats.cache_hits += 1
                result = memo[trace_id]
            else:
                result = self.querier.query(trace_id)
                if (
                    self.upgrade is not None
                    and result.status is QueryStatus.PARTIAL
                ):
                    result = self.upgrade(result)
                if memo is not None:
                    memo[trace_id] = result
            if spec.has_predicates and not matches_result(
                spec, result, self._pattern_member
            ):
                if result.status is not QueryStatus.MISS:
                    self.stats.predicate_rejected += 1
                continue
            self.stats.yielded += 1
            yield result


class QueryPlanner:
    """Compiles :class:`QuerySpec` values against one storage view."""

    def __init__(self, storage: Any) -> None:
        self.storage = storage

    def plan(self, spec: QuerySpec) -> QueryPlan:
        """Compile one spec.

        Batches and predicate sweeps pay one index build and amortise
        it across every candidate; a bare point lookup runs against the
        live store with zero setup, exactly like the historical
        ``Querier.query`` path.
        """
        from repro.backend.querier import Querier

        stats = PlanStats()
        batched = len(spec.trace_ids) > 1 or spec.has_predicates
        if batched:
            view = _PlannedView(self.storage, stats)
            return QueryPlan(spec, Querier(view), stats, view=view)
        return QueryPlan(spec, Querier(self.storage), stats)
