"""Streaming result cursors.

``query_many`` over thousands of ids must never materialise the full
result set: exact hits carry whole reconstructed traces, and the
Fig. 12 workloads sweep entire days of traffic.  A
:class:`QueryCursor` wraps the planner's lazily-evaluated result
stream — each ``next()`` reconstructs exactly one trace — while
exposing the plan's pushdown statistics and small folding helpers for
the common "count the statuses" consumers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.query.result import QueryResult, QueryStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.planner import PlanStats
    from repro.query.spec import QuerySpec


class QueryCursor:
    """A lazy iterator of :class:`QueryResult` for one executed spec.

    Results are produced on demand, in the spec's candidate order.
    ``stats`` is live: it reflects the probes and prunes of the results
    yielded *so far*, and is final once the cursor is exhausted.
    """

    def __init__(
        self,
        spec: "QuerySpec",
        results: Iterator[QueryResult],
        stats: "PlanStats",
    ) -> None:
        self.spec = spec
        self.stats = stats
        self._results = iter(results)

    def __iter__(self) -> Iterator[QueryResult]:
        return self

    def __next__(self) -> QueryResult:
        return next(self._results)

    # ------------------------------------------------------------------
    # Folding helpers
    # ------------------------------------------------------------------
    def all(self) -> list[QueryResult]:
        """Drain the cursor into a list (small batches / tests only)."""
        return list(self._results)

    def one(self) -> QueryResult:
        """The single result of a point lookup.

        Raises ``LookupError`` when the cursor yields nothing (a
        predicate spec whose candidate matched nothing) — point/batch
        specs always yield one result per requested id, misses
        included, so the historical ``query(trace_id)`` can never trip
        this.
        """
        for result in self._results:
            return result
        raise LookupError(f"{self.spec.describe()} produced no result")

    def statuses(self) -> dict[QueryStatus, int]:
        """Drain and fold into Fig. 12-style status counts."""
        counts = {status: 0 for status in QueryStatus}
        for result in self._results:
            counts[result.status] += 1
        return counts
