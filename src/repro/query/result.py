"""The one result model of the query plane.

Every framework answers every query with a :class:`QueryResult` whose
``status`` is a :class:`QueryStatus` — the hit classification of the
paper's Fig. 12 experiment (``exact`` / ``partial`` / ``miss``).  The
enum is a ``str`` subclass, so all historical call sites keep working:
``result.status == "exact"`` is true, it hashes like the plain string
(Fig. 12-style ``hits`` dicts keyed by ``"exact"`` are unchanged), and
it renders as the bare value in tables and JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.model.trace import Trace


class QueryStatus(str, enum.Enum):
    """Outcome class of one trace query.

    ``EXACT`` — the trace's variable parameters were stored and the
    original spans reconstruct in full; ``PARTIAL`` — only the
    pattern-level approximate trace is available; ``MISS`` — no record
    at all ('1 or 0' baselines know only ``EXACT`` and ``MISS``).
    """

    EXACT = "exact"
    PARTIAL = "partial"
    MISS = "miss"

    # Render as the bare value everywhere (str(), format, f-strings,
    # json) so the fig12/fig03 result tables are byte-identical to the
    # stringly era — and identical across Python 3.10..3.12, which
    # changed Enum's default __str__/__format__ between versions.
    __str__ = str.__str__
    __format__ = str.__format__

    @property
    def is_hit(self) -> bool:
        """Exact or partial — the trace answers at least approximately."""
        return self is not QueryStatus.MISS


@dataclass
class ApproximateSegment:
    """One sub-trace rendered from its topo pattern (variables masked)."""

    topo_pattern_id: str
    nodes_reporting: list[str]
    spans: list[dict[str, Any]] = field(default_factory=list)
    entry_ops: list[tuple[str, str]] = field(default_factory=list)
    exit_ops: list[tuple[str, str]] = field(default_factory=list)

    @property
    def span_count(self) -> int:
        """Spans in this segment."""
        return len(self.spans)


@dataclass
class ApproximateTrace:
    """The masked, pattern-level view of an unsampled trace."""

    trace_id: str
    segments: list[ApproximateSegment] = field(default_factory=list)

    @property
    def span_count(self) -> int:
        """Total spans across all segments."""
        return sum(seg.span_count for seg in self.segments)

    @property
    def services(self) -> set[str]:
        """Services on the (approximate) execution path."""
        return {span["service"] for seg in self.segments for span in seg.spans}


@dataclass
class QueryResult:
    """Outcome of one trace query — the model every framework shares.

    ``trace`` carries the reconstructed (or natively stored) spans of
    an exact hit; ``approximate`` the pattern-level view of a partial
    hit.  '1 or 0' frameworks attach the stored trace and never produce
    ``PARTIAL``; Mint produces all three statuses.  A plain string
    status is coerced to :class:`QueryStatus` on construction, so
    legacy constructors keep working unchanged.
    """

    trace_id: str
    status: QueryStatus
    trace: Trace | None = None
    approximate: ApproximateTrace | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.status, QueryStatus):
            self.status = QueryStatus(self.status)

    @property
    def is_hit(self) -> bool:
        """True for exact or partial hits."""
        return self.status.is_hit

    @property
    def is_exact(self) -> bool:
        """Full-fidelity hit."""
        return self.status is QueryStatus.EXACT

    @property
    def is_miss(self) -> bool:
        """No record at all."""
        return self.status is QueryStatus.MISS

    @property
    def span_count(self) -> int:
        """Spans available from this result (0 for a miss)."""
        if self.trace is not None:
            return len(self.trace.spans)
        if self.approximate is not None:
            return self.approximate.span_count
        return 0
