"""Hindsight-style retroactive sampling (Zhang et al., NSDI '23).

Hindsight buffers full trace data in lock-free agent-local memory and
ships only tiny *breadcrumbs* (which nodes hold data for which trace)
to a coordinator.  When a *trigger* fires — an edge case such as an
error — the coordinator retrieves the buffered data for that trace from
all nodes, retroactively sampling it.

Cost model reproduced here (matching the paper's Fig. 11 analysis):
breadcrumbs cross the network for every trace (slightly more than head
sampling's nothing), full data crosses only for triggered traces, and
agent buffers are bounded, so data older than the buffer horizon is
lost even if triggered late.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.baselines.base import TracingFramework
from repro.baselines.otel import is_abnormal_trace, stored_trace_result
from repro.model.encoding import encoded_size
from repro.model.trace import Trace
from repro.query.result import QueryResult

# One breadcrumb per (trace, node) pair: trace id + node id + flags.
BREADCRUMB_BYTES = 40


class Hindsight(TracingFramework):
    """Retroactive sampler with breadcrumb + buffer cost accounting."""

    name = "Hindsight"

    def __init__(
        self,
        trigger: Callable[[Trace], bool] | None = None,
        buffer_bytes_per_node: int = 64 * 1024 * 1024,
    ) -> None:
        super().__init__()
        self.trigger = trigger or is_abnormal_trace
        self.buffer_bytes_per_node = buffer_bytes_per_node
        # Per-node FIFO buffers: node -> OrderedDict[trace_id, bytes].
        self._buffers: dict[str, OrderedDict[str, int]] = {}
        self._buffer_used: dict[str, int] = {}
        self._stored: dict[str, Trace] = {}

    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        sub_traces = trace.sub_traces()
        # Breadcrumbs for every sub-trace of every trace.
        self.ledger.network.record(BREADCRUMB_BYTES * len(sub_traces), now)
        for sub in sub_traces:
            size = sum(encoded_size(span) for span in sub.spans)
            self._buffer_put(sub.node, trace.trace_id, size)
        if self.trigger(trace):
            self._retrieve(trace, now)

    def _buffer_put(self, node: str, trace_id: str, size: int) -> None:
        buf = self._buffers.setdefault(node, OrderedDict())
        used = self._buffer_used.get(node, 0)
        buf[trace_id] = buf.get(trace_id, 0) + size
        used += size
        while used > self.buffer_bytes_per_node and buf:
            _, evicted = buf.popitem(last=False)
            used -= evicted
        self._buffer_used[node] = used

    def _retrieve(self, trace: Trace, now: float) -> None:
        retrieved = 0
        for node, buf in self._buffers.items():
            size = buf.pop(trace.trace_id, 0)
            if size:
                self._buffer_used[node] -= size
                retrieved += size
        if retrieved:
            self.ledger.network.record(retrieved, now)
            self.ledger.storage.record(retrieved, now)
            self._stored[trace.trace_id] = trace

    def query(self, trace_id: str) -> QueryResult:
        return stored_trace_result(trace_id, self._stored)

    def stored_trace_ids(self) -> set[str]:
        return set(self._stored)
