"""Common interface and accounting for all tracing frameworks.

The evaluation charges every framework through the same two meters:

* **network** — bytes crossing from application nodes to the tracing
  backend (trace data, breadcrumbs, Bloom filters, control messages);
* **storage** — bytes the backend persists.

A framework receives complete traces (the generator plays the role of
instrumented applications) and decides what to ship and keep.  Every
framework is also a :class:`~repro.query.engine.QueryEngine`: it
answers the unified :class:`~repro.query.result.QueryResult` for point
lookups and accepts declarative :class:`~repro.query.spec.QuerySpec`
queries through ``execute`` — one query surface, one result model,
whether the store underneath is '1 or 0' traces or Mint's
pattern + parameter split.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.model.trace import Trace
from repro.query.cursor import QueryCursor
from repro.query.planner import PlanStats
from repro.query.result import QueryResult, QueryStatus
from repro.query.spec import QuerySpec, matches_result
from repro.sim.meters import OverheadLedger

# The baselines' parallel result wrapper is absorbed by the unified
# model: one class, one status enum, for the framework and every
# baseline alike.  The old name remains importable.
FrameworkQueryResult = QueryResult


class TracingFramework(abc.ABC):
    """Base class: meters plus the ingest/query contract."""

    name: str = "framework"

    def __init__(self) -> None:
        self.ledger = OverheadLedger()

    @property
    def network_bytes(self) -> int:
        """Total agent->backend bytes."""
        return self.ledger.network.total_bytes

    @property
    def storage_bytes(self) -> int:
        """Total persisted bytes."""
        return self.ledger.storage.total_bytes

    @abc.abstractmethod
    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        """Ingest one complete trace generated at time ``now``."""

    def finalize(self, now: float = 0.0) -> None:
        """Flush any buffered state at the end of a run."""

    @abc.abstractmethod
    def query(self, trace_id: str) -> QueryResult:
        """Answer a trace-id query."""

    def execute(self, spec: QuerySpec) -> QueryCursor:
        """Run one declarative query spec against this framework.

        The default engine suits every '1 or 0' store: point/batch
        specs answer one result per requested id (misses included);
        predicate specs sweep the candidate universe — the spec's
        ``trace_ids``, falling back to the framework's enumerable
        stored population — and yield only matching hits.  Evaluation
        is lazy and bounded by ``spec.limit``.  ``pull_params`` is a
        no-op here: only Mint's collectors buffer anything to pull.
        """
        stats = PlanStats()

        def results():
            # The enumerable-population fallback applies to *predicate*
            # sweeps only: a bare batch answers exactly the ids it was
            # given, so an empty batch yields nothing (matching the
            # planner's candidate rules — a baseline must not inflate a
            # Fig. 12 sweep just because the id list came up empty).
            ids = spec.trace_ids
            if not ids and spec.has_predicates:
                ids = tuple(sorted(self.stored_trace_ids()))
            for trace_id in ids:
                if spec.limit is not None and stats.yielded >= spec.limit:
                    return
                stats.candidates += 1
                result = self.query(trace_id)
                if spec.has_predicates and not matches_result(spec, result):
                    if result.status is not QueryStatus.MISS:
                        stats.predicate_rejected += 1
                    continue
                stats.yielded += 1
                yield result

        return QueryCursor(spec, results(), stats)

    def query_many(self, trace_ids: Iterable[str]) -> QueryCursor:
        """Batch lookup: one result per id, request order, misses kept."""
        return self.execute(QuerySpec.batch(trace_ids))

    def stored_trace_ids(self) -> set[str]:
        """Trace ids the framework can answer exactly (for RCA feeds)."""
        return set()
