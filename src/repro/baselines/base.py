"""Common interface and accounting for all tracing frameworks.

The evaluation charges every framework through the same two meters:

* **network** — bytes crossing from application nodes to the tracing
  backend (trace data, breadcrumbs, Bloom filters, control messages);
* **storage** — bytes the backend persists.

A framework receives complete traces (the generator plays the role of
instrumented applications) and decides what to ship and keep.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.model.trace import Trace
from repro.sim.meters import OverheadLedger


@dataclass
class FrameworkQueryResult:
    """Uniform query outcome across frameworks.

    ``status`` is ``"exact"``, ``"partial"`` or ``"miss"`` — only Mint
    ever returns ``"partial"``; '1 or 0' frameworks either stored the
    whole trace or nothing.
    """

    trace_id: str
    status: str

    @property
    def is_hit(self) -> bool:
        """Exact or partial."""
        return self.status in ("exact", "partial")

    @property
    def is_exact(self) -> bool:
        """Full-fidelity hit."""
        return self.status == "exact"


class TracingFramework(abc.ABC):
    """Base class: meters plus the ingest/query contract."""

    name: str = "framework"

    def __init__(self) -> None:
        self.ledger = OverheadLedger()

    @property
    def network_bytes(self) -> int:
        """Total agent->backend bytes."""
        return self.ledger.network.total_bytes

    @property
    def storage_bytes(self) -> int:
        """Total persisted bytes."""
        return self.ledger.storage.total_bytes

    @abc.abstractmethod
    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        """Ingest one complete trace generated at time ``now``."""

    def finalize(self, now: float = 0.0) -> None:
        """Flush any buffered state at the end of a run."""

    @abc.abstractmethod
    def query(self, trace_id: str) -> FrameworkQueryResult:
        """Answer a trace-id query."""

    def stored_trace_ids(self) -> set[str]:
        """Trace ids the framework can answer exactly (for RCA feeds)."""
        return set()
