"""OpenTelemetry-style baselines: full, head-sampled, tail-sampled.

These reproduce the semantics the paper configures (Section 5,
"Baselines and implementation"): OT-Full reports and stores everything;
OT-Head keeps a random fraction decided at trace start; OT-Tail reports
everything (network cost unchanged) but persists only traces matching a
filter — in the evaluation, the injected ``is_abnormal`` tag.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.baselines.base import TracingFramework
from repro.model.encoding import encoded_size
from repro.model.trace import Trace
from repro.query.result import QueryResult, QueryStatus


def is_abnormal_trace(trace: Trace) -> bool:
    """The evaluation's tail-sampling predicate: any span tagged
    ``is_abnormal``."""
    for span in trace.spans:
        if span.attributes.get("is_abnormal") in (True, "true", 1):
            return True
    return False


def stored_trace_result(trace_id: str, stored: dict[str, Trace]) -> QueryResult:
    """The '1 or 0' answer: the stored trace exactly, or a miss.

    Shared by every full-fidelity baseline — these stores keep whole
    traces, so an exact hit carries the trace itself and predicate
    specs evaluate against real spans, through the same
    :class:`~repro.query.result.QueryResult` Mint returns.
    """
    trace = stored.get(trace_id)
    if trace is None:
        return QueryResult(trace_id=trace_id, status=QueryStatus.MISS)
    return QueryResult(trace_id=trace_id, status=QueryStatus.EXACT, trace=trace)


class OTFull(TracingFramework):
    """OpenTelemetry with a 100 % sampling rate (no reduction)."""

    name = "OT-Full"

    def __init__(self) -> None:
        super().__init__()
        self._stored: dict[str, Trace] = {}

    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        size = encoded_size(trace)
        self.ledger.network.record(size, now)
        self.ledger.storage.record(size, now)
        self._stored[trace.trace_id] = trace

    def query(self, trace_id: str) -> QueryResult:
        return stored_trace_result(trace_id, self._stored)

    def stored_trace_ids(self) -> set[str]:
        return set(self._stored)


class OTHead(TracingFramework):
    """Head sampling: keep a deterministic-per-trace-id fraction.

    Unsampled traces cost nothing anywhere (the decision is made at the
    trace's birth and propagated in context), which is why head sampling
    reduces both network and storage to the sampling rate.
    """

    name = "OT-Head"

    def __init__(self, rate: float = 0.05, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self._seed = seed
        self._stored: dict[str, Trace] = {}

    def sampled(self, trace_id: str) -> bool:
        """Per-trace-id coin flip, identical on every node."""
        return random.Random(f"{self._seed}:{trace_id}").random() < self.rate

    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        if not self.sampled(trace.trace_id):
            return
        size = encoded_size(trace)
        self.ledger.network.record(size, now)
        self.ledger.storage.record(size, now)
        self._stored[trace.trace_id] = trace

    def query(self, trace_id: str) -> QueryResult:
        return stored_trace_result(trace_id, self._stored)

    def stored_trace_ids(self) -> set[str]:
        return set(self._stored)


class OTTail(TracingFramework):
    """Tail sampling: everything crosses the network; the backend keeps
    only traces matching the filter predicate."""

    name = "OT-Tail"

    def __init__(self, predicate: Callable[[Trace], bool] | None = None) -> None:
        super().__init__()
        self.predicate = predicate or is_abnormal_trace
        self._stored: dict[str, Trace] = {}

    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        size = encoded_size(trace)
        self.ledger.network.record(size, now)
        if self.predicate(trace):
            self.ledger.storage.record(size, now)
            self._stored[trace.trace_id] = trace

    def query(self, trace_id: str) -> QueryResult:
        return stored_trace_result(trace_id, self._stored)

    def stored_trace_ids(self) -> set[str]:
        return set(self._stored)
