"""Robust Random Cut Forest (Guha et al., ICML 2016), from scratch.

The substrate for the Sieve baseline (Huang et al., ICWS 2021), which
scores traces by RRCF *collusive displacement* (CoDisp) and biases
sampling towards anomalous (rare) traces.

Supports the streaming protocol Sieve needs: insert a point, delete the
oldest point (sliding window), and score any resident point.  Insertion
follows the canonical algorithm — sample a random cut over the bounding
box extended with the new point; if the cut separates the point,
attach it there, otherwise recurse into the side containing it.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np


class _Leaf:
    __slots__ = ("index", "point", "count", "parent")

    def __init__(self, index: int, point: np.ndarray, parent: "_Internal | None") -> None:
        self.index = index
        self.point = point
        self.count = 1
        self.parent = parent


class _Internal:
    __slots__ = ("dim", "cut", "left", "right", "count", "bbox_min", "bbox_max", "parent")

    def __init__(
        self,
        dim: int,
        cut: float,
        left: "_Node",
        right: "_Node",
        parent: "_Internal | None",
    ) -> None:
        self.dim = dim
        self.cut = cut
        self.left = left
        self.right = right
        self.parent = parent
        self.count = 0
        self.bbox_min: np.ndarray | None = None
        self.bbox_max: np.ndarray | None = None


_Node = _Leaf | _Internal


class RandomCutTree:
    """One random cut tree over points keyed by integer index."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._root: _Node | None = None
        self._leaves: dict[int, _Leaf] = {}

    def __len__(self) -> int:
        return self._root.count if self._root is not None else 0

    def __contains__(self, index: int) -> bool:
        return index in self._leaves

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, index: int, point: Sequence[float]) -> None:
        """Insert ``point`` under key ``index``."""
        if index in self._leaves:
            raise KeyError(f"index {index} already in tree")
        p = np.asarray(point, dtype=float)
        if self._root is None:
            leaf = _Leaf(index, p, None)
            leaf.count = 1
            self._root = leaf
            self._leaves[index] = leaf
            return
        self._root = self._insert(self._root, p, index, None)
        self._refresh_upward(self._leaves[index].parent)

    def delete(self, index: int) -> None:
        """Remove the point keyed ``index``; sibling replaces parent."""
        leaf = self._leaves.pop(index, None)
        if leaf is None:
            raise KeyError(f"index {index} not in tree")
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        sibling = parent.left if parent.right is leaf else parent.right
        grand = parent.parent
        sibling.parent = grand
        if grand is None:
            self._root = sibling
        elif grand.left is parent:
            grand.left = sibling
        else:
            grand.right = sibling
        self._refresh_upward(grand)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def codisp(self, index: int) -> float:
        """Collusive displacement of the resident point ``index``.

        CoDisp(x) = max over subtrees S containing x of
        |sibling(S)| / |S|; isolated singletons in a big tree score high.
        """
        leaf = self._leaves.get(index)
        if leaf is None:
            raise KeyError(f"index {index} not in tree")
        best = 0.0
        node: _Node = leaf
        while node.parent is not None:
            parent = node.parent
            sibling = parent.left if parent.right is node else parent.right
            ratio = sibling.count / node.count
            if ratio > best:
                best = ratio
            node = parent
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(
        self, node: _Node, p: np.ndarray, index: int, parent: _Internal | None
    ) -> _Node:
        bbox_min, bbox_max = self._bbox(node)
        ext_min = np.minimum(bbox_min, p)
        ext_max = np.maximum(bbox_max, p)
        spans = ext_max - ext_min
        total = float(spans.sum())
        if total <= 0.0:
            # Duplicate of an existing degenerate box: extend a leaf's
            # multiplicity or descend arbitrarily.
            if isinstance(node, _Leaf):
                # Represent the duplicate as a sibling pair with a cut in
                # a zero-span box: attach alongside via a trivial split.
                leaf = _Leaf(index, p, None)
                branch = _Internal(0, float(p[0]), node, leaf, parent)
                node.parent = branch
                leaf.parent = branch
                self._leaves[index] = leaf
                self._refresh(branch)
                return branch
            child = self._insert(node.left, p, index, node)
            node.left = child
            self._refresh(node)
            return node
        r = self._rng.random() * total
        cum = 0.0
        dim = 0
        for d in range(len(spans)):
            cum += float(spans[d])
            if r <= cum:
                dim = d
                break
        offset = r - (cum - float(spans[dim]))
        cut = float(ext_min[dim]) + offset
        separates = cut < float(bbox_min[dim]) or cut >= float(bbox_max[dim])
        if separates and not (bbox_min[dim] == bbox_max[dim] == p[dim]):
            leaf = _Leaf(index, p, None)
            if p[dim] <= cut:
                branch = _Internal(dim, cut, leaf, node, parent)
            else:
                branch = _Internal(dim, cut, node, leaf, parent)
            node.parent = branch
            leaf.parent = branch
            self._leaves[index] = leaf
            self._refresh(branch)
            return branch
        if isinstance(node, _Leaf):
            # Cut failed to separate (p inside the leaf's point box):
            # force a separating cut on any differing dimension.
            diff_dims = [d for d in range(len(p)) if p[d] != node.point[d]]
            if not diff_dims:
                leaf = _Leaf(index, p, None)
                branch = _Internal(0, float(p[0]), node, leaf, parent)
                node.parent = branch
                leaf.parent = branch
                self._leaves[index] = leaf
                self._refresh(branch)
                return branch
            d = self._rng.choice(diff_dims)
            lo, hi = sorted((float(p[d]), float(node.point[d])))
            cut = lo + self._rng.random() * (hi - lo)
            leaf = _Leaf(index, p, None)
            if p[d] <= cut:
                branch = _Internal(d, cut, leaf, node, parent)
            else:
                branch = _Internal(d, cut, node, leaf, parent)
            node.parent = branch
            leaf.parent = branch
            self._leaves[index] = leaf
            self._refresh(branch)
            return branch
        if p[node.dim] <= node.cut:
            node.left = self._insert(node.left, p, index, node)
        else:
            node.right = self._insert(node.right, p, index, node)
        self._refresh(node)
        return node

    def _bbox(self, node: _Node) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(node, _Leaf):
            return node.point, node.point
        if node.bbox_min is None or node.bbox_max is None:
            self._refresh(node)
        assert node.bbox_min is not None and node.bbox_max is not None
        return node.bbox_min, node.bbox_max

    def _refresh(self, node: _Internal) -> None:
        lmin, lmax = self._bbox(node.left)
        rmin, rmax = self._bbox(node.right)
        node.bbox_min = np.minimum(lmin, rmin)
        node.bbox_max = np.maximum(lmax, rmax)
        node.count = node.left.count + node.right.count

    def _refresh_upward(self, node: _Internal | None) -> None:
        while node is not None:
            self._refresh(node)
            node = node.parent


class RobustRandomCutForest:
    """Forest of random cut trees with a sliding window.

    ``score(point)`` inserts the point into every tree, reads the mean
    CoDisp, and evicts the oldest resident point when the window is
    full, matching Sieve's streaming usage.
    """

    def __init__(
        self,
        num_trees: int = 20,
        window_size: int = 256,
        seed: int = 1,
    ) -> None:
        if num_trees <= 0 or window_size <= 1:
            raise ValueError("need at least one tree and a window of 2+")
        self.num_trees = num_trees
        self.window_size = window_size
        self._trees = [RandomCutTree(seed=seed + t) for t in range(num_trees)]
        self._next_index = 0
        self._resident: list[int] = []

    def __len__(self) -> int:
        return len(self._resident)

    def score(self, point: Sequence[float]) -> float:
        """Insert ``point``, return its mean CoDisp across trees."""
        index = self._next_index
        self._next_index += 1
        for tree in self._trees:
            tree.insert(index, point)
        self._resident.append(index)
        if len(self._resident) > self.window_size:
            oldest = self._resident.pop(0)
            for tree in self._trees:
                tree.delete(oldest)
        return float(
            sum(tree.codisp(index) for tree in self._trees) / self.num_trees
        )
